//! Seeded multi-function module generator for the interprocedural analysis.
//!
//! The paper's evaluation programs are single functions; the module-level
//! composition of `tmg_core::module` needs whole *programs* with realistic
//! call structure.  This generator emits modules of `n` functions whose call
//! edges always point from a lower index to a higher one, so the call graph
//! is a DAG by construction (the composition rejects recursion).  Every
//! function takes one `char a __range(0, 3)` parameter and forwards it
//! verbatim to its callees, so the declared input spaces cover exactly the
//! values that flow at run time — the property the module soundness tests
//! rely on when they compare composed bounds against exhaustive
//! [`ModuleMachine`](../../target/struct.ModuleMachine.html) sweeps.
//!
//! Each function body starts with a unique `touch_fN()` marker call;
//! [`GeneratedModule::edited`] rewrites that marker to produce a
//! deterministic single-function edit for differential-re-analysis tests and
//! the `module_edit_differential` benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use tmg_minic::ast::Program;
use tmg_minic::parse_program;

/// Configuration of the module generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleGenConfig {
    /// Seed for deterministic generation.
    pub seed: u64,
    /// Number of functions in the module.
    pub functions: usize,
    /// Maximum number of defined callees per function.
    pub max_callees: usize,
    /// Statements per function body (in addition to the touch marker).
    pub body_stmts: usize,
}

impl ModuleGenConfig {
    /// A small configuration for unit and property tests.
    pub fn small(seed: u64) -> ModuleGenConfig {
        ModuleGenConfig {
            seed,
            functions: 5,
            max_callees: 2,
            body_stmts: 2,
        }
    }

    /// The 50-function module of the `module_edit_differential` benchmark.
    pub fn bench() -> ModuleGenConfig {
        ModuleGenConfig {
            seed: 0xD1FF,
            functions: 50,
            max_callees: 3,
            body_stmts: 3,
        }
    }
}

/// A generated module: source text plus its parsed program.
#[derive(Debug, Clone)]
pub struct GeneratedModule {
    /// The mini-C source text.
    pub source: String,
    /// The parsed and checked program.
    pub program: Program,
}

impl GeneratedModule {
    /// Number of functions in the module.
    pub fn function_count(&self) -> usize {
        self.program.functions.len()
    }

    /// A copy of the module with function `index` deterministically edited:
    /// its unique `touch_fN()` marker gains a sibling call, which changes
    /// the function's fingerprint (and makes its bound strictly larger)
    /// while leaving every other function byte-identical.
    pub fn edited(&self, index: usize) -> GeneratedModule {
        let marker = format!("touch_f{index}();");
        let replacement = format!("touch_f{index}(); edit_probe_f{index}();");
        assert_eq!(
            self.source.matches(&marker).count(),
            1,
            "the touch marker of f{index} must be unique"
        );
        let source = self.source.replace(&marker, &replacement);
        let program = parse_program(&source).expect("edited module must parse");
        GeneratedModule { source, program }
    }
}

/// Generates a call-DAG module according to `config`.
pub fn generate_module(config: &ModuleGenConfig) -> GeneratedModule {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.functions.max(1);
    let mut source = String::new();
    for i in 0..n {
        let _ = writeln!(source, "void f{i}(char a __range(0, 3)) {{");
        let mut decls = String::new();
        let mut body = String::new();
        let _ = writeln!(body, "    touch_f{i}();");
        // Callees are always higher-indexed, so the call graph is acyclic.
        let candidates = n - i - 1;
        let callee_budget = config.max_callees.min(candidates);
        let mut callees_left = if callee_budget == 0 {
            0
        } else {
            rng.gen_range(0..=callee_budget)
        };
        for k in 0..config.body_stmts {
            let call_target = (callees_left > 0).then(|| rng.gen_range(i + 1..n));
            match rng.gen_range(0..5u32) {
                0 | 1 if call_target.is_some() => {
                    let j = call_target.expect("guarded by is_some");
                    callees_left -= 1;
                    if rng.gen_bool(0.5) {
                        let _ = writeln!(body, "    f{j}(a);");
                    } else {
                        let lit = rng.gen_range(0..3);
                        let _ = writeln!(
                            body,
                            "    if (a > {lit}) {{ f{j}(a); }} else {{ ext_{i}_{k}(); }}"
                        );
                    }
                }
                2 => {
                    let lit = rng.gen_range(0..4);
                    let _ = writeln!(body, "    if (a == {lit}) {{ work_{i}_{k}(); }}");
                }
                3 => {
                    let _ = writeln!(decls, "    char t{k} = 0;");
                    let _ = writeln!(
                        body,
                        "    while (t{k} < a) __bound(3) {{ t{k} = t{k} + 1; step_{i}_{k}(); }}"
                    );
                }
                _ => {
                    let _ = writeln!(body, "    leaf_{i}_{k}();");
                }
            }
        }
        source.push_str(&decls);
        source.push_str(&body);
        let _ = writeln!(source, "}}");
    }
    let program = parse_program(&source).expect("generated module must parse");
    GeneratedModule { source, program }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::CallGraph;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate_module(&ModuleGenConfig::small(11));
        let b = generate_module(&ModuleGenConfig::small(11));
        let c = generate_module(&ModuleGenConfig::small(12));
        assert_eq!(a.source, b.source);
        assert_ne!(a.source, c.source);
        assert_eq!(a.function_count(), 5);
    }

    #[test]
    fn the_call_graph_is_acyclic_with_forward_edges_only() {
        for seed in 0..16 {
            let module = generate_module(&ModuleGenConfig::small(seed));
            let graph = CallGraph::build(&module.program);
            for i in 0..graph.len() {
                for &j in graph.callees(i) {
                    assert!(j > i, "edge f{i} -> f{j} must point forward (seed {seed})");
                }
            }
            graph
                .reverse_topological_order()
                .expect("generated modules are acyclic");
        }
    }

    #[test]
    fn edits_change_exactly_one_function_fingerprint() {
        // Statement ids are numbered program-wide, so AST equality is too
        // strict across an edit; the content fingerprint (what the summary
        // keys fold) is the invariant that matters.
        use tmg_cfg::function_fingerprint;
        let module = generate_module(&ModuleGenConfig::small(3));
        let edited = module.edited(2);
        assert_ne!(module.source, edited.source);
        assert!(edited.source.contains("edit_probe_f2();"));
        for (before, after) in module
            .program
            .functions
            .iter()
            .zip(&edited.program.functions)
        {
            assert_eq!(before.name, after.name);
            if before.name == "f2" {
                assert_ne!(
                    function_fingerprint(before),
                    function_fingerprint(after),
                    "the edited function must change"
                );
            } else {
                assert_eq!(
                    function_fingerprint(before),
                    function_fingerprint(after),
                    "{} must stay untouched",
                    before.name
                );
            }
        }
    }

    #[test]
    fn the_bench_module_has_fifty_functions() {
        let module = generate_module(&ModuleGenConfig::bench());
        assert_eq!(module.function_count(), 50);
        let graph = CallGraph::build(&module.program);
        assert!(graph.edge_count() >= 30, "edges: {}", graph.edge_count());
    }
}
