//! The example program of the paper's Figure 1.

use tmg_minic::{parse_function, Function};

/// Mini-C source of the Figure-1 example, verbatim apart from the `printfN`
/// bodies (external leaf calls here, as in the paper's instrumented build).
///
/// The paper's listing declares `int i` as an uninitialised local; to make the
/// program's paths controllable by test data (and to keep the exhaustive
/// comparison meaningful) the generator exposes `i` as a parameter when
/// `as_parameter` is true — the CFG and therefore Table 1 are identical either
/// way.
pub fn figure1_source(as_parameter: bool) -> String {
    let (header, locals) = if as_parameter {
        ("int main(int i __range(-2, 2))", "")
    } else {
        ("int main()", "    int i;\n")
    };
    format!(
        r#"{header} {{
{locals}    printf1();
    printf2();
    if (i == 0) {{
        printf3();
        if (i == 0) {{
            printf4();
        }} else {{
            printf5();
        }}
    }}
    if (i == 0) {{
        printf6();
        printf7();
    }}
    printf8();
}}
"#
    )
}

/// The parsed Figure-1 example.
///
/// # Panics
///
/// Never panics: the source is a compile-time constant that parses by
/// construction (covered by tests).
pub fn figure1_function(as_parameter: bool) -> Function {
    parse_function(&figure1_source(as_parameter)).expect("figure-1 source always parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;

    #[test]
    fn figure1_matches_the_papers_statistics() {
        for as_parameter in [false, true] {
            let f = figure1_function(as_parameter);
            assert_eq!(f.branch_count(), 3);
            let lowered = build_cfg(&f);
            assert_eq!(
                lowered.cfg.measurable_units().len(),
                11,
                "11 measured CFG nodes"
            );
            assert_eq!(lowered.regions.root().path_count, 6, "6 end-to-end paths");
        }
    }

    #[test]
    fn parameter_variant_exposes_i_as_input() {
        let f = figure1_function(true);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "i");
        let f = figure1_function(false);
        assert!(f.params.is_empty());
        assert_eq!(f.locals.len(), 1);
    }
}
