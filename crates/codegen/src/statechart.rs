//! A small Stateflow-like statechart substrate and its code generator.
//!
//! The paper's case study is "modelled in Matlab/Simulink" with a Stateflow
//! chart and turned into C by the TargetLink code generator.  This module
//! provides the equivalent: a statechart description that is code-generated
//! into a mini-C step function of the shape TargetLink produces — one
//! `switch` over the current state whose case arms contain guarded `if`/`else`
//! chains assigning the next state and calling actuator routines.

use tmg_minic::{parse_function, Function};

/// One guarded transition of a statechart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTransition {
    /// Index of the source state.
    pub from: usize,
    /// Index of the destination state.
    pub to: usize,
    /// Guard over the chart's inputs, written in mini-C expression syntax
    /// (e.g. `"speed == 2 && !endpos"`).
    pub guard: String,
    /// Actuator routines to call when the transition fires.
    pub actions: Vec<String>,
}

/// A flat statechart (no hierarchy — TargetLink flattens charts before code
/// generation anyway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statechart {
    /// Chart name; the generated function is called `<name>_step`.
    pub name: String,
    /// State names, index = state encoding.
    pub states: Vec<String>,
    /// Input declarations as mini-C parameter fragments, e.g.
    /// `"char speed __range(0, 2)"`.
    pub inputs: Vec<String>,
    /// Transitions; for each state the first transition whose guard holds
    /// fires (priority = declaration order), otherwise the state is kept.
    pub transitions: Vec<StateTransition>,
    /// Entry actions called whenever a state is entered (indexed by state).
    pub entry_actions: Vec<Vec<String>>,
}

impl Statechart {
    /// Creates an empty chart with the given states.
    pub fn new(name: impl Into<String>, states: Vec<String>) -> Statechart {
        let n = states.len();
        Statechart {
            name: name.into(),
            states,
            inputs: Vec::new(),
            transitions: Vec::new(),
            entry_actions: vec![Vec::new(); n],
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Adds an input parameter (mini-C parameter fragment).
    pub fn with_input(mut self, decl: impl Into<String>) -> Statechart {
        self.inputs.push(decl.into());
        self
    }

    /// Adds a transition.
    pub fn with_transition(mut self, t: StateTransition) -> Statechart {
        assert!(t.from < self.states.len() && t.to < self.states.len());
        self.transitions.push(t);
        self
    }

    /// Adds an entry action to a state.
    pub fn with_entry_action(mut self, state: usize, action: impl Into<String>) -> Statechart {
        self.entry_actions[state].push(action.into());
        self
    }

    /// Generates the mini-C source of the step function
    /// (`char <name>_step(char current_state, <inputs>)`).
    pub fn to_source(&self) -> String {
        let n = self.states.len();
        let mut src = String::new();
        let mut params = vec![format!("char current_state __range(0, {})", n - 1)];
        params.extend(self.inputs.iter().cloned());
        src.push_str(&format!(
            "char {}_step({}) {{\n",
            self.name,
            params.join(", ")
        ));
        src.push_str(&format!("    char next_state __range(0, {}) = 0;\n", n - 1));
        src.push_str("    next_state = current_state;\n");
        src.push_str("    switch (current_state) {\n");
        for (state_idx, state_name) in self.states.iter().enumerate() {
            src.push_str(&format!("    case {state_idx}: /* {state_name} */\n"));
            let outgoing: Vec<&StateTransition> = self
                .transitions
                .iter()
                .filter(|t| t.from == state_idx)
                .collect();
            let mut first = true;
            for t in &outgoing {
                let keyword = if first { "if" } else { "} else if" };
                first = false;
                src.push_str(&format!("        {keyword} ({}) {{\n", t.guard));
                for action in &t.actions {
                    src.push_str(&format!("            {action}();\n"));
                }
                for action in &self.entry_actions[t.to] {
                    src.push_str(&format!("            {action}();\n"));
                }
                src.push_str(&format!("            next_state = {};\n", t.to));
            }
            if !outgoing.is_empty() {
                src.push_str("        }\n");
            }
            src.push_str("        break;\n");
        }
        src.push_str("    default:\n");
        src.push_str("        next_state = 0;\n");
        src.push_str("        break;\n");
        src.push_str("    }\n");
        src.push_str("    return next_state;\n");
        src.push_str("}\n");
        src
    }

    /// Generates and parses the step function.
    ///
    /// # Panics
    ///
    /// Panics if the chart's guards are not valid mini-C expressions over the
    /// declared inputs (a construction error in the chart).
    pub fn to_function(&self) -> Function {
        parse_function(&self.to_source()).expect("generated statechart code must parse")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_minic::value::InputVector;
    use tmg_minic::{parse_program, Interpreter};

    fn toy_chart() -> Statechart {
        Statechart::new("toy", vec!["OFF".into(), "ON".into(), "FAULT".into()])
            .with_input("bool power")
            .with_input("bool fault")
            .with_transition(StateTransition {
                from: 0,
                to: 1,
                guard: "power && !fault".into(),
                actions: vec!["enable_output".into()],
            })
            .with_transition(StateTransition {
                from: 1,
                to: 0,
                guard: "!power".into(),
                actions: vec!["disable_output".into()],
            })
            .with_transition(StateTransition {
                from: 1,
                to: 2,
                guard: "fault".into(),
                actions: vec!["raise_alarm".into()],
            })
            .with_entry_action(2, "log_fault")
    }

    #[test]
    fn generated_source_parses_and_has_one_case_per_state() {
        let chart = toy_chart();
        let f = chart.to_function();
        assert_eq!(f.name, "toy_step");
        // switch + the ifs: at least one branch per state with outgoing edges.
        assert!(f.branch_count() >= 3);
        let lowered = build_cfg(&f);
        assert!(lowered.regions.root().path_count >= 4);
    }

    #[test]
    fn step_function_implements_the_transition_relation() {
        let chart = toy_chart();
        let src = chart.to_source();
        let program = parse_program(&src).expect("parse");
        let interp = Interpreter::new(&program);
        let step = |state: i64, power: i64, fault: i64| -> i64 {
            interp
                .run(
                    "toy_step",
                    &InputVector::new()
                        .with("current_state", state)
                        .with("power", power)
                        .with("fault", fault),
                )
                .expect("run")
                .return_value
                .expect("return")
                .raw()
        };
        assert_eq!(step(0, 1, 0), 1, "OFF --power--> ON");
        assert_eq!(step(0, 0, 0), 0, "OFF stays OFF without power");
        assert_eq!(step(1, 0, 0), 0, "ON --!power--> OFF");
        assert_eq!(step(1, 1, 1), 2, "ON --fault--> FAULT");
        assert_eq!(step(2, 1, 0), 2, "FAULT is absorbing");
    }

    #[test]
    fn out_of_range_states_reset_to_the_initial_state() {
        let chart = toy_chart();
        let src = chart.to_source();
        let program = parse_program(&src).expect("parse");
        let out = Interpreter::new(&program)
            .run(
                "toy_step",
                &InputVector::new().with("current_state", 7).with("power", 0),
            )
            .expect("run");
        // `current_state` is wrapped into __range by the switch default arm.
        assert_eq!(out.return_value.map(|v| v.raw()), Some(0));
    }

    #[test]
    #[should_panic]
    fn transitions_must_reference_existing_states() {
        let _ = Statechart::new("bad", vec!["A".into()]).with_transition(StateTransition {
            from: 0,
            to: 5,
            guard: "1".into(),
            actions: vec![],
        });
    }
}
