//! The wiper-control case study of Section 4.
//!
//! The paper's controller has a two-step speed selector (off / slow / fast),
//! a water-pump button and an end-position switch, and its Stateflow chart
//! has 9 states.  This module builds an equivalent 9-state chart on the
//! [`crate::statechart`] substrate and code-generates the step function the
//! WCET pipeline analyses.

use crate::statechart::{StateTransition, Statechart};
use tmg_minic::value::InputVector;
use tmg_minic::Function;

/// Number of states of the wiper chart (the paper's chart also has 9).
pub const WIPER_STATE_COUNT: usize = 9;

/// State encodings of the wiper chart.
pub mod state {
    /// Wiper parked, motor off.
    pub const PARKED: i64 = 0;
    /// Continuous slow wiping.
    pub const SLOW_WIPING: i64 = 1;
    /// Continuous fast wiping.
    pub const FAST_WIPING: i64 = 2;
    /// Finishing the current stroke to reach the park position.
    pub const RETURNING: i64 = 3;
    /// Washer pump on, wiping slowly.
    pub const WASHING: i64 = 4;
    /// Post-wash dry wipes.
    pub const WASH_EXTRA: i64 = 5;
    /// Interval mode, pausing between wipes.
    pub const INTERVAL_PAUSE: i64 = 6;
    /// Interval mode, performing one wipe.
    pub const INTERVAL_WIPE: i64 = 7;
    /// Motor stalled / overcurrent fault.
    pub const STALLED: i64 = 8;
}

/// Builds the 9-state wiper statechart.
pub fn wiper_statechart() -> Statechart {
    use state::*;
    let states = vec![
        "PARKED".to_owned(),
        "SLOW_WIPING".to_owned(),
        "FAST_WIPING".to_owned(),
        "RETURNING".to_owned(),
        "WASHING".to_owned(),
        "WASH_EXTRA".to_owned(),
        "INTERVAL_PAUSE".to_owned(),
        "INTERVAL_WIPE".to_owned(),
        "STALLED".to_owned(),
    ];
    let mut chart = Statechart::new("wiper_control", states)
        .with_input("char speed __range(0, 2)")
        .with_input("bool wash")
        .with_input("bool endpos")
        .with_input("bool interval")
        .with_input("bool overcurrent");

    let t = |from: i64, to: i64, guard: &str, actions: &[&str]| StateTransition {
        from: from as usize,
        to: to as usize,
        guard: guard.to_owned(),
        actions: actions.iter().map(|s| s.to_string()).collect(),
    };

    // PARKED
    chart = chart
        .with_transition(t(PARKED, WASHING, "wash", &["pump_on", "motor_slow"]))
        .with_transition(t(
            PARKED,
            INTERVAL_WIPE,
            "speed == 1 && interval",
            &["motor_slow"],
        ))
        .with_transition(t(PARKED, SLOW_WIPING, "speed == 1", &["motor_slow"]))
        .with_transition(t(PARKED, FAST_WIPING, "speed == 2", &["motor_fast"]));
    // SLOW_WIPING
    chart = chart
        .with_transition(t(
            SLOW_WIPING,
            STALLED,
            "overcurrent",
            &["motor_off", "raise_fault"],
        ))
        .with_transition(t(SLOW_WIPING, WASHING, "wash", &["pump_on"]))
        .with_transition(t(SLOW_WIPING, FAST_WIPING, "speed == 2", &["motor_fast"]))
        .with_transition(t(SLOW_WIPING, RETURNING, "speed == 0", &[]));
    // FAST_WIPING
    chart = chart
        .with_transition(t(
            FAST_WIPING,
            STALLED,
            "overcurrent",
            &["motor_off", "raise_fault"],
        ))
        .with_transition(t(FAST_WIPING, WASHING, "wash", &["pump_on", "motor_slow"]))
        .with_transition(t(FAST_WIPING, SLOW_WIPING, "speed == 1", &["motor_slow"]))
        .with_transition(t(FAST_WIPING, RETURNING, "speed == 0", &[]));
    // RETURNING
    chart = chart
        .with_transition(t(RETURNING, WASHING, "wash", &["pump_on", "motor_slow"]))
        .with_transition(t(RETURNING, PARKED, "endpos", &["motor_off"]))
        .with_transition(t(RETURNING, SLOW_WIPING, "speed == 1", &["motor_slow"]))
        .with_transition(t(RETURNING, FAST_WIPING, "speed == 2", &["motor_fast"]));
    // WASHING
    chart = chart
        .with_transition(t(
            WASHING,
            STALLED,
            "overcurrent",
            &["pump_off", "motor_off", "raise_fault"],
        ))
        .with_transition(t(WASHING, WASH_EXTRA, "!wash", &["pump_off"]));
    // WASH_EXTRA
    chart = chart
        .with_transition(t(WASH_EXTRA, WASHING, "wash", &["pump_on"]))
        .with_transition(t(WASH_EXTRA, FAST_WIPING, "speed == 2", &["motor_fast"]))
        .with_transition(t(WASH_EXTRA, SLOW_WIPING, "speed == 1", &[]))
        .with_transition(t(WASH_EXTRA, RETURNING, "endpos", &[]));
    // INTERVAL_PAUSE
    chart = chart
        .with_transition(t(
            INTERVAL_PAUSE,
            WASHING,
            "wash",
            &["pump_on", "motor_slow"],
        ))
        .with_transition(t(
            INTERVAL_PAUSE,
            FAST_WIPING,
            "speed == 2",
            &["motor_fast"],
        ))
        .with_transition(t(INTERVAL_PAUSE, PARKED, "speed == 0", &["motor_off"]))
        .with_transition(t(
            INTERVAL_PAUSE,
            INTERVAL_WIPE,
            "interval && speed == 1",
            &["motor_slow"],
        ))
        .with_transition(t(
            INTERVAL_PAUSE,
            SLOW_WIPING,
            "speed == 1",
            &["motor_slow"],
        ));
    // INTERVAL_WIPE
    chart = chart
        .with_transition(t(
            INTERVAL_WIPE,
            STALLED,
            "overcurrent",
            &["motor_off", "raise_fault"],
        ))
        .with_transition(t(INTERVAL_WIPE, WASHING, "wash", &["pump_on"]))
        .with_transition(t(INTERVAL_WIPE, INTERVAL_PAUSE, "endpos", &["motor_off"]))
        .with_transition(t(INTERVAL_WIPE, FAST_WIPING, "speed == 2", &["motor_fast"]));
    // STALLED
    chart = chart
        .with_transition(t(
            STALLED,
            PARKED,
            "!overcurrent && speed == 0",
            &["clear_fault"],
        ))
        .with_entry_action(state::STALLED as usize, "log_stall");
    chart
}

/// Mini-C source of the wiper-control step function.
pub fn wiper_source() -> String {
    wiper_statechart().to_source()
}

/// The parsed wiper-control step function.
pub fn wiper_function() -> Function {
    wiper_statechart().to_function()
}

/// The complete input space of the controller — small enough that the paper
/// could determine the exact WCET by exhaustive end-to-end measurement
/// (Section 4), which the case-study benchmark repeats.
pub fn wiper_input_space() -> Vec<InputVector> {
    let mut out = Vec::new();
    for state in 0..WIPER_STATE_COUNT as i64 {
        for speed in 0..=2 {
            for wash in 0..=1 {
                for endpos in 0..=1 {
                    for interval in 0..=1 {
                        for overcurrent in 0..=1 {
                            out.push(
                                InputVector::new()
                                    .with("current_state", state)
                                    .with("speed", speed)
                                    .with("wash", wash)
                                    .with("endpos", endpos)
                                    .with("interval", interval)
                                    .with("overcurrent", overcurrent),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_minic::{parse_program, Interpreter};

    #[test]
    fn chart_has_nine_states_and_parses() {
        let chart = wiper_statechart();
        assert_eq!(chart.state_count(), WIPER_STATE_COUNT);
        let f = wiper_function();
        assert_eq!(f.name, "wiper_control_step");
        assert_eq!(f.params.len(), 6);
    }

    #[test]
    fn generated_code_is_switch_and_if_nesting_of_reasonable_size() {
        let f = wiper_function();
        // One switch plus the guarded transitions.
        assert!(f.branch_count() >= 25, "branches: {}", f.branch_count());
        let lowered = build_cfg(&f);
        assert!(lowered.cfg.measurable_units().len() >= 60);
        // Every case arm is a program-segment candidate.
        assert!(lowered.regions.root().children.len() >= WIPER_STATE_COUNT);
    }

    #[test]
    fn input_space_is_exhaustive_and_small() {
        let space = wiper_input_space();
        assert_eq!(space.len(), 9 * 3 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn controller_behaviour_spot_checks() {
        let program = parse_program(&wiper_source()).expect("parse");
        let interp = Interpreter::new(&program);
        let step = |inputs: &InputVector| -> i64 {
            interp
                .run("wiper_control_step", inputs)
                .expect("run")
                .return_value
                .expect("returns next state")
                .raw()
        };
        // Parked + slow selector => slow wiping.
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::PARKED)
                    .with("speed", 1)
            ),
            state::SLOW_WIPING
        );
        // Wash button dominates.
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::PARKED)
                    .with("speed", 2)
                    .with("wash", 1)
            ),
            state::WASHING
        );
        // Fast wiping with selector off finishes the stroke.
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::FAST_WIPING)
                    .with("speed", 0)
            ),
            state::RETURNING
        );
        // Returning reaches park at the end-position switch.
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::RETURNING)
                    .with("speed", 0)
                    .with("endpos", 1)
            ),
            state::PARKED
        );
        // Overcurrent stalls the motor.
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::SLOW_WIPING)
                    .with("speed", 1)
                    .with("overcurrent", 1)
            ),
            state::STALLED
        );
        // Stall clears only with the selector off and no overcurrent.
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::STALLED)
                    .with("speed", 1)
            ),
            state::STALLED
        );
        assert_eq!(
            step(
                &InputVector::new()
                    .with("current_state", state::STALLED)
                    .with("speed", 0)
            ),
            state::PARKED
        );
    }

    #[test]
    fn every_state_is_reachable_from_parked() {
        let program = parse_program(&wiper_source()).expect("parse");
        let interp = Interpreter::new(&program);
        let mut reachable = std::collections::HashSet::from([state::PARKED]);
        // Fixed point over the exhaustive input space.
        loop {
            let before = reachable.len();
            for inputs in wiper_input_space() {
                let from = inputs.get("current_state").expect("state");
                if !reachable.contains(&from) {
                    continue;
                }
                let next = interp
                    .run("wiper_control_step", &inputs)
                    .expect("run")
                    .return_value
                    .expect("return")
                    .raw();
                reachable.insert(next);
            }
            if reachable.len() == before {
                break;
            }
        }
        assert_eq!(reachable.len(), WIPER_STATE_COUNT, "all 9 states reachable");
    }
}
