//! The evaluation module of Table 2.
//!
//! Section 3.3 evaluates the model-checking optimisations on a C module of
//! "105 lines without comments and empty lines, four boolean and thirteen
//! byte variables from which three can be substituted by Reverse CSE, three
//! are not affecting the control flow and three are not used at all".  This
//! generator reproduces that variable inventory exactly:
//!
//! * boolean inputs: `enable`, `manual`, `fault_in`, `calib` (4 booleans);
//! * byte inputs: `raw_speed`, `raw_level`, `mode` (3);
//! * control-relevant byte local: `filtered_cmd` (1);
//! * reverse-CSE-substitutable temporaries: `t_speed`, `t_level`, `t_sum` (3);
//! * bytes not affecting control flow: `diag_word`, `log_count`, `last_cmd` (3);
//! * unused bytes: `spare1`, `spare2`, `spare3` (3).
//!
//! Total: 4 booleans and 13 byte variables.

use tmg_minic::{parse_function, Function};

/// Mini-C source of the Table-2 module.
pub fn table2_source() -> String {
    r#"
int sensor_conditioning(bool enable, bool manual, bool fault_in, bool calib,
                        char raw_speed __range(0, 40), char raw_level __range(0, 20),
                        char mode __range(0, 3)) {
    char filtered_cmd __range(0, 60);
    char t_speed;
    char t_level;
    char t_sum;
    char diag_word;
    char log_count;
    char last_cmd;
    char spare1;
    char spare2;
    char spare3;

    filtered_cmd = 0;
    log_count = 0;
    last_cmd = 0;

    if (enable) {
        t_speed = raw_speed + 2;
        if (t_speed > 12) {
            filtered_cmd = 20;
            limit_speed();
        } else {
            filtered_cmd = 10;
            pass_speed();
        }
        t_level = raw_level + 1;
        if (t_level > 6) {
            filtered_cmd = filtered_cmd + 5;
            drain_reservoir();
        }
        t_sum = raw_speed + raw_level;
        if (t_sum > 30) {
            filtered_cmd = filtered_cmd + 7;
            raise_load_warning();
        }
    } else {
        filtered_cmd = 0;
        disable_output();
    }

    if (manual && !fault_in) {
        filtered_cmd = filtered_cmd + 2;
        manual_override();
    }

    if (calib) {
        filtered_cmd = filtered_cmd + 1;
        apply_calibration();
    }

    switch (mode) {
    case 0:
        if (filtered_cmd > 25) {
            clamp_normal();
            filtered_cmd = 25;
        }
        break;
    case 1:
        if (filtered_cmd > 18) {
            clamp_eco();
            filtered_cmd = 18;
        }
        break;
    case 2:
        if (fault_in) {
            enter_limp_home();
            filtered_cmd = 5;
        } else {
            boost_mode();
            filtered_cmd = filtered_cmd + 3;
        }
        break;
    default:
        safe_state();
        filtered_cmd = 0;
        break;
    }

    diag_word = diag_word + 1;
    if (diag_word > 10) {
        log_count = log_count + 1;
        log_count = log_count + 2;
    }

    last_cmd = filtered_cmd + 0;
    log_count = log_count + 1;

    report_command();
    return filtered_cmd;
}
"#
    .to_owned()
}

/// The parsed Table-2 module.
pub fn table2_function() -> Function {
    parse_function(&table2_source()).expect("table-2 source always parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::types::Ty;

    #[test]
    fn variable_inventory_matches_the_paper() {
        let f = table2_function();
        let booleans = f.decls().filter(|d| d.ty == Ty::Bool).count();
        let bytes = f
            .decls()
            .filter(|d| matches!(d.ty, Ty::I8 | Ty::U8))
            .count();
        assert_eq!(booleans, 4, "four boolean variables");
        assert_eq!(bytes, 13, "thirteen byte variables");
    }

    #[test]
    fn source_size_is_about_105_lines() {
        let non_empty = table2_source()
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with("//"))
            .count();
        assert!(
            (80..=130).contains(&non_empty),
            "paper: 105 lines, generated: {non_empty}"
        );
    }

    #[test]
    fn has_the_three_special_variable_groups() {
        let f = table2_function();
        for name in ["t_speed", "t_level", "t_sum"] {
            assert!(f.decl(name).is_some(), "CSE temp {name}");
        }
        for name in ["diag_word", "log_count", "last_cmd"] {
            assert!(f.decl(name).is_some(), "non-control variable {name}");
        }
        for name in ["spare1", "spare2", "spare3"] {
            assert!(f.decl(name).is_some(), "unused variable {name}");
        }
    }

    #[test]
    fn spare_variables_are_never_read_and_diag_word_never_reaches_relevant_control_flow() {
        use tmg_minic::ast::Stmt;
        let f = table2_function();
        let mut read = std::collections::HashSet::new();
        f.for_each_stmt(&mut |s| {
            let mut add = |e: &tmg_minic::Expr| {
                for v in e.referenced_vars() {
                    read.insert(v.to_owned());
                }
            };
            match s {
                Stmt::Assign { value, .. } => add(value),
                Stmt::Call { args, .. } => args.iter().for_each(add),
                Stmt::If { cond, .. } | Stmt::While { cond, .. } => add(cond),
                Stmt::Switch { selector, .. } => add(selector),
                Stmt::Return { value: Some(v), .. } => add(v),
                Stmt::Return { value: None, .. } => {}
            }
        });
        for name in ["spare1", "spare2", "spare3"] {
            assert!(!read.contains(name), "{name} must be unused");
        }
        // `filtered_cmd` is control relevant, `log_count`/`last_cmd` are not
        // read by any condition.
        assert!(read.contains("filtered_cmd"));
    }
}
