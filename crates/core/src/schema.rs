//! Timing-schema WCET computation.
//!
//! The paper combines the measured per-segment maxima into a WCET bound for
//! the whole function with "a simple timing schema approach": sequences add,
//! alternatives take the maximum, loops multiply by their bound.  Here the
//! schema is evaluated over the region tree: a collapsed segment contributes
//! its measured maximum directly; a decomposed region contributes the longest
//! path through its condensed graph, whose nodes are its own blocks and its
//! child regions.

use crate::partition::{PartitionPlan, SegmentId, SegmentKind};
use std::collections::HashMap;
use tmg_cfg::{BlockId, LoweredFunction, RegionId, RegionKind};
use tmg_minic::StmtId;

/// Computes the WCET bound from a partition plan and the worst-case value of
/// every segment (measured maximum or static fallback, see
/// [`crate::measurement::MeasurementCampaign::worst_case_map`]).
///
/// # Panics
///
/// Panics if `worst_case` is missing a segment of the plan (the measurement
/// campaign always produces a complete map).
pub fn compute_wcet(
    lowered: &LoweredFunction,
    plan: &PartitionPlan,
    worst_case: &HashMap<SegmentId, u64>,
) -> u64 {
    let ctx = SchemaContext {
        lowered,
        worst_case,
        region_segment: plan
            .segments
            .iter()
            .filter_map(|s| match s.kind {
                SegmentKind::Region(r) => Some((r, s.id)),
                SegmentKind::Block(_) => None,
            })
            .collect(),
        block_segment: plan
            .segments
            .iter()
            .filter_map(|s| match s.kind {
                SegmentKind::Block(b) => Some((b, s.id)),
                SegmentKind::Region(_) => None,
            })
            .collect(),
    };
    ctx.region_wcet(lowered.regions.root_id())
}

struct SchemaContext<'a> {
    lowered: &'a LoweredFunction,
    worst_case: &'a HashMap<SegmentId, u64>,
    region_segment: HashMap<RegionId, SegmentId>,
    block_segment: HashMap<BlockId, SegmentId>,
}

/// A node of a decomposed region's condensed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Block(BlockId),
    Child(RegionId),
}

impl<'a> SchemaContext<'a> {
    fn segment_value(&self, id: SegmentId) -> u64 {
        *self
            .worst_case
            .get(&id)
            .unwrap_or_else(|| panic!("missing worst-case value for {id}"))
    }

    fn region_wcet(&self, region_id: RegionId) -> u64 {
        if let Some(seg) = self.region_segment.get(&region_id) {
            return self.segment_value(*seg);
        }
        let region = self.lowered.regions.region(region_id);

        // Map every block of the region to its condensed node.
        let mut node_of: HashMap<BlockId, Node> = HashMap::new();
        for &child in &region.children {
            for &b in &self.lowered.regions.region(child).blocks {
                node_of.insert(b, Node::Child(child));
            }
        }
        for b in self.lowered.regions.own_blocks(region_id) {
            node_of.insert(b, Node::Block(b));
        }

        // Loop composites: an own block holding a bounded loop condition is
        // combined with its body region: weight = (bound + 1) · header +
        // bound · body, and the back edge is ignored.
        let mut loop_header_of: HashMap<RegionId, BlockId> = HashMap::new();
        let mut loop_of_header: HashMap<BlockId, (RegionId, StmtId)> = HashMap::new();
        for &child in &region.children {
            if let RegionKind::LoopBody(stmt) = self.lowered.regions.region(child).kind {
                for b in self.lowered.regions.own_blocks(region_id) {
                    if self.lowered.cfg.block(b).branch_stmt() == Some(stmt) {
                        loop_header_of.insert(child, b);
                        loop_of_header.insert(b, (child, stmt));
                    }
                }
            }
        }

        let entry_node = node_of
            .get(&region.entry_block)
            .copied()
            .unwrap_or(Node::Block(region.entry_block));

        let mut memo: HashMap<Node, u64> = HashMap::new();
        self.longest_from(
            entry_node,
            &node_of,
            &loop_of_header,
            &loop_header_of,
            &mut memo,
        )
    }

    fn node_weight(
        &self,
        node: Node,
        loop_of_header: &HashMap<BlockId, (RegionId, StmtId)>,
    ) -> u64 {
        match node {
            Node::Block(b) => {
                let base = self
                    .block_segment
                    .get(&b)
                    .map(|s| self.segment_value(*s))
                    .unwrap_or(0);
                if let Some((body_region, stmt)) = loop_of_header.get(&b) {
                    let bound = u64::from(self.lowered.cfg.loop_bound(*stmt).unwrap_or(0));
                    let body = self.region_wcet(*body_region);
                    base * (bound + 1) + body * bound
                } else {
                    base
                }
            }
            Node::Child(r) => self.region_wcet(r),
        }
    }

    fn longest_from(
        &self,
        node: Node,
        node_of: &HashMap<BlockId, Node>,
        loop_of_header: &HashMap<BlockId, (RegionId, StmtId)>,
        loop_header_of: &HashMap<RegionId, BlockId>,
        memo: &mut HashMap<Node, u64>,
    ) -> u64 {
        if let Some(v) = memo.get(&node) {
            return *v;
        }
        let weight = self.node_weight(node, loop_of_header);
        // Successor nodes: CFG successors of the node's frontier blocks that
        // stay inside the region, skipping loop-internal edges.
        let frontier: Vec<BlockId> = match node {
            Node::Block(b) => vec![b],
            Node::Child(r) => self.lowered.regions.region(r).blocks.clone(),
        };
        let mut best_tail = 0u64;
        for b in frontier {
            for succ in self.lowered.cfg.successors(b) {
                let Some(&succ_node) = node_of.get(&succ) else {
                    continue; // leaves the region
                };
                if succ_node == node {
                    continue; // internal edge of a child region
                }
                // Skip the loop-entry edge (header → body) and the back edge
                // (body → header): the composite weight already accounts for
                // the iterations.
                if let Node::Block(header) = node {
                    if let Some((body_region, _)) = loop_of_header.get(&header) {
                        if succ_node == Node::Child(*body_region) {
                            continue;
                        }
                    }
                }
                if let Node::Child(child) = node {
                    if loop_header_of.get(&child).map(|h| Node::Block(*h)) == Some(succ_node) {
                        continue;
                    }
                }
                let tail =
                    self.longest_from(succ_node, node_of, loop_of_header, loop_header_of, memo);
                best_tail = best_tail.max(tail);
            }
        }
        let total = weight + best_tail;
        memo.insert(node, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MeasurementCampaign;
    use crate::partition::PartitionPlan;
    use crate::testgen::HybridGenerator;
    use tmg_cfg::build_cfg;
    use tmg_minic::parse_function;
    use tmg_minic::value::InputVector;
    use tmg_target::{CostModel, Machine};

    fn wcet_for(src: &str, bound: u128) -> (u64, tmg_cfg::LoweredFunction, tmg_minic::Function) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let plan = PartitionPlan::compute(&lowered, bound);
        let suite = HybridGenerator::new().generate(&f, &lowered, &plan);
        let campaign =
            MeasurementCampaign::run(&f, &lowered, &plan, &suite.vectors(), &CostModel::hcs12())
                .expect("measure");
        let wcet = compute_wcet(&lowered, &plan, &campaign.worst_case_map());
        (wcet, lowered, f)
    }

    fn exhaustive_max(
        lowered: &tmg_cfg::LoweredFunction,
        f: &tmg_minic::Function,
        values: impl Iterator<Item = Vec<(&'static str, i64)>>,
    ) -> u64 {
        let machine = Machine::new(&lowered.cfg, f, CostModel::hcs12());
        values
            .map(|assignment| {
                let mut iv = InputVector::new();
                for (k, v) in assignment {
                    iv.set(k, v);
                }
                machine.end_to_end_cycles(&iv).expect("run")
            })
            .max()
            .expect("nonempty")
    }

    #[test]
    fn bound_exceeds_exhaustive_maximum_for_alternatives() {
        let src = r#"
            void f(char a __range(0, 3)) {
                setup();
                if (a > 1) { heavy(); heavy(); } else { light(); }
                if (a == 0) { extra(); }
                teardown();
            }
        "#;
        for bound in [1u128, 2, 16] {
            let (wcet, lowered, f) = wcet_for(src, bound);
            let exhaustive = exhaustive_max(&lowered, &f, (0..=3).map(|v| vec![("a", v)]));
            assert!(
                wcet >= exhaustive,
                "bound {bound}: wcet {wcet} must dominate exhaustive {exhaustive}"
            );
            // And it should not be absurdly pessimistic on this tiny example.
            assert!(wcet <= exhaustive * 3);
        }
    }

    #[test]
    fn loops_multiply_by_their_bound() {
        let src = r#"
            void f(char n __range(0, 5)) {
                char i = 0;
                while (i < n) __bound(5) { body(); i = i + 1; }
                done();
            }
        "#;
        let (wcet, lowered, f) = wcet_for(src, 1);
        let exhaustive = exhaustive_max(&lowered, &f, (0..=5).map(|v| vec![("n", v)]));
        assert!(wcet >= exhaustive, "wcet {wcet} vs exhaustive {exhaustive}");
    }

    #[test]
    fn collapsed_root_uses_the_measured_maximum_directly() {
        let src = "void f(char a __range(0, 1)) { if (a) { x(); } y(); }";
        let (wcet, lowered, f) = wcet_for(src, 100);
        let exhaustive = exhaustive_max(&lowered, &f, (0..=1).map(|v| vec![("a", v)]));
        // With the whole function collapsed the bound equals the measured
        // end-to-end maximum plus the instrumentation overhead of the
        // boundary points.
        assert!(wcet >= exhaustive);
        assert!(wcet <= exhaustive + 4 * CostModel::hcs12().read_cycle_counter);
    }

    #[test]
    fn finer_partitions_are_more_pessimistic() {
        let src = r#"
            void f(char a __range(0, 3), char b __range(0, 3)) {
                if (a > 1) { p1(); p2(); } else { p3(); }
                if (b > 2) { p4(); } else { p5(); p6(); }
            }
        "#;
        let (wcet_fine, _, _) = wcet_for(src, 1);
        let (wcet_coarse, _, _) = wcet_for(src, 64);
        assert!(wcet_fine >= wcet_coarse);
    }
}
