//! The instrumentation-point / measurement tradeoff of Section 2.3
//! (Figures 2 and 3).

use crate::partition::PartitionPlan;
use serde::{Deserialize, Serialize};
use tmg_cfg::LoweredFunction;

/// One point of the tradeoff curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Path bound `b`.
    pub path_bound: u128,
    /// Instrumentation points `ip` at that bound.
    pub instrumentation_points: usize,
    /// Measurements `m` at that bound (saturating).
    pub measurements: u128,
    /// Number of program segments of the partition.
    pub segments: usize,
}

/// Computes the tradeoff curve for the given path bounds.
///
/// Figure 2 plots `ip` over `b` (log-scaled `b`); Figure 3 plots `m` over
/// `ip`.  Both are derived from the same sweep.
pub fn sweep_path_bounds(lowered: &LoweredFunction, bounds: &[u128]) -> Vec<TradeoffPoint> {
    bounds
        .iter()
        .map(|&b| {
            let plan = PartitionPlan::compute(lowered, b);
            TradeoffPoint {
                path_bound: b,
                instrumentation_points: plan.instrumentation_points(),
                measurements: plan.measurements(),
                segments: plan.segments.len(),
            }
        })
        .collect()
}

/// The logarithmically spaced bounds used for the Figure-2 sweep
/// (1, 2, 5, 10, 20, ... up to `max`).
pub fn log_spaced_bounds(max: u128) -> Vec<u128> {
    let mut out = Vec::new();
    let mut decade: u128 = 1;
    while decade <= max {
        for factor in [1u128, 2, 5] {
            let b = decade.saturating_mul(factor);
            if b <= max {
                out.push(b);
            }
        }
        decade = decade.saturating_mul(10);
    }
    if out.last() != Some(&max) {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_codegen::{figure1_function, generate_automotive, AutomotiveConfig};

    #[test]
    fn log_spaced_bounds_are_increasing_and_capped() {
        let bounds = log_spaced_bounds(1_000);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*bounds.first().expect("nonempty"), 1);
        assert_eq!(*bounds.last().expect("nonempty"), 1_000);
    }

    #[test]
    fn instrumentation_points_decrease_monotonically_with_the_bound() {
        let g = generate_automotive(&AutomotiveConfig::small(11));
        let lowered = build_cfg(&g.function);
        let sweep = sweep_path_bounds(&lowered, &log_spaced_bounds(1_000_000));
        for w in sweep.windows(2) {
            assert!(w[1].instrumentation_points <= w[0].instrumentation_points);
        }
        // At b = 1 every measurable unit is instrumented on its own.
        assert_eq!(
            sweep[0].instrumentation_points,
            lowered.cfg.measurable_units().len() * 2
        );
    }

    #[test]
    fn measurements_explode_as_instrumentation_points_shrink() {
        let g = generate_automotive(&AutomotiveConfig::small(5));
        let lowered = build_cfg(&g.function);
        let sweep = sweep_path_bounds(&lowered, &log_spaced_bounds(1_000_000));
        let first = sweep.first().expect("sweep");
        let last = sweep.last().expect("sweep");
        assert!(last.instrumentation_points < first.instrumentation_points);
        assert!(last.measurements > first.measurements);
    }

    #[test]
    fn figure1_sweep_matches_table1_endpoints() {
        let lowered = build_cfg(&figure1_function(false));
        let sweep = sweep_path_bounds(&lowered, &[1, 6]);
        assert_eq!(sweep[0].instrumentation_points, 22);
        assert_eq!(sweep[0].measurements, 11);
        assert_eq!(sweep[1].instrumentation_points, 2);
        assert_eq!(sweep[1].measurements, 6);
    }
}
