//! The instrumentation-point / measurement tradeoff of Section 2.3
//! (Figures 2 and 3).
//!
//! Partitioning is *monotone* in the path bound `b`: raising the bound only
//! merges decomposed regions back into whole segments, never the reverse.
//! The sweep behind Figures 2 and 3 exploits that: instead of running one
//! full `PartitionPlan::compute` per bound (re-walking every block list ~20
//! times), [`sweep_path_bounds`] extracts the per-region path counts once
//! (the [`PathCounts`] artifact of `tmg_cfg`) and replays the bounds in
//! ascending order over a single region tree, applying each region's
//! *collapse event* — the threshold at which it stops being decomposed —
//! exactly once.  The emitted [`TradeoffPoint`]s are bit-identical to the
//! per-bound reference path, which is kept as
//! [`sweep_path_bounds_reference`] for the benchmark harness and the
//! equivalence tests.

use crate::partition::PartitionPlan;
use serde::{Deserialize, Serialize};
use tmg_cfg::{LoweredFunction, PathCounts, RegionId};

/// One point of the tradeoff curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Path bound `b`.
    pub path_bound: u128,
    /// Instrumentation points `ip` at that bound.
    pub instrumentation_points: usize,
    /// Measurements `m` at that bound (saturating).
    pub measurements: u128,
    /// Number of program segments of the partition.
    pub segments: usize,
}

/// Computes the tradeoff curve for the given path bounds.
///
/// Figure 2 plots `ip` over `b` (log-scaled `b`); Figure 3 plots `m` over
/// `ip`.  Both are derived from the same sweep.  Points are returned in the
/// order of `bounds` and are identical to running
/// [`PartitionPlan::compute`] per bound.
pub fn sweep_path_bounds(lowered: &LoweredFunction, bounds: &[u128]) -> Vec<TradeoffPoint> {
    sweep_with_counts(&PathCounts::compute(lowered), bounds)
}

/// The pre-optimisation sweep: one independent [`PartitionPlan::compute`]
/// per bound.  Kept as the measurable reference for `reproduce bench` and
/// the bit-identity tests of the incremental sweep.
pub fn sweep_path_bounds_reference(
    lowered: &LoweredFunction,
    bounds: &[u128],
) -> Vec<TradeoffPoint> {
    bounds
        .iter()
        .map(|&b| {
            let plan = PartitionPlan::compute(lowered, b);
            TradeoffPoint {
                path_bound: b,
                instrumentation_points: plan.instrumentation_points(),
                measurements: plan.measurements(),
                segments: plan.segments.len(),
            }
        })
        .collect()
}

/// Exact 192-bit accumulator for segment-path sums.
///
/// The reference path folds segment path counts with `saturating_add`; over
/// non-negative operands that fold equals `min(true sum, u128::MAX)`
/// regardless of association, so an exact wide sum reproduces it — and,
/// unlike a saturating accumulator, stays *subtractable* when a collapse
/// event replaces a subtree's contribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WideSum {
    low: u128,
    high: u64,
}

impl WideSum {
    fn of(v: u128) -> WideSum {
        WideSum { low: v, high: 0 }
    }

    fn add(&mut self, other: WideSum) {
        let (low, carry) = self.low.overflowing_add(other.low);
        self.low = low;
        self.high += u64::from(carry) + other.high;
    }

    fn sub(&mut self, other: WideSum) {
        let (low, borrow) = self.low.overflowing_sub(other.low);
        self.low = low;
        self.high -= u64::from(borrow) + other.high;
    }

    /// The value the reference's saturating fold would have produced.
    fn saturating(self) -> u128 {
        if self.high > 0 {
            u128::MAX
        } else {
            self.low
        }
    }
}

/// What one region's subtree currently contributes to the partition.
#[derive(Debug, Clone, Copy, Default)]
struct Contribution {
    segments: u64,
    measurements: WideSum,
}

/// Derives the whole sweep from a [`PathCounts`] artifact in one region-tree
/// walk plus one collapse event per region.
///
/// A region *collapses* (becomes a single whole segment) once `b` reaches
/// its path count; because a parent's path count is never smaller than a
/// child's, collapses happen strictly bottom-up, so each region's event can
/// be applied once, in ascending threshold order, by swapping the region's
/// cached subtree contribution for `(1 segment, path_count measurements)`
/// and bubbling the delta up the ancestor chain.  Input bounds may be in any
/// order (they are replayed sorted and the points returned in input order).
pub fn sweep_with_counts(counts: &PathCounts, bounds: &[u128]) -> Vec<TradeoffPoint> {
    let n = counts.len();
    // Contributions with every region decomposed (the b = 0 partition),
    // computed bottom-up: pre-order ids guarantee children have larger ids
    // than their parent.
    let mut contrib: Vec<Contribution> = vec![Contribution::default(); n];
    for i in (0..n).rev() {
        let id = RegionId(i as u32);
        let own = u64::from(counts.own_block_count(id));
        let mut c = Contribution {
            segments: own,
            measurements: WideSum::of(u128::from(own)),
        };
        for &child in counts.children(id) {
            let cc = contrib[child.index()];
            c.segments += cc.segments;
            c.measurements.add(cc.measurements);
        }
        contrib[i] = c;
    }
    // Collapse events in ascending threshold order; at equal thresholds
    // children first (larger pre-order id), so a parent's event sees its
    // children already collapsed — the order `PartitionPlan::compute`'s
    // recursion implies.
    let mut events: Vec<u32> = (0..n as u32).collect();
    events.sort_by(|&a, &b| {
        counts
            .path_count(RegionId(a))
            .cmp(&counts.path_count(RegionId(b)))
            .then(b.cmp(&a))
    });
    let mut order: Vec<usize> = (0..bounds.len()).collect();
    order.sort_by_key(|&i| bounds[i]);

    let root = counts.root_id().index();
    let mut out: Vec<TradeoffPoint> = bounds
        .iter()
        .map(|&b| TradeoffPoint {
            path_bound: b,
            instrumentation_points: 0,
            measurements: 0,
            segments: 0,
        })
        .collect();
    let mut next_event = 0usize;
    for &bi in &order {
        let b = bounds[bi];
        while next_event < events.len() {
            let r = RegionId(events[next_event]);
            if counts.path_count(r) > b {
                break;
            }
            let old = contrib[r.index()];
            let new = Contribution {
                segments: 1,
                measurements: WideSum::of(counts.path_count(r)),
            };
            contrib[r.index()] = new;
            let mut ancestor = counts.parent(r);
            while let Some(p) = ancestor {
                let c = &mut contrib[p.index()];
                c.segments = c.segments - old.segments + new.segments;
                c.measurements.sub(old.measurements);
                c.measurements.add(new.measurements);
                ancestor = counts.parent(p);
            }
            next_event += 1;
        }
        let total = contrib[root];
        out[bi] = TradeoffPoint {
            path_bound: b,
            instrumentation_points: total.segments as usize * 2,
            measurements: total.measurements.saturating(),
            segments: total.segments as usize,
        };
    }
    out
}

/// The logarithmically spaced bounds used for the Figure-2 sweep
/// (1, 2, 5, 10, 20, ... up to `max`), strictly increasing and ending with
/// `max` exactly once — a `max` that collides with a generated `1/2/5 ×
/// 10^k` bound (or with the `u128` saturation plateau) is not repeated.
pub fn log_spaced_bounds(max: u128) -> Vec<u128> {
    let mut out: Vec<u128> = Vec::new();
    let mut decade: u128 = 1;
    loop {
        for factor in [1u128, 2, 5] {
            let b = decade.saturating_mul(factor);
            if b <= max && out.last() != Some(&b) {
                out.push(b);
            }
        }
        let next = decade.saturating_mul(10);
        if next <= decade || next > max {
            // Saturated (the plateau would repeat forever) or past the cap.
            break;
        }
        decade = next;
    }
    if out.last() != Some(&max) {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_codegen::{figure1_function, generate_automotive, AutomotiveConfig};
    use tmg_minic::parse_function;

    #[test]
    fn log_spaced_bounds_are_increasing_and_capped() {
        let bounds = log_spaced_bounds(1_000);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*bounds.first().expect("nonempty"), 1);
        assert_eq!(*bounds.last().expect("nonempty"), 1_000);
    }

    #[test]
    fn log_spaced_bounds_do_not_duplicate_a_colliding_max() {
        // 500 and 20 are themselves generated 1/2/5 × 10^k bounds; they must
        // appear exactly once, as the final element.
        for max in [500u128, 20, 1, 2, 5, 10_000] {
            let bounds = log_spaced_bounds(max);
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "max {max}: {bounds:?}"
            );
            assert_eq!(*bounds.last().expect("nonempty"), max);
            assert_eq!(
                bounds.iter().filter(|&&b| b == max).count(),
                1,
                "max {max} must not be duplicated"
            );
        }
    }

    #[test]
    fn log_spaced_bounds_terminate_and_stay_strict_at_saturation() {
        // Near u128::MAX the 1/2/5 ladder saturates; the generator must
        // terminate, stay strictly increasing, and emit the saturated value
        // once.
        let bounds = log_spaced_bounds(u128::MAX);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        assert_eq!(*bounds.last().expect("nonempty"), u128::MAX);
        assert_eq!(bounds.iter().filter(|&&b| b == u128::MAX).count(), 1);
    }

    #[test]
    fn incremental_sweep_is_bit_identical_to_the_reference() {
        let sources = [
            "void f(int a) { p1(); if (a) { p2(); } p3(); }",
            "void f(int a) { if (a) { if (a > 1) { x(); } else { y(); } } if (a) { z(); } }",
            "void f(int s) { switch (s) { case 0: if (s) { a0(); } break; case 1: a1(); break; default: d(); break; } }",
            "void f(int n) { int i; i = 0; while (i < n) __bound(3) { if (i) { a(); } i = i + 1; } }",
        ];
        for src in sources {
            let lowered = build_cfg(&parse_function(src).expect("parse"));
            let bounds = log_spaced_bounds(1_000_000);
            assert_eq!(
                sweep_path_bounds(&lowered, &bounds),
                sweep_path_bounds_reference(&lowered, &bounds),
                "{src}"
            );
        }
        // And on a generated automotive-sized function.
        let g = generate_automotive(&AutomotiveConfig::small(7));
        let lowered = build_cfg(&g.function);
        let bounds = log_spaced_bounds(1_000_000);
        assert_eq!(
            sweep_path_bounds(&lowered, &bounds),
            sweep_path_bounds_reference(&lowered, &bounds)
        );
    }

    #[test]
    fn incremental_sweep_handles_unsorted_and_duplicate_bounds() {
        let lowered = build_cfg(&figure1_function(false));
        let bounds = [6u128, 1, 3, 6, 2, 1_000, 1];
        assert_eq!(
            sweep_with_counts(&PathCounts::compute(&lowered), &bounds),
            sweep_path_bounds_reference(&lowered, &bounds)
        );
    }

    #[test]
    fn incremental_sweep_survives_saturated_path_counts() {
        // 2^130 paths saturate the per-region u128 counts; the wide
        // accumulator must still match the reference's saturating fold.
        let mut src = String::from("void f(int a) {");
        for _ in 0..130 {
            src.push_str(" if (a) { x(); }");
        }
        src.push('}');
        let lowered = build_cfg(&parse_function(&src).expect("parse"));
        let bounds = [1u128, 2, 1 << 20, u128::MAX];
        assert_eq!(
            sweep_path_bounds(&lowered, &bounds),
            sweep_path_bounds_reference(&lowered, &bounds)
        );
    }

    #[test]
    fn instrumentation_points_decrease_monotonically_with_the_bound() {
        let g = generate_automotive(&AutomotiveConfig::small(11));
        let lowered = build_cfg(&g.function);
        let sweep = sweep_path_bounds(&lowered, &log_spaced_bounds(1_000_000));
        for w in sweep.windows(2) {
            assert!(w[1].instrumentation_points <= w[0].instrumentation_points);
        }
        // At b = 1 every measurable unit is instrumented on its own.
        assert_eq!(
            sweep[0].instrumentation_points,
            lowered.cfg.measurable_units().len() * 2
        );
    }

    #[test]
    fn measurements_explode_as_instrumentation_points_shrink() {
        let g = generate_automotive(&AutomotiveConfig::small(5));
        let lowered = build_cfg(&g.function);
        let sweep = sweep_path_bounds(&lowered, &log_spaced_bounds(1_000_000));
        let first = sweep.first().expect("sweep");
        let last = sweep.last().expect("sweep");
        assert!(last.instrumentation_points < first.instrumentation_points);
        assert!(last.measurements > first.measurements);
    }

    #[test]
    fn figure1_sweep_matches_table1_endpoints() {
        let lowered = build_cfg(&figure1_function(false));
        let sweep = sweep_path_bounds(&lowered, &[1, 6]);
        assert_eq!(sweep[0].instrumentation_points, 22);
        assert_eq!(sweep[0].measurements, 11);
        assert_eq!(sweep[1].instrumentation_points, 2);
        assert_eq!(sweep[1].measurements, 6);
    }
}
