//! Execution-time measurement of program segments on the simulated target.

use crate::partition::{PartitionPlan, SegmentId, SegmentKind};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tmg_cfg::{LoweredFunction, Terminator};
use tmg_minic::ast::Function;
use tmg_minic::value::InputVector;
use tmg_target::{compile::terminator_cycles, CostModel, InstrumentationPoint, Machine, PointId};

/// A measurement run faulted on the target (division by zero, violated loop
/// bound).  Carries the analysed function's name so the pipeline's
/// [`From`] conversion into `AnalysisError` keeps the failing stage and
/// function attributable without re-threading context through every caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementError {
    /// Name of the function whose run faulted.
    pub function: String,
    /// What went wrong (the offending vector is named).
    pub message: String,
}

impl MeasurementError {
    fn new(function: &Function, message: String) -> MeasurementError {
        MeasurementError {
            function: function.name.clone(),
            message,
        }
    }
}

impl fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "measurement of `{}` failed: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for MeasurementError {}

/// Measured timing of one program segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentTiming {
    /// The segment.
    pub segment: SegmentId,
    /// All measured durations (cycles between the segment's entry and exit
    /// instrumentation points), one per traversal.
    pub samples: Vec<u64>,
    /// Maximum observed execution time (0 if the segment was never entered).
    pub max_observed: u64,
    /// Static worst-case estimate from the block cost model, used as a
    /// fallback for segments no test vector reached.
    pub static_estimate: u64,
}

impl SegmentTiming {
    /// The value the timing schema uses: the measured maximum, or the static
    /// estimate when nothing was measured.
    pub fn worst_case(&self) -> u64 {
        if self.samples.is_empty() {
            self.static_estimate
        } else {
            self.max_observed
        }
    }
}

/// The per-segment measurement campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementCampaign {
    /// Timings per segment, indexed by segment id order of the plan.
    pub timings: Vec<SegmentTiming>,
    /// Number of instrumented runs executed.
    pub runs: usize,
}

impl MeasurementCampaign {
    /// Runs the instrumented program once per test vector and extracts the
    /// per-segment execution times from the cycle-counter events.
    ///
    /// # Errors
    ///
    /// Returns a [`MeasurementError`] when the target faults on a vector
    /// (division by zero, violated loop bound); the offending vector is
    /// named.
    pub fn run(
        function: &Function,
        lowered: &LoweredFunction,
        plan: &PartitionPlan,
        vectors: &[InputVector],
        cost_model: &CostModel,
    ) -> Result<MeasurementCampaign, MeasurementError> {
        let machine = Machine::new(&lowered.cfg, function, cost_model.clone());
        let instrumentation = plan.instrumentation(lowered);
        let mut all_points: Vec<InstrumentationPoint> = Vec::new();
        // Point → (owning segment, is-entry) role table, so extracting the
        // per-segment durations is one pass over a run's events instead of
        // one scan per segment.
        let mut point_role: FxHashMap<PointId, (SegmentId, bool)> = FxHashMap::default();
        for (segment, entries, exits) in &instrumentation {
            for p in entries {
                point_role.insert(p.id, (*segment, true));
            }
            for p in exits {
                point_role.insert(p.id, (*segment, false));
            }
            all_points.extend(entries.iter().cloned());
            all_points.extend(exits.iter().cloned());
        }

        let mut samples: FxHashMap<SegmentId, Vec<u64>> = FxHashMap::default();
        let mut open: FxHashMap<SegmentId, u64> = FxHashMap::default();
        for vector in vectors {
            let run = machine.run(vector, &all_points).map_err(|e| {
                MeasurementError::new(function, format!("measurement run failed on {vector}: {e}"))
            })?;
            open.clear();
            for event in &run.events {
                let (segment, is_entry) = point_role[&event.point];
                if is_entry {
                    // First entry reading since the last exit wins.
                    open.entry(segment).or_insert(event.cycles);
                } else if let Some(start) = open.remove(&segment) {
                    samples
                        .entry(segment)
                        .or_default()
                        .push(event.cycles.saturating_sub(start));
                }
            }
        }

        let timings = plan
            .segments
            .iter()
            .map(|segment| {
                let segment_samples = samples.remove(&segment.id).unwrap_or_default();
                let max_observed = segment_samples.iter().copied().max().unwrap_or(0);
                SegmentTiming {
                    segment: segment.id,
                    static_estimate: static_segment_estimate(
                        lowered, &machine, segment, cost_model,
                    ),
                    samples: segment_samples,
                    max_observed,
                }
            })
            .collect();
        Ok(MeasurementCampaign {
            timings,
            runs: vectors.len(),
        })
    }

    /// Worst-case value per segment (measured max or static fallback).
    pub fn worst_case_map(&self) -> HashMap<SegmentId, u64> {
        self.timings
            .iter()
            .map(|t| (t.segment, t.worst_case()))
            .collect()
    }

    /// Number of segments that were actually observed at least once.
    pub fn observed_segments(&self) -> usize {
        self.timings
            .iter()
            .filter(|t| !t.samples.is_empty())
            .count()
    }
}

/// Static worst-case estimate of a segment from the instruction cost model:
/// the sum over its blocks of the straight-line cost plus the most expensive
/// terminator outcome.  Used only as a fallback for unreached segments, and
/// by tests as a sanity bound.
fn static_segment_estimate(
    lowered: &LoweredFunction,
    machine: &Machine<'_>,
    segment: &crate::partition::Segment,
    cost_model: &CostModel,
) -> u64 {
    let per_block: u64 = segment
        .blocks
        .iter()
        .map(|&b| {
            let body = machine.compiled().block_cycles(b, cost_model);
            let terminator = &lowered.cfg.block(b).terminator;
            let worst_term = match terminator {
                Terminator::Switch { arms, .. } => (0..=arms.len())
                    .map(|i| terminator_cycles(terminator, i, cost_model))
                    .max()
                    .unwrap_or(0),
                _ => (0..2)
                    .map(|i| terminator_cycles(terminator, i, cost_model))
                    .max()
                    .unwrap_or(0),
            };
            body + worst_term
        })
        .sum();
    let loop_factor: u64 = match segment.kind {
        SegmentKind::Region(region_id) => {
            // If the region is a loop body, its blocks execute once per
            // iteration; scale by the bound.
            match lowered.regions.region(region_id).kind {
                tmg_cfg::RegionKind::LoopBody(stmt) => {
                    u64::from(lowered.cfg.loop_bound(stmt).unwrap_or(1)).max(1)
                }
                _ => 1,
            }
        }
        SegmentKind::Block(_) => 1,
    };
    per_block * loop_factor + 2 * cost_model.read_cycle_counter
}

/// Exhaustively measures the end-to-end execution time over an input space
/// and returns `(max_cycles, argmax_vector)`.  This is what the paper does
/// for the wiper-control case study ("due to the small input space we could
/// also evaluate the WCET ... in exhaustive end-to-end measurements").
///
/// # Errors
///
/// Returns a [`MeasurementError`] when the target faults on a vector or when
/// the input space is empty.
pub fn exhaustive_end_to_end(
    function: &Function,
    lowered: &LoweredFunction,
    inputs: &[InputVector],
    cost_model: &CostModel,
) -> Result<(u64, InputVector), MeasurementError> {
    let machine = Machine::new(&lowered.cfg, function, cost_model.clone());
    let mut best: Option<(u64, InputVector)> = None;
    for vector in inputs {
        let cycles = machine.end_to_end_cycles(vector).map_err(|e| {
            MeasurementError::new(function, format!("end-to-end run failed on {vector}: {e}"))
        })?;
        if best.as_ref().map(|(b, _)| cycles > *b).unwrap_or(true) {
            best = Some((cycles, vector.clone()));
        }
    }
    best.ok_or_else(|| MeasurementError::new(function, "empty input space".to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionPlan;
    use crate::testgen::HybridGenerator;
    use tmg_cfg::build_cfg;
    use tmg_minic::parse_function;

    fn campaign(src: &str, bound: u128) -> (PartitionPlan, MeasurementCampaign) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let plan = PartitionPlan::compute(&lowered, bound);
        let suite = HybridGenerator::new().generate(&f, &lowered, &plan);
        let campaign =
            MeasurementCampaign::run(&f, &lowered, &plan, &suite.vectors(), &CostModel::hcs12())
                .expect("measurement");
        (plan, campaign)
    }

    #[test]
    fn every_feasible_segment_gets_samples() {
        let src = r#"
            void f(char a __range(0, 3)) {
                setup();
                if (a > 1) { heavy(); heavy2(); } else { light(); }
                teardown();
            }
        "#;
        let (plan, campaign) = campaign(src, 4);
        assert_eq!(campaign.timings.len(), plan.segments.len());
        assert_eq!(campaign.observed_segments(), plan.segments.len());
        for t in &campaign.timings {
            assert!(t.worst_case() > 0);
            assert_eq!(t.max_observed, t.samples.iter().copied().max().unwrap_or(0));
        }
    }

    #[test]
    fn unreachable_segments_fall_back_to_the_static_estimate() {
        let src = r#"
            void f(char a __range(0, 3)) {
                if (a > 10) { never(); }
                always();
            }
        "#;
        let (_, campaign) = campaign(src, 1);
        let unreached: Vec<&SegmentTiming> = campaign
            .timings
            .iter()
            .filter(|t| t.samples.is_empty())
            .collect();
        assert!(!unreached.is_empty(), "the a > 10 branch is infeasible");
        for t in unreached {
            assert!(t.worst_case() >= t.static_estimate);
            assert!(t.static_estimate > 0);
        }
    }

    #[test]
    fn exhaustive_end_to_end_finds_the_worst_input() {
        let src = r#"
            void f(char a __range(0, 2)) {
                if (a == 2) { heavy(); heavy(); heavy(); }
                if (a == 1) { heavy(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let space: Vec<InputVector> = (0..=2).map(|v| InputVector::new().with("a", v)).collect();
        let (max, argmax) =
            exhaustive_end_to_end(&f, &lowered, &space, &CostModel::hcs12()).expect("exhaustive");
        assert_eq!(argmax.get("a"), Some(2));
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        assert_eq!(machine.end_to_end_cycles(&argmax).expect("run"), max);
    }
}
