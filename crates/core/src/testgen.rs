//! Hybrid test-data generation (Section 3 of the paper).
//!
//! Test data are generated in two phases, exactly as the paper proposes:
//! first a cheap heuristic search (a small genetic algorithm over the input
//! domains) runs until it stops finding new paths, then the remaining paths
//! are handed to the model checker, which either produces a witness input
//! vector or proves the path infeasible.  The paper (citing Tracey et al.)
//! expects the heuristic phase to cover more than 90 % of the required test
//! cases; the `testgen` experiment of EXPERIMENTS.md checks that ratio.

use crate::partition::{PartitionPlan, SegmentId, SegmentKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;
use tmg_cfg::{enumerate_region_paths, BlockId, LoweredFunction, PathSpec, Terminator};
use tmg_minic::ast::Function;
use tmg_minic::interp::BranchChoice;
use tmg_minic::value::InputVector;
use tmg_minic::StmtId;
use tmg_target::{CostModel, Machine};
use tmg_tsys::{ModelChecker, PathQuery, SharedCheckModel};

/// What a coverage goal asks for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoalKind {
    /// Execute the given decision sequence inside a region segment.
    RegionPath(PathSpec),
    /// Execute the given basic block (single-block segments).
    BlockExecution(BlockId),
}

/// One coverage goal of the measurement campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageGoal {
    /// The segment the goal belongs to.
    pub segment: SegmentId,
    /// What must be exercised.
    pub kind: GoalKind,
}

/// Which phase produced a covering test vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// The heuristic (genetic) search.
    Heuristic,
    /// The model checker.
    ModelChecker,
}

/// Outcome for one coverage goal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageStatus {
    /// A test vector exercising the goal was found.
    Covered {
        /// The input vector.
        vector: InputVector,
        /// Which phase found it.
        by: GeneratorKind,
    },
    /// The model checker proved no input can exercise the goal.
    Infeasible,
    /// Neither phase settled the goal within its budget.
    Unknown,
}

/// The generated test suite with per-goal outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestSuite {
    /// Goals and their outcomes, in segment order.
    pub goals: Vec<(CoverageGoal, CoverageStatus)>,
}

impl TestSuite {
    /// All distinct covering input vectors.
    pub fn vectors(&self) -> Vec<InputVector> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (_, status) in &self.goals {
            if let CoverageStatus::Covered { vector, .. } = status {
                if seen.insert(vector.clone()) {
                    out.push(vector.clone());
                }
            }
        }
        out
    }

    /// Number of goals.
    pub fn goal_count(&self) -> usize {
        self.goals.len()
    }

    /// Goals covered by either phase.
    pub fn covered_count(&self) -> usize {
        self.goals
            .iter()
            .filter(|(_, s)| matches!(s, CoverageStatus::Covered { .. }))
            .count()
    }

    /// Goals covered by the heuristic phase.
    pub fn heuristic_covered(&self) -> usize {
        self.count_by(GeneratorKind::Heuristic)
    }

    /// Goals covered by the model checker.
    pub fn checker_covered(&self) -> usize {
        self.count_by(GeneratorKind::ModelChecker)
    }

    fn count_by(&self, kind: GeneratorKind) -> usize {
        self.goals
            .iter()
            .filter(|(_, s)| matches!(s, CoverageStatus::Covered { by, .. } if *by == kind))
            .count()
    }

    /// Goals proven infeasible.
    pub fn infeasible_count(&self) -> usize {
        self.goals
            .iter()
            .filter(|(_, s)| matches!(s, CoverageStatus::Infeasible))
            .count()
    }

    /// Goals left unresolved.
    pub fn unknown_count(&self) -> usize {
        self.goals
            .iter()
            .filter(|(_, s)| matches!(s, CoverageStatus::Unknown))
            .count()
    }

    /// Fraction of *feasible* goals covered by the heuristic phase — the
    /// ">90 %" figure of Section 3.
    pub fn heuristic_ratio(&self) -> f64 {
        let feasible = self.covered_count();
        if feasible == 0 {
            return 1.0;
        }
        self.heuristic_covered() as f64 / feasible as f64
    }
}

/// Configuration of the heuristic (genetic) phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeuristicConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// Stop after this many generations without new coverage — the paper's
    /// "no new paths have been reached with the last N generated patterns".
    pub stall_generations: usize,
    /// Per-parameter mutation probability.
    pub mutation_rate: f64,
    /// RNG seed (the whole pipeline is deterministic for a given seed).
    pub seed: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            population: 32,
            max_generations: 200,
            stall_generations: 15,
            mutation_rate: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

/// The two-phase test-data generator.
#[derive(Debug, Clone)]
pub struct HybridGenerator {
    /// Heuristic-phase configuration.
    pub heuristic: HeuristicConfig,
    /// Model checker used for the residual paths.
    pub checker: ModelChecker,
    /// Cap on enumerated paths per segment.
    pub max_paths_per_segment: usize,
    /// Cost model of the target used to replay candidate vectors.
    pub cost_model: CostModel,
    /// Run the model-checking phase across all cores (checker queries are
    /// independent per goal, and results are merged in goal order, so the
    /// generated suite is identical to a sequential run).
    pub parallel: bool,
    /// Select the optimised generation pipeline: all of a function's
    /// residual goals are answered through one shared state-space
    /// exploration ([`ModelChecker::check_many`]) instead of one search per
    /// goal, and goal matching in the heuristic phase runs through the
    /// precomputed allocation-free matcher.  When disabled, the whole legacy
    /// pipeline is restored (per-goal searches, allocation-per-call
    /// matching) as the benchmark's measured reference.  Results are
    /// bit-identical either way.
    pub batch_queries: bool,
}

/// Residual-goal count below which the per-goal checker fan-out runs inline:
/// a couple of queries finish faster on the current thread than the rayon
/// pool can hand them out and collect them back.
const PARALLEL_RESIDUAL_THRESHOLD: usize = 4;

/// A sequentially-measured generation evaluation must cost at least this
/// much before the population fan-out moves to the worker pool: dispatching
/// microsecond-sized target runs costs more than running them inline, which
/// is exactly the `testgen_wiper` regression of BENCH_pr1.json.  Results are
/// identical either way (the evaluation is pure and collected in order), so
/// the switch can be made adaptively mid-search.
const PARALLEL_EVAL_MIN: std::time::Duration = std::time::Duration::from_millis(2);

impl Default for HybridGenerator {
    fn default() -> Self {
        HybridGenerator::new()
    }
}

impl HybridGenerator {
    /// A generator with default heuristic settings and a fully optimised
    /// model checker.
    pub fn new() -> HybridGenerator {
        HybridGenerator {
            heuristic: HeuristicConfig::default(),
            checker: ModelChecker::new(),
            max_paths_per_segment: 4096,
            cost_model: CostModel::hcs12(),
            parallel: true,
            batch_queries: true,
        }
    }

    /// Disables the parallel model-checking phase (used by the benchmark
    /// harness to measure the speedup; results are identical either way).
    pub fn sequential(mut self) -> HybridGenerator {
        self.parallel = false;
        self
    }

    /// Restores the legacy generation pipeline — one model-checker search
    /// per residual goal and allocation-per-call goal matching (used by the
    /// benchmark harness as the pre-optimisation reference; results are
    /// identical either way).
    pub fn unbatched(mut self) -> HybridGenerator {
        self.batch_queries = false;
        self
    }

    /// Builds the coverage goals of a partition plan.
    pub fn goals(&self, lowered: &LoweredFunction, plan: &PartitionPlan) -> Vec<CoverageGoal> {
        let mut goals = Vec::new();
        for segment in &plan.segments {
            match segment.kind {
                SegmentKind::Region(region_id) => {
                    let region = lowered.regions.region(region_id);
                    let paths =
                        enumerate_region_paths(&lowered.cfg, region, self.max_paths_per_segment)
                            .unwrap_or_default();
                    if paths.is_empty() {
                        goals.push(CoverageGoal {
                            segment: segment.id,
                            kind: GoalKind::BlockExecution(region.entry_block),
                        });
                    } else {
                        for path in paths {
                            goals.push(CoverageGoal {
                                segment: segment.id,
                                kind: GoalKind::RegionPath(path),
                            });
                        }
                    }
                }
                SegmentKind::Block(block) => goals.push(CoverageGoal {
                    segment: segment.id,
                    kind: GoalKind::BlockExecution(block),
                }),
            }
        }
        goals
    }

    /// Runs both phases and returns the test suite.
    pub fn generate(
        &self,
        function: &Function,
        lowered: &LoweredFunction,
        plan: &PartitionPlan,
    ) -> TestSuite {
        self.generate_with_model(function, lowered, plan, None)
    }

    /// Like [`generate`](HybridGenerator::generate), but answering the
    /// residual checker batch through a previously prepared
    /// [`SharedCheckModel`] (the pipeline's cached artifact), skipping the
    /// per-batch optimisation/encoding/preparation.  Suites are bit-identical
    /// with and without the shared model: a batch the artifact does not
    /// cover falls back to the plain [`ModelChecker::check_many`] path
    /// internally.
    pub fn generate_with_model(
        &self,
        function: &Function,
        lowered: &LoweredFunction,
        plan: &PartitionPlan,
        shared: Option<&SharedCheckModel>,
    ) -> TestSuite {
        self.generate_impl(function, lowered, plan, SharedSource::Ready(shared))
    }

    /// Like [`generate_with_model`](HybridGenerator::generate_with_model),
    /// but the shared model is supplied lazily: `provider` is invoked only
    /// when a residual checker batch actually exists, so callers (the
    /// staged pipeline) never pay for optimising and encoding a model that
    /// a fully heuristic-covered function would not use.
    pub fn generate_with_model_provider<'a>(
        &self,
        function: &Function,
        lowered: &LoweredFunction,
        plan: &PartitionPlan,
        provider: impl FnOnce() -> Option<Arc<SharedCheckModel>> + 'a,
    ) -> TestSuite {
        self.generate_impl(
            function,
            lowered,
            plan,
            SharedSource::Lazy(Box::new(provider)),
        )
    }

    fn generate_impl(
        &self,
        function: &Function,
        lowered: &LoweredFunction,
        plan: &PartitionPlan,
        shared: SharedSource<'_>,
    ) -> TestSuite {
        let goals = self.goals(lowered, plan);
        let machine = Machine::new(&lowered.cfg, function, self.cost_model.clone());
        let mut status: Vec<Option<CoverageStatus>> = vec![None; goals.len()];

        // Phase 1: heuristic (genetic) search.
        self.heuristic_phase(function, &machine, &goals, &mut status);

        // Phase 2: model checking for the residual goals.  The default path
        // batches every residual query of the function through one shared
        // exploration; the per-goal path (kept for the perf baseline and as
        // the semantics reference) fans the independent queries out across
        // cores once there are enough of them to amortise the pool overhead.
        // All variants merge in goal order and produce identical suites.
        let residual: Vec<usize> = (0..goals.len()).filter(|&i| status[i].is_none()).collect();
        // A lazily supplied model is materialised only for a non-empty
        // residual batch on the batching pipeline.
        let holder: Option<Arc<SharedCheckModel>>;
        let shared: Option<&SharedCheckModel> = match shared {
            SharedSource::Ready(ready) => ready,
            SharedSource::Lazy(build) if self.batch_queries && !residual.is_empty() => {
                holder = build();
                holder.as_deref()
            }
            SharedSource::Lazy(_) => None,
        };
        let resolved: Vec<(usize, CoverageStatus)> = if self.batch_queries {
            self.check_residual_batched(function, lowered, &machine, &goals, &residual, shared)
        } else {
            let check = |&i: &usize| (i, self.check_goal(function, lowered, &machine, &goals[i]));
            if self.parallel && residual.len() >= PARALLEL_RESIDUAL_THRESHOLD {
                residual.par_iter().map(check).collect()
            } else {
                residual.iter().map(check).collect()
            }
        };
        for (i, outcome) in resolved {
            status[i] = Some(outcome);
        }

        TestSuite {
            goals: goals
                .into_iter()
                .zip(status)
                .map(|(g, s)| (g, s.unwrap_or(CoverageStatus::Unknown)))
                .collect(),
        }
    }

    fn heuristic_phase(
        &self,
        function: &Function,
        machine: &Machine<'_>,
        goals: &[CoverageGoal],
        status: &mut [Option<CoverageStatus>],
    ) {
        let mut rng = StdRng::seed_from_u64(self.heuristic.seed);
        // The optimised pipeline matches goals against runs through
        // pre-computed per-goal state; the legacy pipeline (the benchmark's
        // measured reference) keeps the allocation-per-call matching.
        let mut matcher = if self.batch_queries {
            Some(GoalMatcher::new(goals))
        } else {
            None
        };
        let domains: Vec<(String, i64, i64)> = function
            .params
            .iter()
            .map(|p| {
                let (lo, hi) = p.range.unwrap_or_else(|| p.ty.value_range());
                (p.name.clone(), lo, hi)
            })
            .collect();
        if domains.is_empty() {
            // No inputs: a single run decides everything reachable.
            if let Ok(run) = machine.run(&InputVector::new(), &[]) {
                record_coverage(
                    &InputVector::new(),
                    &run,
                    goals,
                    status,
                    GeneratorKind::Heuristic,
                );
            }
            return;
        }
        let random_vector = |rng: &mut StdRng| -> InputVector {
            domains
                .iter()
                .map(|(name, lo, hi)| (name.clone(), rng.gen_range(*lo..=*hi)))
                .collect()
        };
        let mut population: Vec<InputVector> = (0..self.heuristic.population)
            .map(|_| random_vector(&mut rng))
            .collect();
        let mut stall = 0usize;
        // Fan the evaluation out only once a generation is demonstrably
        // expensive enough to amortise the pool dispatch (measured on the
        // first sequential generations).
        let mut eval_in_parallel = false;
        for _generation in 0..self.heuristic.max_generations {
            // Evaluate the whole generation on the target first — runs are
            // independent, so they fan out across cores; coverage recording
            // and selection stay sequential (and the RNG untouched), keeping
            // the search bit-identical to a sequential evaluation.
            let runs: Vec<Option<tmg_target::RunResult>> =
                if self.parallel && eval_in_parallel && population.len() > 1 {
                    population
                        .par_iter()
                        .map(|ind| machine.run(ind, &[]).ok())
                        .collect()
                } else {
                    let eval_start = std::time::Instant::now();
                    let runs: Vec<Option<tmg_target::RunResult>> = population
                        .iter()
                        .map(|ind| machine.run(ind, &[]).ok())
                        .collect();
                    eval_in_parallel = eval_start.elapsed() >= PARALLEL_EVAL_MIN;
                    runs
                };
            let mut new_coverage = false;
            let mut scored: Vec<(usize, InputVector)> = Vec::with_capacity(population.len());
            for (individual, run) in population.iter().zip(&runs) {
                let Some(run) = run else {
                    scored.push((0, individual.clone()));
                    continue;
                };
                // Fitness: how many goals (covered or not) this run exercises,
                // which rewards individuals that reach deep code.
                let (newly, exercised) = if let Some(matcher) = matcher.as_mut() {
                    // Optimised pipeline: one matching pass per goal serves
                    // both coverage recording and the fitness count.
                    let mut newly = 0;
                    let mut exercised = 0;
                    for (i, _) in goals.iter().enumerate() {
                        if !matcher.matches(i, run) {
                            continue;
                        }
                        exercised += 1;
                        if status[i].is_none() {
                            status[i] = Some(CoverageStatus::Covered {
                                vector: individual.clone(),
                                by: GeneratorKind::Heuristic,
                            });
                            newly += 1;
                        }
                    }
                    (newly, exercised)
                } else {
                    let newly =
                        record_coverage(individual, run, goals, status, GeneratorKind::Heuristic);
                    let exercised = goals.iter().filter(|g| goal_matches(g, run)).count();
                    (newly, exercised)
                };
                new_coverage |= newly > 0;
                scored.push((exercised + newly * 4, individual.clone()));
            }
            if status.iter().all(|s| s.is_some()) {
                return;
            }
            stall = if new_coverage { 0 } else { stall + 1 };
            if stall >= self.heuristic.stall_generations {
                return;
            }
            // Next generation: elitism + tournament crossover + mutation.
            scored.sort_by_key(|(score, _)| std::cmp::Reverse(*score));
            let elite = scored
                .iter()
                .take((self.heuristic.population / 4).max(1))
                .map(|(_, v)| v.clone())
                .collect::<Vec<_>>();
            let mut next = elite.clone();
            while next.len() < self.heuristic.population {
                let pick = |rng: &mut StdRng| -> &InputVector {
                    let a = rng.gen_range(0..scored.len());
                    let b = rng.gen_range(0..scored.len());
                    if scored[a].0 >= scored[b].0 {
                        &scored[a].1
                    } else {
                        &scored[b].1
                    }
                };
                let mother = pick(&mut rng).clone();
                let father = pick(&mut rng).clone();
                let mut child = InputVector::new();
                for (name, lo, hi) in &domains {
                    let from_mother = rng.gen_bool(0.5);
                    let inherited = if from_mother {
                        mother.get(name)
                    } else {
                        father.get(name)
                    }
                    .unwrap_or(*lo);
                    let value = if rng.gen_bool(self.heuristic.mutation_rate) {
                        rng.gen_range(*lo..=*hi)
                    } else {
                        inherited
                    };
                    child.set(name.clone(), value);
                }
                next.push(child);
            }
            population = next;
        }
    }

    fn check_goal(
        &self,
        function: &Function,
        lowered: &LoweredFunction,
        machine: &Machine<'_>,
        goal: &CoverageGoal,
    ) -> CoverageStatus {
        let candidates = goal_candidate_queries(lowered, goal);
        if candidates.is_empty() {
            return CoverageStatus::Unknown;
        }
        let mut any_unknown = false;
        for query in candidates {
            let result = self.checker.find_test_data(function, &query);
            match resolve_candidate(goal, machine, &result.outcome) {
                CandidateVerdict::Covers(status) => return status,
                CandidateVerdict::Unknown => any_unknown = true,
                CandidateVerdict::Infeasible => {}
            }
        }
        if any_unknown {
            CoverageStatus::Unknown
        } else {
            CoverageStatus::Infeasible
        }
    }

    /// Resolves all residual goals of the function through one shared
    /// state-space exploration: every goal's candidate queries are collected
    /// into a single [`ModelChecker::check_many`] batch, then each goal folds
    /// its candidates' outcomes exactly as the per-goal path does.
    fn check_residual_batched(
        &self,
        function: &Function,
        lowered: &LoweredFunction,
        machine: &Machine<'_>,
        goals: &[CoverageGoal],
        residual: &[usize],
        shared: Option<&SharedCheckModel>,
    ) -> Vec<(usize, CoverageStatus)> {
        let mut queries: Vec<PathQuery> = Vec::new();
        // Per goal: the index range of its candidate queries in `queries`.
        let mut spans: Vec<(usize, usize, usize)> = Vec::with_capacity(residual.len());
        for &i in residual {
            let start = queries.len();
            queries.extend(goal_candidate_queries(lowered, &goals[i]));
            spans.push((i, start, queries.len()));
        }
        let results = match shared {
            Some(model) => self.checker.check_many_shared(function, model, &queries),
            None => self.checker.check_many(function, &queries),
        };
        spans
            .into_iter()
            .map(|(i, lo, hi)| {
                if lo == hi {
                    return (i, CoverageStatus::Unknown);
                }
                let mut any_unknown = false;
                for result in &results[lo..hi] {
                    match resolve_candidate(&goals[i], machine, &result.outcome) {
                        CandidateVerdict::Covers(status) => return (i, status),
                        CandidateVerdict::Unknown => any_unknown = true,
                        CandidateVerdict::Infeasible => {}
                    }
                }
                let status = if any_unknown {
                    CoverageStatus::Unknown
                } else {
                    CoverageStatus::Infeasible
                };
                (i, status)
            })
            .collect()
    }
}

/// How phase 2 of the generator obtains the shared checker model.
enum SharedSource<'a> {
    /// The caller already holds a model (or explicitly has none).
    Ready(Option<&'a SharedCheckModel>),
    /// The model is built on first need — the staged pipeline's cache
    /// lookup, deferred so fully heuristic-covered functions never pay for
    /// optimisation and encoding.
    Lazy(Box<dyn FnOnce() -> Option<Arc<SharedCheckModel>> + 'a>),
}

/// How one candidate query's outcome affects its goal.
enum CandidateVerdict {
    /// The goal is covered: stop looking at further candidates.
    Covers(CoverageStatus),
    /// Candidate proven infeasible: keep looking.
    Infeasible,
    /// Unresolved (budget, or a witness that fails target validation).
    Unknown,
}

/// Applies the witness-validation rule shared by the batched and per-goal
/// checker phases.
fn resolve_candidate(
    goal: &CoverageGoal,
    machine: &Machine<'_>,
    outcome: &tmg_tsys::CheckOutcome,
) -> CandidateVerdict {
    match outcome {
        tmg_tsys::CheckOutcome::Feasible { witness, .. } => {
            // Validate on the target: free locals chosen by the checker are
            // not controllable, so the replay is authoritative.
            if let Ok(run) = machine.run(witness, &[]) {
                if goal_matches(goal, &run) {
                    return CandidateVerdict::Covers(CoverageStatus::Covered {
                        vector: witness.clone(),
                        by: GeneratorKind::ModelChecker,
                    });
                }
            }
            CandidateVerdict::Unknown
        }
        tmg_tsys::CheckOutcome::Infeasible => CandidateVerdict::Infeasible,
        tmg_tsys::CheckOutcome::Unknown => CandidateVerdict::Unknown,
    }
}

/// The model-checking queries that can settle `goal`, in preference order.
/// Decision vectors are moved (not cloned) into the queries wherever the
/// candidate paths are freshly enumerated.
fn goal_candidate_queries(lowered: &LoweredFunction, goal: &CoverageGoal) -> Vec<PathQuery> {
    match &goal.kind {
        GoalKind::RegionPath(path) => vec![PathQuery::new(path.decisions.clone())],
        GoalKind::BlockExecution(block) => paths_to_block(lowered, *block, 64)
            .into_iter()
            .map(|p| PathQuery::new(p.decisions))
            .collect(),
    }
}

/// Whether a target run exercises the goal.
fn goal_matches(goal: &CoverageGoal, run: &tmg_target::RunResult) -> bool {
    match &goal.kind {
        GoalKind::RegionPath(path) => path.matches_trace(&run.branch_signature),
        GoalKind::BlockExecution(block) => run.executed_blocks.contains(block),
    }
}

/// Allocation-free goal matching for the heuristic phase's inner loop.
///
/// [`PathSpec::matches_trace`] rebuilds the relevant-statement set and the
/// restricted trace on every call; the fitness evaluation calls it for every
/// `(goal, individual)` pair of every generation, which made the matching —
/// not the target runs — the dominant cost on small functions.  The matcher
/// computes each goal's relevant set once as a dense bitmap over statement
/// ids (one array index per trace element instead of a hash probe) and
/// reuses one scratch buffer for the restricted trace, returning
/// bit-identical verdicts.
struct GoalMatcher<'g> {
    goals: &'g [CoverageGoal],
    /// Per region-path goal: dense membership bitmap of the statements its
    /// decisions mention (indexed by raw [`StmtId`]; out-of-range means
    /// irrelevant).
    relevant: Vec<Box<[bool]>>,
    /// Reused buffer for the relevant-restricted branch trace.
    scratch: Vec<(StmtId, BranchChoice)>,
}

impl<'g> GoalMatcher<'g> {
    fn new(goals: &'g [CoverageGoal]) -> GoalMatcher<'g> {
        let relevant = goals
            .iter()
            .map(|goal| match &goal.kind {
                GoalKind::RegionPath(path) => {
                    let max = path
                        .decisions
                        .iter()
                        .map(|(s, _)| s.0 as usize)
                        .max()
                        .unwrap_or(0);
                    let mut bits = vec![false; max + 1].into_boxed_slice();
                    for (s, _) in &path.decisions {
                        bits[s.0 as usize] = true;
                    }
                    bits
                }
                GoalKind::BlockExecution(_) => Box::default(),
            })
            .collect();
        GoalMatcher {
            goals,
            relevant,
            scratch: Vec::new(),
        }
    }

    /// Whether `run` exercises goal `i` (same verdict as [`goal_matches`]).
    fn matches(&mut self, i: usize, run: &tmg_target::RunResult) -> bool {
        match &self.goals[i].kind {
            GoalKind::BlockExecution(block) => run.executed_blocks.contains(block),
            GoalKind::RegionPath(path) => {
                if path.decisions.is_empty() {
                    return true;
                }
                let relevant = &self.relevant[i];
                self.scratch.clear();
                self.scratch.extend(
                    run.branch_signature
                        .iter()
                        .copied()
                        .filter(|(s, _)| relevant.get(s.0 as usize).copied().unwrap_or(false)),
                );
                if self.scratch.len() < path.decisions.len() {
                    return false;
                }
                self.scratch
                    .windows(path.decisions.len())
                    .any(|w| w == path.decisions.as_slice())
            }
        }
    }
}

/// Marks every goal exercised by `run` as covered; returns how many were new.
fn record_coverage(
    vector: &InputVector,
    run: &tmg_target::RunResult,
    goals: &[CoverageGoal],
    status: &mut [Option<CoverageStatus>],
    by: GeneratorKind,
) -> usize {
    let mut newly = 0;
    for (i, goal) in goals.iter().enumerate() {
        if status[i].is_some() {
            continue;
        }
        if goal_matches(goal, run) {
            status[i] = Some(CoverageStatus::Covered {
                vector: vector.clone(),
                by,
            });
            newly += 1;
        }
    }
    newly
}

/// Enumerates up to `cap` acyclic decision sequences from the function entry
/// to `target`, used to phrase block-execution goals as model-checking
/// queries.
fn paths_to_block(lowered: &LoweredFunction, target: BlockId, cap: usize) -> Vec<PathSpec> {
    let mut out = Vec::new();
    let mut current: Vec<(StmtId, BranchChoice)> = Vec::new();
    let mut visited: FxHashSet<BlockId> =
        FxHashSet::with_capacity_and_hasher(lowered.cfg.block_count(), Default::default());
    walk_to_block(
        lowered,
        lowered.cfg.entry(),
        target,
        &mut current,
        &mut visited,
        &mut out,
        cap,
    );
    out
}

fn walk_to_block(
    lowered: &LoweredFunction,
    block: BlockId,
    target: BlockId,
    current: &mut Vec<(StmtId, BranchChoice)>,
    visited: &mut FxHashSet<BlockId>,
    out: &mut Vec<PathSpec>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if block == target {
        out.push(PathSpec {
            decisions: current.clone(),
        });
        return;
    }
    if !visited.insert(block) {
        return;
    }
    match &lowered.cfg.block(block).terminator {
        Terminator::Jump(d) => walk_to_block(lowered, *d, target, current, visited, out, cap),
        Terminator::Return { exit } => {
            walk_to_block(lowered, *exit, target, current, visited, out, cap)
        }
        Terminator::Halt => {}
        Terminator::Branch {
            stmt,
            then_dest,
            else_dest,
            ..
        } => {
            let is_loop = lowered.cfg.loop_bound(*stmt).is_some();
            let then_choice = if is_loop {
                BranchChoice::LoopIterate
            } else {
                BranchChoice::Then
            };
            let else_choice = if is_loop {
                BranchChoice::LoopExit
            } else {
                BranchChoice::Else
            };
            current.push((*stmt, then_choice));
            walk_to_block(lowered, *then_dest, target, current, visited, out, cap);
            current.pop();
            current.push((*stmt, else_choice));
            walk_to_block(lowered, *else_dest, target, current, visited, out, cap);
            current.pop();
        }
        Terminator::Switch {
            stmt,
            arms,
            default_dest,
            ..
        } => {
            for (value, dest) in arms {
                current.push((*stmt, BranchChoice::Case(*value)));
                walk_to_block(lowered, *dest, target, current, visited, out, cap);
                current.pop();
            }
            current.push((*stmt, BranchChoice::Default));
            walk_to_block(lowered, *default_dest, target, current, visited, out, cap);
            current.pop();
        }
    }
    visited.remove(&block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionPlan;
    use tmg_cfg::build_cfg;
    use tmg_minic::parse_function;

    fn suite_for(src: &str, bound: u128) -> (Function, LoweredFunction, TestSuite) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let plan = PartitionPlan::compute(&lowered, bound);
        let suite = HybridGenerator::new().generate(&f, &lowered, &plan);
        (f, lowered, suite)
    }

    #[test]
    fn covers_all_feasible_paths_of_a_simple_function() {
        let src = r#"
            void f(char a __range(0, 3), char b __range(0, 3)) {
                if (a > 1) { p1(); } else { p2(); }
                if (b == 0) { p3(); }
            }
        "#;
        let (_, _, suite) = suite_for(src, 10);
        assert_eq!(suite.goal_count(), 4);
        assert_eq!(suite.covered_count(), 4);
        assert_eq!(suite.infeasible_count(), 0);
        assert!(!suite.vectors().is_empty());
    }

    #[test]
    fn detects_infeasible_paths_via_the_model_checker() {
        // a > 2 and a < 1 cannot hold together.
        let src = r#"
            void f(char a __range(0, 4)) {
                if (a > 2) { p1(); }
                if (a < 1) { p2(); }
            }
        "#;
        let (_, _, suite) = suite_for(src, 10);
        assert_eq!(suite.goal_count(), 4);
        assert_eq!(suite.infeasible_count(), 1);
        assert_eq!(suite.covered_count(), 3);
        assert_eq!(suite.unknown_count(), 0);
    }

    #[test]
    fn block_goals_are_covered_at_bound_one() {
        let src = "void f(char a __range(0, 1)) { p1(); if (a) { p2(); } p3(); }";
        let (_, lowered, suite) = suite_for(src, 1);
        // One goal per measurable unit.
        assert_eq!(suite.goal_count(), lowered.cfg.measurable_units().len());
        assert_eq!(suite.covered_count(), suite.goal_count());
    }

    #[test]
    fn heuristic_covers_most_goals_and_checker_the_rest() {
        // The equality guard is a needle in the haystack for random search but
        // trivial for the model checker.
        let src = r#"
            void f(int a __range(0, 10000), char b __range(0, 3)) {
                if (b == 1) { common1(); }
                if (b > 1) { common2(); } else { common3(); }
                if (a == 7777) { rare(); }
            }
        "#;
        let (_, _, suite) = suite_for(src, 1000);
        assert_eq!(
            suite.covered_count() + suite.infeasible_count(),
            suite.goal_count()
        );
        assert!(suite.heuristic_covered() > 0);
        assert!(
            suite.checker_covered() > 0,
            "the a == 7777 paths need the model checker"
        );
        assert!(
            suite.heuristic_ratio() >= 0.5,
            "heuristic should carry at least half of the load: {}",
            suite.heuristic_ratio()
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let src = "void f(char a __range(0, 7)) { if (a > 3) { p1(); } else { p2(); } }";
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let plan = PartitionPlan::compute(&lowered, 10);
        let s1 = HybridGenerator::new().generate(&f, &lowered, &plan);
        let s2 = HybridGenerator::new().generate(&f, &lowered, &plan);
        assert_eq!(s1, s2);
    }

    #[test]
    fn parallel_and_sequential_generation_agree_exactly() {
        // Include goals the heuristic cannot reach (forcing the checker
        // phase) and an infeasible pair, so the parallel merge is exercised
        // on every outcome kind.
        let src = r#"
            void f(int a __range(0, 9000), char b __range(0, 3)) {
                if (a == 4321) { rare(); }
                if (b > 2) { p1(); }
                if (b < 1) { p2(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let plan = PartitionPlan::compute(&lowered, 1000);
        let parallel = HybridGenerator::new().generate(&f, &lowered, &plan);
        let sequential = HybridGenerator::new()
            .sequential()
            .generate(&f, &lowered, &plan);
        assert_eq!(parallel, sequential);
        assert!(
            parallel.checker_covered() > 0,
            "checker phase must have run"
        );
    }

    #[test]
    fn batched_and_per_goal_checking_agree_exactly() {
        // Needles for the checker, an infeasible pair, and block goals at a
        // fine partition: every candidate-query shape goes through both the
        // batched and the per-goal phase-2 implementation.
        let sources = [
            (
                r#"
                void f(int a __range(0, 9000), char b __range(0, 3)) {
                    if (a == 4321) { rare(); }
                    if (b > 2) { p1(); }
                    if (b < 1) { p2(); }
                }
            "#,
                1000u128,
            ),
            (
                r#"
                void g(char a __range(0, 4)) {
                    if (a > 2) { x(); }
                    if (a < 1) { y(); }
                }
            "#,
                10,
            ),
            (
                "void h(char a __range(0, 1)) { p1(); if (a) { p2(); } p3(); }",
                1,
            ),
        ];
        for (src, bound) in sources {
            let f = parse_function(src).expect("parse");
            let lowered = build_cfg(&f);
            let plan = PartitionPlan::compute(&lowered, bound);
            let batched = HybridGenerator::new().generate(&f, &lowered, &plan);
            let per_goal = HybridGenerator::new()
                .unbatched()
                .sequential()
                .generate(&f, &lowered, &plan);
            assert_eq!(batched, per_goal, "suites diverge on {src}");
        }
    }

    #[test]
    fn batching_is_the_default() {
        assert!(HybridGenerator::new().batch_queries);
        assert!(!HybridGenerator::new().unbatched().batch_queries);
    }

    #[test]
    fn shared_model_generation_is_bit_identical() {
        // The pipeline hands the generator a model prepared once with the
        // union of every branch statement; suites must match the plain path
        // exactly, including checker-resolved and infeasible goals.
        let src = r#"
            void f(int a __range(0, 9000), char b __range(0, 3)) {
                if (a == 4321) { rare(); }
                if (b > 2) { p1(); }
                if (b < 1) { p2(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let union: std::collections::HashSet<tmg_minic::StmtId> = lowered
            .cfg
            .blocks()
            .iter()
            .filter_map(|blk| match &blk.terminator {
                Terminator::Branch { stmt, .. } | Terminator::Switch { stmt, .. } => Some(*stmt),
                _ => None,
            })
            .collect();
        let generator = HybridGenerator::new();
        let shared = generator
            .checker
            .prepare_shared(&f, union)
            .expect("shared model");
        for bound in [1u128, 1000] {
            let plan = PartitionPlan::compute(&lowered, bound);
            let with_model = generator.generate_with_model(&f, &lowered, &plan, Some(&shared));
            let plain = generator.generate(&f, &lowered, &plan);
            assert_eq!(with_model, plain, "bound {bound}");
        }
    }

    #[test]
    fn paths_to_block_reach_nested_blocks() {
        let src = "void f(char a __range(0, 1)) { if (a) { inner(); } outer(); }";
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        // Find the block containing `inner()`.
        let inner_block = lowered
            .cfg
            .blocks()
            .iter()
            .find(|b| {
                b.stmts.iter().any(
                    |s| matches!(s, tmg_minic::ast::Stmt::Call { callee, .. } if callee == "inner"),
                )
            })
            .expect("inner block")
            .id;
        let paths = paths_to_block(&lowered, inner_block, 16);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].decisions.len(), 1);
    }
}
