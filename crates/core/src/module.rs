//! Interprocedural WCET composition with differential dirty-cone
//! re-analysis.
//!
//! The single-function [`WcetAnalysis`](crate::WcetAnalysis) prices every
//! `call` statement as an external leaf: the uniform transfer overhead,
//! nothing else.  That is exact for calls that really do leave the analysed
//! module, and a silent under-approximation for calls to functions *defined
//! in the same program*.  [`ModuleAnalysis`] closes the gap bottom-up:
//!
//! 1. the module's [`CallGraph`](tmg_cfg::CallGraph) (cached as a
//!    [`CallGraphArtifact`] in the memory tier) yields a reverse-topological
//!    summary order — recursion is a typed [`AnalysisError`], the paper's
//!    segment calculus has no fixpoint story;
//! 2. each function is analysed under a cost model carrying
//!    [`CostModel::call_bounds`](tmg_target::CostModel) — the already-computed
//!    WCET bounds of its defined callees — so every defined call site is
//!    priced `call_overhead + bound(callee)` while external leaves keep the
//!    plain overhead;
//! 3. the resulting per-function bound is published as a *summary* under a
//!    key that folds the function's own bound key with its callees' summary
//!    keys.
//!
//! The summary keys are what make re-analysis *differential*: editing one
//! function changes its fingerprint, hence its summary key, hence (by the
//! fold) the summary key of every transitive caller — exactly the
//! [`dirty_cone`](tmg_cfg::CallGraph::dirty_cone) — and of nothing else.
//! Functions outside the cone are served straight from the store's bound
//! tier with zero recomputation (counter-asserted by the tests and the CI
//! smoke); functions inside the cone re-enter the staged pipeline, where the
//! unchanged early stages (lower, partition, prepare-model, testgen) still
//! hit — only the cost-model-dependent measure/bound stages re-run, and even
//! those are served warm when the edit did not change the callee's bound.
//!
//! Soundness of the composition is by induction over the acyclic call
//! graph: the priced `call_overhead + bound(callee)` dominates the actual
//! `call_overhead + actual(callee)` realised by the
//! [`ModuleMachine`](tmg_target::ModuleMachine) oracle, which the
//! module-level soundness tests sweep exhaustively.

use crate::analysis::{AnalysisError, AnalysisReport, WcetAnalysis};
use crate::pipeline::{bound_key, ArtifactStore, Stage, TieredStore};
use std::fmt;
use std::sync::Arc;
use tmg_cfg::{combine_hashes, function_fingerprint};
use tmg_minic::ast::Program;
use tmg_target::CostModel;
use tmg_tsys::CancelToken;

/// Process-wide differential-composition counters, mirroring
/// [`tmg_tsys::metrics`]: cheap relaxed atomics, snapshotted into the
/// service `stats` response and `reproduce -- sweep --stats` so dirty-cone
/// behaviour stays observable in production.
pub mod metrics {
    use std::fmt::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};

    static MODULE_ANALYSES: AtomicU64 = AtomicU64::new(0);
    static MODULES_SERVED_WARM: AtomicU64 = AtomicU64::new(0);
    static SUMMARIES_REUSED: AtomicU64 = AtomicU64::new(0);
    static SUMMARIES_COMPUTED: AtomicU64 = AtomicU64::new(0);
    static LAST_DIRTY_CONE: AtomicU64 = AtomicU64::new(0);

    /// One snapshot of the module-composition counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ModuleMetrics {
        /// Completed `analyse_module` runs.
        pub module_analyses: u64,
        /// Runs in which *every* function summary was served from the store
        /// (no function re-entered the pipeline at all).
        pub modules_served_warm: u64,
        /// Function summaries served from the store across all runs.
        pub summaries_reused: u64,
        /// Function summaries that had to be (re)computed across all runs.
        pub summaries_computed: u64,
        /// Summaries recomputed by the most recent run — for a differential
        /// re-analysis this is the realised dirty-cone size.
        pub last_dirty_cone: u64,
    }

    impl ModuleMetrics {
        /// Renders the snapshot as one JSON object (hand-written; the
        /// vendored serde is derive-markers only): schema
        /// `tmg-module-stats/v1`.
        pub fn to_json(&self) -> String {
            let mut out = String::new();
            let _ = write!(
                out,
                "{{ \"schema\": \"tmg-module-stats/v1\", \"module_analyses\": {}, \
                 \"modules_served_warm\": {}, \"summaries_reused\": {}, \
                 \"summaries_computed\": {}, \"last_dirty_cone\": {} }}",
                self.module_analyses,
                self.modules_served_warm,
                self.summaries_reused,
                self.summaries_computed,
                self.last_dirty_cone,
            );
            out
        }
    }

    /// Registers every counter, by its JSON name and in declaration order,
    /// into the unified metrics registry (group `"module"`, schema
    /// `tmg-module-stats/v1` as the struct renderer emits).  Idempotent;
    /// [`snapshot`] calls it, so any stats consumer sees the group
    /// registered.
    pub fn register() {
        tmg_obs::registry().register_counters(
            "module",
            Some("tmg-module-stats/v1"),
            vec![
                ("module_analyses", &MODULE_ANALYSES),
                ("modules_served_warm", &MODULES_SERVED_WARM),
                ("summaries_reused", &SUMMARIES_REUSED),
                ("summaries_computed", &SUMMARIES_COMPUTED),
                ("last_dirty_cone", &LAST_DIRTY_CONE),
            ],
        );
    }

    /// Reads the current counter values.
    pub fn snapshot() -> ModuleMetrics {
        register();
        ModuleMetrics {
            module_analyses: MODULE_ANALYSES.load(Ordering::Relaxed),
            modules_served_warm: MODULES_SERVED_WARM.load(Ordering::Relaxed),
            summaries_reused: SUMMARIES_REUSED.load(Ordering::Relaxed),
            summaries_computed: SUMMARIES_COMPUTED.load(Ordering::Relaxed),
            last_dirty_cone: LAST_DIRTY_CONE.load(Ordering::Relaxed),
        }
    }

    pub(super) fn record_module(reused: u64, computed: u64) {
        MODULE_ANALYSES.fetch_add(1, Ordering::Relaxed);
        if computed == 0 {
            MODULES_SERVED_WARM.fetch_add(1, Ordering::Relaxed);
        }
        SUMMARIES_REUSED.fetch_add(reused, Ordering::Relaxed);
        SUMMARIES_COMPUTED.fetch_add(computed, Ordering::Relaxed);
        LAST_DIRTY_CONE.store(computed, Ordering::Relaxed);
    }
}

/// The interprocedural summary of one function within a module analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSummary {
    /// Function name.
    pub function: String,
    /// The summary key: the function's bound key under its priced cost
    /// model, folded with its callees' summary keys.  Any transitive edit
    /// changes it; nothing else does.
    pub summary_key: u64,
    /// Composed WCET bound (defined callees priced at their bounds).
    pub wcet_bound: u64,
    /// Defined callees, in program order.
    pub callees: Vec<String>,
    /// Whether the summary was served from the store without re-entering
    /// the pipeline.
    pub from_cache: bool,
}

/// A call-graph root (a function no defined function calls) and its
/// composed bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootBound {
    /// Function name.
    pub function: String,
    /// Composed WCET bound.
    pub wcet_bound: u64,
}

/// The result of one module-level analysis: per-function reports and
/// summaries (program order) plus the call-graph roots.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleReport {
    /// Content key of the whole analysis (fold of every summary key):
    /// identical module + configuration ⇒ identical key ⇒ identical report.
    pub module_key: u64,
    /// Path bound `b` the partitioning ran under.
    pub path_bound: u128,
    /// Per-function analysis reports, in program order.
    pub reports: Vec<AnalysisReport>,
    /// Per-function summaries, in program order.
    pub summaries: Vec<FunctionSummary>,
    /// Call-graph roots with their composed bounds.
    pub roots: Vec<RootBound>,
    /// Summaries served from the store this run.
    pub summaries_reused: usize,
    /// Summaries (re)computed this run — the realised dirty cone of a
    /// differential re-analysis.
    pub summaries_computed: usize,
}

impl ModuleReport {
    /// The composed bound of `function`, if defined.
    pub fn bound_of(&self, function: &str) -> Option<u64> {
        self.summaries
            .iter()
            .find(|s| s.function == function)
            .map(|s| s.wcet_bound)
    }

    /// The worst root: the entry point with the largest composed bound
    /// (ties broken by name for determinism).
    pub fn worst_root(&self) -> Option<&RootBound> {
        self.roots
            .iter()
            .max_by_key(|r| (r.wcet_bound, std::cmp::Reverse(&r.function)))
    }

    /// Names of the functions recomputed this run, in program order.
    pub fn recomputed(&self) -> Vec<&str> {
        self.summaries
            .iter()
            .filter(|s| !s.from_cache)
            .map(|s| s.function.as_str())
            .collect()
    }
}

impl fmt::Display for ModuleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "module WCET analysis: {} function(s), b = {}, {} reused / {} computed",
            self.summaries.len(),
            self.path_bound,
            self.summaries_reused,
            self.summaries_computed
        )?;
        for root in &self.roots {
            writeln!(
                f,
                "  root `{}`: composed bound {} cycles",
                root.function, root.wcet_bound
            )?;
        }
        Ok(())
    }
}

/// Module-level WCET composition over [`WcetAnalysis`].  See the module
/// docs for the summary and invalidation story.
#[derive(Debug, Clone)]
pub struct ModuleAnalysis {
    analysis: WcetAnalysis,
}

impl ModuleAnalysis {
    /// A module analysis with the given path bound and default settings.
    pub fn new(path_bound: u128) -> ModuleAnalysis {
        ModuleAnalysis {
            analysis: WcetAnalysis::new(path_bound),
        }
    }

    /// Wraps an already-configured per-function analysis (its store, cost
    /// model, generator and cancellation settings all apply).
    pub fn from_analysis(analysis: WcetAnalysis) -> ModuleAnalysis {
        ModuleAnalysis { analysis }
    }

    /// Replaces the *base* target cost model (per-function priced models are
    /// derived from it by adding callee bounds).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> ModuleAnalysis {
        self.analysis = self.analysis.with_cost_model(cost_model);
        self
    }

    /// Attaches a shared artifact store tier; this is what makes repeated
    /// module analyses differential (without one, each call runs on a
    /// private transient store shared only within that call).
    pub fn with_store(mut self, store: Arc<dyn TieredStore>) -> ModuleAnalysis {
        self.analysis = self.analysis.with_store(store);
        self
    }

    /// Installs a cooperative cancellation token (see
    /// [`WcetAnalysis::with_cancel`]).
    pub fn with_cancel(mut self, cancel: CancelToken) -> ModuleAnalysis {
        self.analysis = self.analysis.with_cancel(cancel);
        self
    }

    /// Analyses every function of `program` in bottom-up call order,
    /// pricing defined call sites at their callees' composed bounds.
    ///
    /// # Errors
    ///
    /// [`AnalysisError`] when the call graph is recursive (no bottom-up
    /// summary order exists; attributed to stage `lower` of the first
    /// function of the cycle), when a measurement run faults, or when an
    /// installed deadline fires.
    pub fn analyse_module(&self, program: &Program) -> Result<ModuleReport, AnalysisError> {
        let store: Arc<dyn TieredStore> = self
            .analysis
            .store_tier()
            .unwrap_or_else(|| Arc::new(ArtifactStore::new()));
        let base = self.analysis.clone().with_store(Arc::clone(&store));
        let artifact = store.memory().callgraph(program);
        let order = match &artifact.order {
            Ok(order) => order.clone(),
            Err(cycle) => {
                let function = cycle.cycle.first().cloned().unwrap_or_default();
                return Err(AnalysisError::new(
                    Stage::Lower,
                    function,
                    cycle.to_string(),
                ));
            }
        };
        let graph = &artifact.graph;
        let n = graph.len();
        let mut summary_keys = vec![0u64; n];
        let mut bounds = vec![0u64; n];
        let mut reports: Vec<Option<AnalysisReport>> = vec![None; n];
        let mut cached = vec![false; n];
        for &i in &order {
            let function = &program.functions[i];
            let call_bounds: Vec<(String, u64)> = graph
                .callees(i)
                .iter()
                .map(|&j| (graph.name(j).to_owned(), bounds[j]))
                .collect();
            let mut per_fn = base.clone();
            per_fn.cost_model = base.cost_model.clone().with_call_bounds(call_bounds);
            // The summary key folds the function's own bound key (which the
            // priced cost model — and through it every callee *bound* —
            // already feeds) with the callees' summary keys, so a callee
            // edit that happens to leave its bound unchanged still re-keys
            // the caller: the probe below misses, but the pipeline then
            // hits the unchanged inner bound key and the re-publication is
            // near-free.
            let mut parts = vec![bound_key(&per_fn, function_fingerprint(function), None)];
            parts.extend(graph.callees(i).iter().map(|&j| summary_keys[j]));
            let key = combine_hashes(&parts);
            summary_keys[i] = key;
            let report = match store.bound(key) {
                Some(hit) => {
                    cached[i] = true;
                    hit.report.clone()
                }
                None => {
                    let report = per_fn.analyse(function)?;
                    store.put_bound(key, report.clone());
                    report
                }
            };
            bounds[i] = report.wcet_bound;
            reports[i] = Some(report);
        }
        let summaries: Vec<FunctionSummary> = (0..n)
            .map(|i| FunctionSummary {
                function: graph.name(i).to_owned(),
                summary_key: summary_keys[i],
                wcet_bound: bounds[i],
                callees: graph
                    .callees(i)
                    .iter()
                    .map(|&j| graph.name(j).to_owned())
                    .collect(),
                from_cache: cached[i],
            })
            .collect();
        let roots: Vec<RootBound> = graph
            .roots()
            .into_iter()
            .map(|i| RootBound {
                function: graph.name(i).to_owned(),
                wcet_bound: bounds[i],
            })
            .collect();
        let reused = cached.iter().filter(|&&c| c).count();
        metrics::record_module(reused as u64, (n - reused) as u64);
        Ok(ModuleReport {
            module_key: combine_hashes(&summary_keys),
            path_bound: self.analysis.path_bound,
            reports: reports
                .into_iter()
                .map(|r| r.expect("bottom-up order visits every function"))
                .collect(),
            summaries,
            roots,
            summaries_reused: reused,
            summaries_computed: n - reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_program;

    const MODULE: &str = "\
        void leaf(char v __range(0, 3)) { if (v > 1) { work(); } } \
        void mid(char a __range(0, 3)) { leaf(a); external(); } \
        void root(char a __range(0, 3)) { mid(a); if (a == 0) { extra(); } } \
        void lone(char z __range(0, 1)) { if (z) { other(); } }";

    fn module() -> Program {
        parse_program(MODULE).expect("parse")
    }

    #[test]
    fn composition_prices_defined_callees_above_leaf_analysis() {
        let program = module();
        let report = ModuleAnalysis::new(4)
            .analyse_module(&program)
            .expect("module");
        let leaf = report.bound_of("leaf").expect("leaf");
        let mid = report.bound_of("mid").expect("mid");
        let root = report.bound_of("root").expect("root");
        assert!(leaf > 0);
        assert!(mid > leaf, "mid embeds leaf's bound: {mid} vs {leaf}");
        assert!(root > mid, "root embeds mid's bound: {root} vs {mid}");
        // The standalone analysis treats `mid`'s call to `leaf` as an
        // external leaf and must come in strictly below the composed bound.
        let standalone = WcetAnalysis::new(4)
            .analyse(&program.functions[1])
            .expect("standalone");
        assert!(mid > standalone.wcet_bound);
        // Roots: `root` and `lone` (nobody calls them).
        let roots: Vec<&str> = report.roots.iter().map(|r| r.function.as_str()).collect();
        assert_eq!(roots, ["root", "lone"]);
        assert_eq!(report.worst_root().expect("roots").function, "root");
    }

    #[test]
    fn composed_bound_equals_manually_priced_standalone_analysis() {
        let program = module();
        let report = ModuleAnalysis::new(4)
            .analyse_module(&program)
            .expect("module");
        let leaf_bound = report.bound_of("leaf").expect("leaf");
        let priced = WcetAnalysis::new(4)
            .with_cost_model(
                CostModel::hcs12().with_call_bounds(vec![("leaf".to_owned(), leaf_bound)]),
            )
            .analyse(&program.functions[1])
            .expect("priced standalone");
        assert_eq!(report.bound_of("mid"), Some(priced.wcet_bound));
    }

    #[test]
    fn a_warm_second_run_reuses_every_summary() {
        let program = module();
        let store = Arc::new(ArtifactStore::new());
        let analysis = ModuleAnalysis::new(4).with_store(store.clone());
        let cold = analysis.analyse_module(&program).expect("cold");
        assert_eq!(cold.summaries_computed, 4);
        let warm = analysis.analyse_module(&program).expect("warm");
        assert_eq!(warm.summaries_reused, 4);
        assert_eq!(warm.summaries_computed, 0);
        assert!(warm.summaries.iter().all(|s| s.from_cache));
        assert_eq!(warm.reports, cold.reports);
        assert_eq!(warm.module_key, cold.module_key);
        // The call graph itself was reused, not rebuilt.
        let cg = store.memory().callgraph_stats();
        assert_eq!((cg.hits, cg.misses), (1, 1));
    }

    #[test]
    fn editing_one_function_recomputes_exactly_the_dirty_cone() {
        let store = Arc::new(ArtifactStore::new());
        let analysis = ModuleAnalysis::new(4).with_store(store.clone());
        let before = analysis.analyse_module(&module()).expect("cold");
        // Edit `leaf` (make the guarded branch heavier): dirty cone is
        // {leaf, mid, root}; `lone` stays cached.
        let edited = parse_program(&MODULE.replace("{ work(); }", "{ work(); more(); }"))
            .expect("parse edited");
        let after = analysis.analyse_module(&edited).expect("differential");
        assert_eq!(after.recomputed(), ["leaf", "mid", "root"]);
        assert_eq!(after.summaries_reused, 1);
        assert_eq!(
            after.bound_of("lone"),
            before.bound_of("lone"),
            "outside the cone nothing changes"
        );
        assert!(after.bound_of("leaf") > before.bound_of("leaf"));
        assert!(after.bound_of("root") > before.bound_of("root"));
        // Differential result ≡ from-scratch result, bit-identical.
        let scratch = ModuleAnalysis::new(4)
            .analyse_module(&edited)
            .expect("scratch");
        assert_eq!(after.reports, scratch.reports);
        assert_eq!(after.module_key, scratch.module_key);
    }

    #[test]
    fn recursion_is_a_typed_analysis_error() {
        let program =
            parse_program("void even() { odd(); } void odd() { even(); }").expect("parse");
        let err = ModuleAnalysis::new(4)
            .analyse_module(&program)
            .expect_err("recursive module");
        assert_eq!(err.stage, Stage::Lower);
        assert_eq!(err.function, "even");
        assert!(err.message.contains("recursive call cycle"));
        assert!(!err.is_cancelled());
    }

    #[test]
    fn empty_modules_compose_to_an_empty_report() {
        let program = parse_program("").expect("parse");
        let report = ModuleAnalysis::new(4)
            .analyse_module(&program)
            .expect("empty");
        assert!(report.reports.is_empty());
        assert!(report.roots.is_empty());
        assert!(report.worst_root().is_none());
    }

    #[test]
    fn module_metrics_render_as_json() {
        let snapshot = metrics::snapshot();
        let json = snapshot.to_json();
        assert!(json.contains("\"schema\": \"tmg-module-stats/v1\""));
        assert!(json.contains("\"summaries_reused\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
