//! The staged, content-addressed analysis pipeline.
//!
//! The paper's workflow is inherently staged — lower the CFG, partition it
//! under a path bound `b`, generate coverage tests by model checking,
//! measure on the target, combine into a WCET bound — and most workloads
//! re-enter it with inputs that only partially change: a tradeoff sweep
//! varies `b` but not the function, a before/after benchmark re-analyses the
//! same function twice, a multi-function module shares the cost model, a
//! repeated `reproduce` run changes nothing at all.  This module reifies
//! each stage's output as an explicit artifact keyed by a *stable content
//! hash of its inputs* and keeps them in an [`ArtifactStore`], so a stage
//! re-runs exactly when one of its inputs changed:
//!
//! ```text
//! function source ──► LoweredArtifact       (key: source fingerprint)
//!                     ├─► PartitionArtifact (key: + path bound)
//!                     ├─► PreparedModelArtifact (key: + checker config)
//!                     ├─► SuiteArtifact     (key: partition + generator config)
//!                     ├─► CampaignArtifact  (key: suite + cost model)
//!                     └─► BoundArtifact     (key: campaign + input space)
//! ```
//!
//! Keys are FNV-1a digests ([`tmg_cfg::hash`]) of the canonical
//! pretty-printed function source combined with the `Debug` rendering of the
//! relevant configuration (cost model, checker and heuristic settings) and
//! the path bound — every field that can change a stage's output feeds its
//! key, so a hit is always semantically safe to reuse.  The store counts
//! hits and misses per [`Stage`]; tests assert that a second analysis of an
//! unchanged function performs no re-partitioning and no re-encoding.
//!
//! [`WcetAnalysis`](crate::WcetAnalysis) runs entirely on top of this
//! module: without an attached store every call uses a private transient
//! store (identical behaviour to the historical free-running pipeline); with
//! [`WcetAnalysis::with_store`](crate::WcetAnalysis::with_store) artifacts
//! are shared across calls, functions, bounds and threads.

use crate::analysis::{AnalysisError, AnalysisReport, WcetAnalysis};
use crate::measurement::{exhaustive_end_to_end, MeasurementCampaign, MeasurementError};
use crate::partition::PartitionPlan;
use crate::schema::compute_wcet;
use crate::testgen::{HybridGenerator, TestSuite};
use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tmg_cfg::{
    build_cfg, combine_hashes, function_fingerprint, stable_hash_str, LoweredFunction, PathCounts,
    Terminator,
};
use tmg_minic::ast::Function;
use tmg_minic::value::InputVector;
use tmg_minic::StmtId;
use tmg_target::CostModel;
use tmg_tsys::{ModelChecker, SharedCheckModel};

/// The pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// CFG lowering + region path counts.
    Lower,
    /// CFG partitioning under the path bound.
    Partition,
    /// Model optimisation + encoding + preparation for the checker.
    PrepareModel,
    /// Hybrid test-data generation.
    Testgen,
    /// Instrumented measurement campaign.
    Measure,
    /// Timing-schema WCET bound (plus optional exhaustive comparison).
    Bound,
}

/// Every stage, in execution order.
pub const STAGES: [Stage; 6] = [
    Stage::Lower,
    Stage::Partition,
    Stage::PrepareModel,
    Stage::Testgen,
    Stage::Measure,
    Stage::Bound,
];

impl Stage {
    fn index(self) -> usize {
        match self {
            Stage::Lower => 0,
            Stage::Partition => 1,
            Stage::PrepareModel => 2,
            Stage::Testgen => 3,
            Stage::Measure => 4,
            Stage::Bound => 5,
        }
    }

    /// Stable lowercase name (used in error messages and reports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lower => "lower",
            Stage::Partition => "partition",
            Stage::PrepareModel => "prepare-model",
            Stage::Testgen => "testgen",
            Stage::Measure => "measure",
            Stage::Bound => "bound",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hit/miss counters of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Artifact served from the store.
    pub hits: u64,
    /// Artifact computed (and inserted).
    pub misses: u64,
}

/// The lowered function plus everything derived from the source alone.
#[derive(Debug)]
pub struct LoweredArtifact {
    /// Content fingerprint of the function source.
    pub function_key: u64,
    /// CFG + region tree.
    pub lowered: LoweredFunction,
    /// Reusable per-region path counts (feeds partitioning and the sweep).
    pub counts: PathCounts,
    /// Every branching statement of the function — the preserve-set union
    /// under which the shared checker model is prepared.
    pub decision_stmts: HashSet<StmtId>,
}

/// A partition plan at one `(function, path bound)`.
#[derive(Debug)]
pub struct PartitionArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The plan.
    pub plan: PartitionPlan,
}

/// The checker's optimised + encoded + prepared model for one
/// `(function, checker configuration)`.  `None` records that no single
/// shared model serves every query batch (the checker then re-verifies per
/// batch), so even the negative outcome is computed once.
#[derive(Debug)]
pub struct PreparedModelArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The shared model, if one is provably equivalent to per-query models.
    pub shared: Option<Arc<SharedCheckModel>>,
}

/// A generated test suite at one `(partition, generator configuration)`.
#[derive(Debug)]
pub struct SuiteArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The suite.
    pub suite: TestSuite,
}

/// A measurement campaign at one `(suite, cost model)`.
#[derive(Debug)]
pub struct CampaignArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The campaign.
    pub campaign: MeasurementCampaign,
}

/// A finished analysis report at one `(campaign, input space)`.
#[derive(Debug)]
pub struct BoundArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The report.
    pub report: AnalysisReport,
}

/// Content-addressed store for every pipeline stage.
///
/// Thread-safe: `WcetAnalysis::analyse_all` fans functions out across cores
/// with all workers sharing one store.  Lookups and insertions take a
/// per-stage mutex; stage computations run outside any lock (two racing
/// workers may both compute the same artifact — the results are identical by
/// construction, and one insertion wins).
#[derive(Default)]
pub struct ArtifactStore {
    lowered: Mutex<FxHashMap<u64, Arc<LoweredArtifact>>>,
    partitions: Mutex<FxHashMap<u64, Arc<PartitionArtifact>>>,
    models: Mutex<FxHashMap<u64, Arc<PreparedModelArtifact>>>,
    suites: Mutex<FxHashMap<u64, Arc<SuiteArtifact>>>,
    campaigns: Mutex<FxHashMap<u64, Arc<CampaignArtifact>>>,
    bounds: Mutex<FxHashMap<u64, Arc<BoundArtifact>>>,
    hits: [AtomicU64; 6],
    misses: [AtomicU64; 6],
}

impl fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("ArtifactStore");
        for stage in STAGES {
            s.field(stage.name(), &self.stats(stage));
        }
        s.finish()
    }
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Hit/miss counters of one stage.
    pub fn stats(&self, stage: Stage) -> StageStats {
        StageStats {
            hits: self.hits[stage.index()].load(Ordering::Relaxed),
            misses: self.misses[stage.index()].load(Ordering::Relaxed),
        }
    }

    fn record(&self, stage: Stage, hit: bool) {
        let counters = if hit { &self.hits } else { &self.misses };
        counters[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn get<T>(
        &self,
        stage: Stage,
        map: &Mutex<FxHashMap<u64, Arc<T>>>,
        key: u64,
    ) -> Option<Arc<T>> {
        let found = map.lock().expect("store lock").get(&key).cloned();
        self.record(stage, found.is_some());
        found
    }

    fn put<T>(map: &Mutex<FxHashMap<u64, Arc<T>>>, key: u64, value: T) -> Arc<T> {
        map.lock()
            .expect("store lock")
            .entry(key)
            .or_insert_with(|| Arc::new(value))
            .clone()
    }

    /// The lowering stage: CFG + region tree + path counts + decision-set.
    pub fn lowered(&self, function: &Function) -> Arc<LoweredArtifact> {
        self.lowered_keyed(function, function_fingerprint(function))
    }

    /// [`lowered`](ArtifactStore::lowered) with the function fingerprint
    /// already computed (the staged runner hashes the source once per call
    /// and threads the key through every stage).
    fn lowered_keyed(&self, function: &Function, key: u64) -> Arc<LoweredArtifact> {
        if let Some(hit) = self.get(Stage::Lower, &self.lowered, key) {
            return hit;
        }
        let lowered = build_cfg(function);
        let counts = PathCounts::compute(&lowered);
        let decision_stmts = decision_statements(&lowered);
        Self::put(
            &self.lowered,
            key,
            LoweredArtifact {
                function_key: key,
                lowered,
                counts,
                decision_stmts,
            },
        )
    }

    /// The partitioning stage at one path bound.
    pub fn partition(&self, lowered: &LoweredArtifact, path_bound: u128) -> Arc<PartitionArtifact> {
        let key = combine_hashes(&[
            lowered.function_key,
            (path_bound >> 64) as u64,
            path_bound as u64,
        ]);
        if let Some(hit) = self.get(Stage::Partition, &self.partitions, key) {
            return hit;
        }
        let plan = PartitionPlan::compute(&lowered.lowered, path_bound);
        Self::put(&self.partitions, key, PartitionArtifact { key, plan })
    }

    /// The model-preparation stage: the checker's shared optimised, encoded
    /// and prepared model, valid for every query batch over the function
    /// (`None` when no shared model is provably equivalent — cached too, so
    /// the verification itself is not repeated).
    pub fn prepared_model(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        checker: &ModelChecker,
    ) -> Arc<PreparedModelArtifact> {
        let key = combine_hashes(&[
            lowered.function_key,
            stable_hash_str(&format!("{checker:?}")),
        ]);
        if let Some(hit) = self.get(Stage::PrepareModel, &self.models, key) {
            return hit;
        }
        let shared = checker
            .prepare_shared(function, lowered.decision_stmts.clone())
            .map(Arc::new);
        Self::put(&self.models, key, PreparedModelArtifact { key, shared })
    }

    /// The test-generation stage.  On a miss the generator runs with the
    /// cached shared checker model (building it first if necessary), so
    /// neither the optimisation passes nor the encoder run more than once
    /// per `(function, checker configuration)`.
    pub fn suite(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        generator: &HybridGenerator,
    ) -> Arc<SuiteArtifact> {
        let key = combine_hashes(&[partition.key, stable_hash_str(&format!("{generator:?}"))]);
        if let Some(hit) = self.get(Stage::Testgen, &self.suites, key) {
            return hit;
        }
        // The shared model is supplied lazily: it is built (or fetched) only
        // if the generator actually reaches a residual checker batch, so a
        // fully heuristic-covered function pays nothing.  The unbatched
        // generator is the benchmark's measured pre-optimisation reference
        // (handing it the shared model would skip the work it is supposed to
        // measure), and the Baseline engine cannot consume a shared model at
        // all — neither configuration prepares one.
        let suite = generator.generate_with_model_provider(
            function,
            &lowered.lowered,
            &partition.plan,
            || {
                if generator.checker.engine == tmg_tsys::SearchEngine::Baseline {
                    return None;
                }
                self.prepared_model(function, lowered, &generator.checker)
                    .shared
                    .clone()
            },
        );
        Self::put(&self.suites, key, SuiteArtifact { key, suite })
    }

    /// The measurement stage.
    ///
    /// # Errors
    ///
    /// Propagates the target fault as an [`AnalysisError`] (stage `measure`);
    /// failures are not cached.
    pub fn campaign(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        suite: &SuiteArtifact,
        cost_model: &CostModel,
    ) -> Result<Arc<CampaignArtifact>, AnalysisError> {
        let key = combine_hashes(&[suite.key, stable_hash_str(&format!("{cost_model:?}"))]);
        if let Some(hit) = self.get(Stage::Measure, &self.campaigns, key) {
            return Ok(hit);
        }
        let campaign = MeasurementCampaign::run(
            function,
            &lowered.lowered,
            &partition.plan,
            &suite.suite.vectors(),
            cost_model,
        )?;
        Ok(Self::put(
            &self.campaigns,
            key,
            CampaignArtifact { key, campaign },
        ))
    }

    fn bound_key(
        &self,
        analysis: &WcetAnalysis,
        function_key: u64,
        input_space: Option<&[InputVector]>,
    ) -> u64 {
        // The report key composes every upstream key without running any
        // stage: function source, path bound, generator (which embeds the
        // checker), cost model, and the exhaustive input space if supplied.
        combine_hashes(&[
            function_key,
            (analysis.path_bound >> 64) as u64,
            analysis.path_bound as u64,
            stable_hash_str(&format!("{:?}", analysis.generator)),
            stable_hash_str(&format!("{:?}", analysis.cost_model)),
            input_space_hash(input_space),
        ])
    }
}

/// Hash of an exhaustive input space (0 reserved for "none supplied").
fn input_space_hash(input_space: Option<&[InputVector]>) -> u64 {
    match input_space {
        None => 0,
        Some(space) => {
            let parts: Vec<u64> = space
                .iter()
                .map(|v| stable_hash_str(&v.to_string()))
                .collect();
            combine_hashes(&parts).max(1)
        }
    }
}

/// The union of every branching statement of the lowered function: the
/// preserve set under which the shared checker model is prepared (any path
/// query's statement set is a subset).
fn decision_statements(lowered: &LoweredFunction) -> HashSet<StmtId> {
    let mut stmts = HashSet::new();
    for block in lowered.cfg.blocks() {
        match &block.terminator {
            Terminator::Branch { stmt, .. } | Terminator::Switch { stmt, .. } => {
                stmts.insert(*stmt);
            }
            Terminator::Jump(_) | Terminator::Return { .. } | Terminator::Halt => {}
        }
    }
    stmts
}

/// Everything a staged run produces beyond the report, for callers that want
/// the intermediate artifacts (`analyse_detailed`, the bench harness).
#[derive(Debug)]
pub struct StagedAnalysis {
    /// The partitioning artifact.
    pub partition: Arc<PartitionArtifact>,
    /// The generated-suite artifact.
    pub suite: Arc<SuiteArtifact>,
    /// The measurement artifact.
    pub campaign: Arc<CampaignArtifact>,
    /// The summary report.
    pub report: AnalysisReport,
}

/// Runs the full staged pipeline for `analysis` on `function` through
/// `store`, returning only the report.  A hit on the final bound artifact
/// short-circuits every earlier stage (no lookup, no recompute).
///
/// # Errors
///
/// Returns [`AnalysisError`] when a measurement run faults on the target.
pub fn analyse_staged(
    store: &ArtifactStore,
    analysis: &WcetAnalysis,
    function: &Function,
    input_space: Option<&[InputVector]>,
) -> Result<AnalysisReport, AnalysisError> {
    let function_key = function_fingerprint(function);
    let key = store.bound_key(analysis, function_key, input_space);
    if let Some(hit) = store.get(Stage::Bound, &store.bounds, key) {
        return Ok(hit.report.clone());
    }
    let staged = run_stages(store, analysis, function, function_key, input_space)?;
    let report = staged.report.clone();
    ArtifactStore::put(&store.bounds, key, BoundArtifact { key, report });
    Ok(staged.report)
}

/// Like [`analyse_staged`] but returning the intermediate artifacts.  Always
/// materialises the stage chain (from the store where possible), so the
/// bound fast path is not taken.
///
/// # Errors
///
/// Returns [`AnalysisError`] when a measurement run faults on the target.
pub fn analyse_staged_detailed(
    store: &ArtifactStore,
    analysis: &WcetAnalysis,
    function: &Function,
    input_space: Option<&[InputVector]>,
) -> Result<StagedAnalysis, AnalysisError> {
    run_stages(
        store,
        analysis,
        function,
        function_fingerprint(function),
        input_space,
    )
}

fn run_stages(
    store: &ArtifactStore,
    analysis: &WcetAnalysis,
    function: &Function,
    function_key: u64,
    input_space: Option<&[InputVector]>,
) -> Result<StagedAnalysis, AnalysisError> {
    let lowered = store.lowered_keyed(function, function_key);
    let partition = store.partition(&lowered, analysis.path_bound);
    let suite = store.suite(function, &lowered, &partition, &analysis.generator);
    let campaign = store.campaign(function, &lowered, &partition, &suite, &analysis.cost_model)?;
    let exhaustive_max = match input_space {
        Some(space) => Some(
            exhaustive_end_to_end(function, &lowered.lowered, space, &analysis.cost_model)
                .map_err(AnalysisError::from)?
                .0,
        ),
        None => None,
    };
    let plan = &partition.plan;
    let wcet_bound = compute_wcet(&lowered.lowered, plan, &campaign.campaign.worst_case_map());
    let report = AnalysisReport {
        function: function.name.clone(),
        path_bound: analysis.path_bound,
        segments: plan.segments.len(),
        instrumentation_points: plan.instrumentation_points(),
        measurements: plan.measurements(),
        goals: suite.suite.goal_count(),
        heuristic_covered: suite.suite.heuristic_covered(),
        checker_covered: suite.suite.checker_covered(),
        infeasible: suite.suite.infeasible_count(),
        unknown: suite.suite.unknown_count(),
        measurement_runs: campaign.campaign.runs,
        wcet_bound,
        exhaustive_max,
    };
    Ok(StagedAnalysis {
        partition,
        suite,
        campaign,
        report,
    })
}

impl From<MeasurementError> for AnalysisError {
    fn from(e: MeasurementError) -> AnalysisError {
        AnalysisError::new(Stage::Measure, e.function, e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    fn small_function() -> Function {
        parse_function(
            "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } if (a == 0) { z(); } }",
        )
        .expect("parse")
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "lower",
                "partition",
                "prepare-model",
                "testgen",
                "measure",
                "bound"
            ]
        );
        assert_eq!(Stage::PrepareModel.to_string(), "prepare-model");
    }

    #[test]
    fn lowered_artifacts_are_shared_by_content_not_identity() {
        let store = ArtifactStore::new();
        let f1 = small_function();
        let f2 = small_function(); // parsed separately, identical content
        let a1 = store.lowered(&f1);
        let a2 = store.lowered(&f2);
        assert!(
            Arc::ptr_eq(&a1, &a2),
            "same content must share the artifact"
        );
        assert_eq!(store.stats(Stage::Lower), StageStats { hits: 1, misses: 1 });
        assert_eq!(a1.counts.len(), a1.lowered.regions.len());
        assert!(!a1.decision_stmts.is_empty());
    }

    #[test]
    fn partition_artifacts_key_on_the_bound() {
        let store = ArtifactStore::new();
        let f = small_function();
        let lowered = store.lowered(&f);
        let p1 = store.partition(&lowered, 1);
        let p2 = store.partition(&lowered, 4);
        let p1_again = store.partition(&lowered, 1);
        assert!(Arc::ptr_eq(&p1, &p1_again));
        assert_ne!(p1.key, p2.key);
        assert_eq!(
            store.stats(Stage::Partition),
            StageStats { hits: 1, misses: 2 }
        );
    }

    #[test]
    fn prepared_model_is_built_once_per_checker_config() {
        let store = ArtifactStore::new();
        let f = small_function();
        let lowered = store.lowered(&f);
        let checker = ModelChecker::new();
        let m1 = store.prepared_model(&f, &lowered, &checker);
        let m2 = store.prepared_model(&f, &lowered, &checker);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert!(m1.shared.is_some(), "plain branches share one model");
        let tighter = ModelChecker::new().with_budget(1234);
        let m3 = store.prepared_model(&f, &lowered, &tighter);
        assert_ne!(m1.key, m3.key, "checker config feeds the key");
        assert_eq!(
            store.stats(Stage::PrepareModel),
            StageStats { hits: 1, misses: 2 }
        );
    }

    #[test]
    fn suite_stage_reuses_the_shared_model_and_matches_the_plain_generator() {
        let store = ArtifactStore::new();
        let f = small_function();
        let lowered = store.lowered(&f);
        // Bound 4 collapses the whole function into one segment whose path
        // goals include the infeasible `a > 1 && a == 0` combination, so the
        // residual checker batch — and with it the lazy model build — is
        // guaranteed to run.
        let partition = store.partition(&lowered, 4);
        let generator = HybridGenerator::new();
        let staged = store.suite(&f, &lowered, &partition, &generator);
        let plain = generator.generate(&f, &lowered.lowered, &partition.plan);
        assert_eq!(staged.suite, plain, "staged suite must be bit-identical");
        assert!(
            staged.suite.infeasible_count() > 0,
            "checker phase must run"
        );
        // The suite miss built the prepared model once; a second suite at a
        // different bound reuses it.
        let partition100 = store.partition(&lowered, 100);
        store.suite(&f, &lowered, &partition100, &generator);
        assert_eq!(
            store.stats(Stage::PrepareModel),
            StageStats { hits: 1, misses: 1 },
            "one encoding serves both bounds"
        );
    }

    #[test]
    fn fully_heuristic_covered_suites_never_build_the_shared_model() {
        // Every goal of this function is reachable by random search, so the
        // residual batch is empty and the lazy provider must never fire.
        let store = ArtifactStore::new();
        let f =
            parse_function("void f(char a __range(0, 1)) { if (a) { x(); } y(); }").expect("parse");
        let lowered = store.lowered(&f);
        let partition = store.partition(&lowered, 100);
        let staged = store.suite(&f, &lowered, &partition, &HybridGenerator::new());
        assert_eq!(staged.suite.covered_count(), staged.suite.goal_count());
        assert_eq!(
            store.stats(Stage::PrepareModel),
            StageStats { hits: 0, misses: 0 },
            "no residual batch, no model preparation"
        );
    }
}
