//! The staged, content-addressed analysis pipeline.
//!
//! The paper's workflow is inherently staged — lower the CFG, partition it
//! under a path bound `b`, generate coverage tests by model checking,
//! measure on the target, combine into a WCET bound — and most workloads
//! re-enter it with inputs that only partially change: a tradeoff sweep
//! varies `b` but not the function, a before/after benchmark re-analyses the
//! same function twice, a multi-function module shares the cost model, a
//! repeated `reproduce` run changes nothing at all.  This module reifies
//! each stage's output as an explicit artifact keyed by a *stable content
//! hash of its inputs* and keeps them in an [`ArtifactStore`], so a stage
//! re-runs exactly when one of its inputs changed:
//!
//! ```text
//! function source ──► LoweredArtifact       (key: source fingerprint)
//!                     ├─► PartitionArtifact (key: + path bound)
//!                     ├─► PreparedModelArtifact (key: + checker config)
//!                     ├─► SuiteArtifact     (key: partition + generator config)
//!                     ├─► CampaignArtifact  (key: suite + cost model)
//!                     └─► BoundArtifact     (key: campaign + input space)
//! ```
//!
//! Keys are FNV-1a digests ([`tmg_cfg::hash`]) of the canonical
//! pretty-printed function source combined with the `Debug` rendering of the
//! relevant configuration (cost model, checker and heuristic settings) and
//! the path bound — every field that can change a stage's output feeds its
//! key, so a hit is always semantically safe to reuse.  The store counts
//! hits, misses and evictions per [`Stage`]; tests assert that a second
//! analysis of an unchanged function performs no re-partitioning and no
//! re-encoding.
//!
//! Storage is *tiered*: the [`TieredStore`] trait abstracts over where the
//! artifacts live, so [`WcetAnalysis`](crate::WcetAnalysis) runs identically
//! over the in-memory [`ArtifactStore`] and over the persistent on-disk
//! store of the `tmg-service` crate (which layers a size-capped disk cache
//! under an in-memory tier and serves a *fresh process's* analysis of an
//! unchanged function from disk).  The stage methods of the trait mirror the
//! store's inherent get-or-compute methods; the lookup/insert/compute
//! primitives they are built from are public precisely so other tiers can
//! interpose between the cache probe and the computation.
//!
//! The in-memory tier is bounded: each stage map holds at most
//! [`ArtifactStore::capacity`] entries and evicts least-recently-used
//! artifacts beyond that, so a long-running daemon does not grow without
//! limit.  Eviction is pure cache policy — an evicted artifact is recomputed
//! (or re-read from a lower tier) on the next request, never lost
//! semantically.

use crate::analysis::{AnalysisError, AnalysisReport, WcetAnalysis};
use crate::measurement::{exhaustive_end_to_end, MeasurementCampaign, MeasurementError};
use crate::partition::PartitionPlan;
use crate::schema::compute_wcet;
use crate::testgen::{HybridGenerator, TestSuite};
use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tmg_cfg::{
    build_cfg, combine_hashes, function_fingerprint, module_fingerprint, stable_hash_str,
    CallGraph, CallGraphError, LoweredFunction, PathCounts, Terminator,
};
use tmg_minic::ast::{Function, Program};
use tmg_minic::value::InputVector;
use tmg_minic::StmtId;
use tmg_target::CostModel;
use tmg_tsys::{ModelChecker, SharedCheckModel};

/// The pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// CFG lowering + region path counts.
    Lower,
    /// CFG partitioning under the path bound.
    Partition,
    /// Model optimisation + encoding + preparation for the checker.
    PrepareModel,
    /// Hybrid test-data generation.
    Testgen,
    /// Instrumented measurement campaign.
    Measure,
    /// Timing-schema WCET bound (plus optional exhaustive comparison).
    Bound,
}

/// Every stage, in execution order.
pub const STAGES: [Stage; 6] = [
    Stage::Lower,
    Stage::Partition,
    Stage::PrepareModel,
    Stage::Testgen,
    Stage::Measure,
    Stage::Bound,
];

impl Stage {
    /// Dense index of the stage (0..6), usable as an array index.
    pub fn index(self) -> usize {
        match self {
            Stage::Lower => 0,
            Stage::Partition => 1,
            Stage::PrepareModel => 2,
            Stage::Testgen => 3,
            Stage::Measure => 4,
            Stage::Bound => 5,
        }
    }

    /// Stable lowercase name (used in error messages, reports and the cache
    /// directory layout of the persistent store).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lower => "lower",
            Stage::Partition => "partition",
            Stage::PrepareModel => "prepare-model",
            Stage::Testgen => "testgen",
            Stage::Measure => "measure",
            Stage::Bound => "bound",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hit/miss/eviction counters of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Artifact served from the store.
    pub hits: u64,
    /// Artifact not present (computed and inserted by the caller).
    pub misses: u64,
    /// Artifacts evicted by the LRU entry cap.
    pub evictions: u64,
}

impl StageStats {
    /// Stats with the given hit/miss counts and no evictions (the common
    /// assertion shape in tests).
    pub fn hm(hits: u64, misses: u64) -> StageStats {
        StageStats {
            hits,
            misses,
            evictions: 0,
        }
    }
}

/// Complete counter snapshot of an [`ArtifactStore`], one [`StageStats`] plus
/// a live entry count per stage.  Rendered to hand-written JSON for the
/// service `stats` request and `reproduce -- sweep --stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Per-stage counters, indexed by [`Stage::index`].
    pub stages: [StageStats; 6],
    /// Live entries per stage, indexed by [`Stage::index`].
    pub entries: [usize; 6],
    /// Counters of the memory-only call-graph map (module-level analyses).
    pub callgraph: StageStats,
    /// Live call-graph entries.
    pub callgraph_entries: usize,
    /// Entry cap per stage map.
    pub capacity: usize,
}

impl StoreStats {
    /// Counters of one stage.
    pub fn stage(&self, stage: Stage) -> StageStats {
        self.stages[stage.index()]
    }

    /// Total hits across all stages.
    pub fn total_hits(&self) -> u64 {
        self.stages.iter().map(|s| s.hits).sum()
    }

    /// Total misses across all stages.
    pub fn total_misses(&self) -> u64 {
        self.stages.iter().map(|s| s.misses).sum()
    }

    /// Total evictions across all stages.
    pub fn total_evictions(&self) -> u64 {
        self.stages.iter().map(|s| s.evictions).sum()
    }

    /// Renders the snapshot as one JSON object (hand-written; the vendored
    /// serde is derive-markers only): schema `tmg-store-stats/v1`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{ \"schema\": \"tmg-store-stats/v1\", \"capacity\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"stages\": {{",
            self.capacity,
            self.total_hits(),
            self.total_misses(),
            self.total_evictions()
        );
        for stage in STAGES {
            let s = self.stage(stage);
            let _ = write!(
                out,
                " \"{}\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {} }},",
                stage.name(),
                s.hits,
                s.misses,
                s.evictions,
                self.entries[stage.index()],
            );
        }
        let _ = write!(
            out,
            " \"callgraph\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {} }}",
            self.callgraph.hits, self.callgraph.misses, self.callgraph.evictions,
            self.callgraph_entries,
        );
        out.push_str(" } }");
        out
    }
}

/// The lowered function plus everything derived from the source alone.
#[derive(Debug)]
pub struct LoweredArtifact {
    /// Content fingerprint of the function source.
    pub function_key: u64,
    /// CFG + region tree.
    pub lowered: LoweredFunction,
    /// Reusable per-region path counts (feeds partitioning and the sweep).
    pub counts: PathCounts,
    /// Every branching statement of the function — the preserve-set union
    /// under which the shared checker model is prepared.
    pub decision_stmts: HashSet<StmtId>,
}

/// A partition plan at one `(function, path bound)`.
#[derive(Debug)]
pub struct PartitionArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The plan.
    pub plan: PartitionPlan,
}

/// The checker's optimised + encoded + prepared model for one
/// `(function, checker configuration)`.  `None` records that no single
/// shared model serves every query batch (the checker then re-verifies per
/// batch), so even the negative outcome is computed once.
#[derive(Debug)]
pub struct PreparedModelArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The shared model, if one is provably equivalent to per-query models.
    pub shared: Option<Arc<SharedCheckModel>>,
}

/// A generated test suite at one `(partition, generator configuration)`.
#[derive(Debug)]
pub struct SuiteArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The suite.
    pub suite: TestSuite,
}

/// A measurement campaign at one `(suite, cost model)`.
#[derive(Debug)]
pub struct CampaignArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The campaign.
    pub campaign: MeasurementCampaign,
}

/// A finished analysis report at one `(campaign, input space)`.
#[derive(Debug)]
pub struct BoundArtifact {
    /// Content key the artifact is stored under.
    pub key: u64,
    /// The report.
    pub report: AnalysisReport,
}

/// The module call graph plus its bottom-up summary order, keyed by the
/// module fingerprint.  Memory-tier only: rebuilding is one AST walk, so
/// persisting it would cost more than it saves — its value is serving warm
/// module analyses without re-walking unchanged programs, and carrying the
/// stable [`CallGraph::key`] the per-function summary keys fold in.  The
/// order is cached as a `Result` so a recursive module pays the cycle check
/// once, not per analysis.
#[derive(Debug)]
pub struct CallGraphArtifact {
    /// Content key the artifact is stored under (the module fingerprint).
    pub key: u64,
    /// The call graph (nodes in program order).
    pub graph: CallGraph,
    /// Bottom-up summary order, or the recursion cycle that prevents one.
    pub order: Result<Vec<usize>, CallGraphError>,
}

/// Where the staged pipeline reads and writes its artifacts.
///
/// The in-memory [`ArtifactStore`] is the reference tier; the `tmg-service`
/// crate layers a persistent on-disk cache under it behind the same trait,
/// so [`WcetAnalysis::with_store`](crate::WcetAnalysis::with_store) accepts
/// either.  Implementations must be safe to share across the
/// `analyse_all` worker threads.
///
/// Contract: every method returns an artifact *identical* to what the
/// corresponding `compute_*` helper would produce for the same inputs — a
/// tier only changes where the bytes come from, never what they are.
pub trait TieredStore: fmt::Debug + Send + Sync {
    /// The in-memory tier backing this store (counter snapshots, tests).
    fn memory(&self) -> &ArtifactStore;

    /// Returns the whole store as the plain in-memory tier when that is what
    /// it is.  The staged runner uses this to take its statically-typed
    /// (fully inlinable) path for [`ArtifactStore`]-backed analyses even
    /// when the store was attached behind `dyn TieredStore` — the stage
    /// bodies are hot enough that devirtualising them is measurable on
    /// millisecond-scale analyses.
    fn as_memory_store(&self) -> Option<&ArtifactStore> {
        None
    }

    /// The lowering stage, with the function fingerprint already computed.
    fn lowered_keyed(&self, function: &Function, key: u64) -> Arc<LoweredArtifact>;

    /// The partitioning stage at one path bound.
    fn partition(&self, lowered: &LoweredArtifact, path_bound: u128) -> Arc<PartitionArtifact>;

    /// The model-preparation stage.
    fn prepared_model(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        checker: &ModelChecker,
    ) -> Arc<PreparedModelArtifact>;

    /// The test-generation stage.
    fn suite(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        generator: &HybridGenerator,
    ) -> Arc<SuiteArtifact>;

    /// The measurement stage.
    ///
    /// # Errors
    ///
    /// Propagates the target fault as an [`AnalysisError`] (stage `measure`);
    /// failures are not cached.
    fn campaign(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        suite: &SuiteArtifact,
        cost_model: &CostModel,
    ) -> Result<Arc<CampaignArtifact>, AnalysisError>;

    /// Looks up a finished bound artifact (no computation on miss — the
    /// staged runner owns the recomputation).
    fn bound(&self, key: u64) -> Option<Arc<BoundArtifact>>;

    /// Records a finished bound artifact.
    fn put_bound(&self, key: u64, report: AnalysisReport) -> Arc<BoundArtifact>;
}

/// Default entry cap per stage map of the in-memory tier: generous enough
/// that the paper-reproduction workloads never evict, small enough that a
/// daemon analysing an unbounded stream of distinct functions stays bounded.
pub const DEFAULT_STAGE_CAPACITY: usize = 1024;

/// One LRU-managed stage map: artifacts keyed by content hash, each entry
/// carrying the logical timestamp of its last touch.  Eviction scans for the
/// minimum timestamp — O(n) on the rare insert beyond capacity, free
/// otherwise, and with the small per-stage caps that beats maintaining a
/// linked order on every hit.
struct LruMap<T> {
    entries: FxHashMap<u64, (Arc<T>, u64)>,
    tick: u64,
}

impl<T> Default for LruMap<T> {
    fn default() -> LruMap<T> {
        LruMap {
            entries: FxHashMap::default(),
            tick: 0,
        }
    }
}

impl<T> LruMap<T> {
    fn get(&mut self, key: u64) -> Option<Arc<T>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(value, touched)| {
            *touched = tick;
            Arc::clone(value)
        })
    }

    /// Get-or-insert; returns the resident artifact plus how many entries the
    /// capacity bound evicted.  The freshly touched key is never evicted, so
    /// even `capacity == 0` makes progress (the entry just does not persist
    /// past the next insert).
    fn insert(&mut self, key: u64, value: T, capacity: usize) -> (Arc<T>, u64) {
        self.tick += 1;
        let tick = self.tick;
        let resident = self
            .entries
            .entry(key)
            .or_insert_with(|| (Arc::new(value), tick));
        resident.1 = tick;
        let resident = Arc::clone(&resident.0);
        let mut evicted = 0;
        while self.entries.len() > capacity.max(1) {
            let Some(oldest) = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| *k)
            else {
                break;
            };
            self.entries.remove(&oldest);
            evicted += 1;
        }
        (resident, evicted)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Content-addressed in-memory store for every pipeline stage.
///
/// Thread-safe: `WcetAnalysis::analyse_all` fans functions out across cores
/// with all workers sharing one store.  Lookups and insertions take a
/// per-stage mutex; stage computations run outside any lock (two racing
/// workers may both compute the same artifact — the results are identical by
/// construction, and one insertion wins).  Each stage map is bounded by
/// [`ArtifactStore::capacity`] entries with least-recently-used eviction.
pub struct ArtifactStore {
    lowered: Mutex<LruMap<LoweredArtifact>>,
    partitions: Mutex<LruMap<PartitionArtifact>>,
    models: Mutex<LruMap<PreparedModelArtifact>>,
    suites: Mutex<LruMap<SuiteArtifact>>,
    campaigns: Mutex<LruMap<CampaignArtifact>>,
    bounds: Mutex<LruMap<BoundArtifact>>,
    callgraphs: Mutex<LruMap<CallGraphArtifact>>,
    hits: [AtomicU64; 6],
    misses: [AtomicU64; 6],
    evictions: [AtomicU64; 6],
    callgraph_hits: AtomicU64,
    callgraph_misses: AtomicU64,
    callgraph_evictions: AtomicU64,
    capacity: usize,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::new()
    }
}

impl fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("ArtifactStore");
        for stage in STAGES {
            s.field(stage.name(), &self.stats(stage));
        }
        s.finish()
    }
}

macro_rules! stage_accessors {
    ($lookup:ident, $insert:ident, $field:ident, $stage:expr, $artifact:ty) => {
        /// Probes the stage map; records a hit or miss.
        pub fn $lookup(&self, key: u64) -> Option<Arc<$artifact>> {
            let found = self.$field.lock().expect("store lock").get(key);
            self.record($stage, found.is_some());
            found
        }

        /// Inserts a computed artifact (first insertion wins on a race) and
        /// returns the resident copy, applying the LRU entry cap.
        pub fn $insert(&self, key: u64, artifact: $artifact) -> Arc<$artifact> {
            let (resident, evicted) =
                self.$field
                    .lock()
                    .expect("store lock")
                    .insert(key, artifact, self.capacity);
            if evicted > 0 {
                self.evictions[$stage.index()].fetch_add(evicted, Ordering::Relaxed);
            }
            resident
        }
    };
}

impl ArtifactStore {
    /// An empty store with the default per-stage entry cap.
    pub fn new() -> ArtifactStore {
        ArtifactStore::with_capacity(DEFAULT_STAGE_CAPACITY)
    }

    /// An empty store holding at most `capacity` entries per stage map
    /// (minimum 1), evicting least-recently-used artifacts beyond that.
    pub fn with_capacity(capacity: usize) -> ArtifactStore {
        ArtifactStore {
            lowered: Mutex::default(),
            partitions: Mutex::default(),
            models: Mutex::default(),
            suites: Mutex::default(),
            campaigns: Mutex::default(),
            bounds: Mutex::default(),
            callgraphs: Mutex::default(),
            hits: Default::default(),
            misses: Default::default(),
            evictions: Default::default(),
            callgraph_hits: AtomicU64::new(0),
            callgraph_misses: AtomicU64::new(0),
            callgraph_evictions: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The per-stage entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters of one stage.
    pub fn stats(&self, stage: Stage) -> StageStats {
        StageStats {
            hits: self.hits[stage.index()].load(Ordering::Relaxed),
            misses: self.misses[stage.index()].load(Ordering::Relaxed),
            evictions: self.evictions[stage.index()].load(Ordering::Relaxed),
        }
    }

    /// Complete counter + occupancy snapshot (the satellite `stats()`
    /// struct; render with [`StoreStats::to_json`]).
    pub fn store_stats(&self) -> StoreStats {
        let mut stages = [StageStats::default(); 6];
        for stage in STAGES {
            stages[stage.index()] = self.stats(stage);
        }
        let entries = [
            self.lowered.lock().expect("store lock").len(),
            self.partitions.lock().expect("store lock").len(),
            self.models.lock().expect("store lock").len(),
            self.suites.lock().expect("store lock").len(),
            self.campaigns.lock().expect("store lock").len(),
            self.bounds.lock().expect("store lock").len(),
        ];
        StoreStats {
            stages,
            entries,
            callgraph: self.callgraph_stats(),
            callgraph_entries: self.callgraphs.lock().expect("store lock").len(),
            capacity: self.capacity,
        }
    }

    /// Hit/miss/eviction counters of the call-graph map.
    pub fn callgraph_stats(&self) -> StageStats {
        StageStats {
            hits: self.callgraph_hits.load(Ordering::Relaxed),
            misses: self.callgraph_misses.load(Ordering::Relaxed),
            evictions: self.callgraph_evictions.load(Ordering::Relaxed),
        }
    }

    /// The call-graph artifact of `program`, keyed by its module
    /// fingerprint: graph plus bottom-up summary order, built on the first
    /// request and served from memory afterwards.
    pub fn callgraph(&self, program: &Program) -> Arc<CallGraphArtifact> {
        let key = module_fingerprint(program);
        let found = self.callgraphs.lock().expect("store lock").get(key);
        if let Some(hit) = found {
            self.callgraph_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.callgraph_misses.fetch_add(1, Ordering::Relaxed);
        let graph = CallGraph::build(program);
        let order = graph.reverse_topological_order();
        let (resident, evicted) = self.callgraphs.lock().expect("store lock").insert(
            key,
            CallGraphArtifact { key, graph, order },
            self.capacity,
        );
        if evicted > 0 {
            self.callgraph_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        resident
    }

    fn record(&self, stage: Stage, hit: bool) {
        let counters = if hit { &self.hits } else { &self.misses };
        counters[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    stage_accessors!(
        lookup_lowered,
        insert_lowered,
        lowered,
        Stage::Lower,
        LoweredArtifact
    );
    stage_accessors!(
        lookup_partition,
        insert_partition,
        partitions,
        Stage::Partition,
        PartitionArtifact
    );
    stage_accessors!(
        lookup_prepared_model,
        insert_prepared_model,
        models,
        Stage::PrepareModel,
        PreparedModelArtifact
    );
    stage_accessors!(
        lookup_suite,
        insert_suite,
        suites,
        Stage::Testgen,
        SuiteArtifact
    );
    stage_accessors!(
        lookup_campaign,
        insert_campaign,
        campaigns,
        Stage::Measure,
        CampaignArtifact
    );
    stage_accessors!(
        lookup_bound,
        insert_bound,
        bounds,
        Stage::Bound,
        BoundArtifact
    );

    /// The lowering stage: CFG + region tree + path counts + decision-set.
    pub fn lowered(&self, function: &Function) -> Arc<LoweredArtifact> {
        TieredStore::lowered_keyed(self, function, function_fingerprint(function))
    }
}

impl TieredStore for ArtifactStore {
    fn memory(&self) -> &ArtifactStore {
        self
    }

    fn as_memory_store(&self) -> Option<&ArtifactStore> {
        Some(self)
    }

    fn lowered_keyed(&self, function: &Function, key: u64) -> Arc<LoweredArtifact> {
        if let Some(hit) = self.lookup_lowered(key) {
            return hit;
        }
        self.insert_lowered(key, compute_lowered(function, key))
    }

    fn partition(&self, lowered: &LoweredArtifact, path_bound: u128) -> Arc<PartitionArtifact> {
        let key = partition_key(lowered.function_key, path_bound);
        if let Some(hit) = self.lookup_partition(key) {
            return hit;
        }
        self.insert_partition(key, compute_partition(lowered, path_bound, key))
    }

    fn prepared_model(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        checker: &ModelChecker,
    ) -> Arc<PreparedModelArtifact> {
        let key = prepared_model_key(lowered.function_key, checker);
        if let Some(hit) = self.lookup_prepared_model(key) {
            return hit;
        }
        self.insert_prepared_model(key, compute_prepared_model(function, lowered, checker, key))
    }

    fn suite(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        generator: &HybridGenerator,
    ) -> Arc<SuiteArtifact> {
        let key = suite_key(partition.key, generator);
        if let Some(hit) = self.lookup_suite(key) {
            return hit;
        }
        self.insert_suite(
            key,
            compute_suite(self, function, lowered, partition, generator, key),
        )
    }

    fn campaign(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        suite: &SuiteArtifact,
        cost_model: &CostModel,
    ) -> Result<Arc<CampaignArtifact>, AnalysisError> {
        let key = campaign_key(suite.key, cost_model);
        if let Some(hit) = self.lookup_campaign(key) {
            return Ok(hit);
        }
        let campaign = compute_campaign(function, lowered, partition, suite, cost_model, key)?;
        Ok(self.insert_campaign(key, campaign))
    }

    fn bound(&self, key: u64) -> Option<Arc<BoundArtifact>> {
        self.lookup_bound(key)
    }

    fn put_bound(&self, key: u64, report: AnalysisReport) -> Arc<BoundArtifact> {
        self.insert_bound(key, BoundArtifact { key, report })
    }
}

// ---------------------------------------------------------------------------
// Stage keys.  Pure functions of the artifact inputs, shared by every tier so
// an artifact computed by one process is found by any other.
// ---------------------------------------------------------------------------

/// Key of the partition artifact at `(function, path bound)`.
pub fn partition_key(function_key: u64, path_bound: u128) -> u64 {
    combine_hashes(&[function_key, (path_bound >> 64) as u64, path_bound as u64])
}

/// Key of the prepared-model artifact at `(function, checker configuration)`.
pub fn prepared_model_key(function_key: u64, checker: &ModelChecker) -> u64 {
    combine_hashes(&[function_key, stable_hash_str(&format!("{checker:?}"))])
}

/// Key of the suite artifact at `(partition, generator configuration)`.
pub fn suite_key(partition_key: u64, generator: &HybridGenerator) -> u64 {
    combine_hashes(&[partition_key, stable_hash_str(&format!("{generator:?}"))])
}

/// Key of the campaign artifact at `(suite, cost model)`.
pub fn campaign_key(suite_key: u64, cost_model: &CostModel) -> u64 {
    combine_hashes(&[suite_key, stable_hash_str(&format!("{cost_model:?}"))])
}

/// Key of the final bound artifact.  Composes every upstream key without
/// running any stage: function source, path bound, generator (which embeds
/// the checker), cost model, and the exhaustive input space if supplied.
pub fn bound_key(
    analysis: &WcetAnalysis,
    function_key: u64,
    input_space: Option<&[InputVector]>,
) -> u64 {
    combine_hashes(&[
        function_key,
        (analysis.path_bound >> 64) as u64,
        analysis.path_bound as u64,
        stable_hash_str(&format!("{:?}", analysis.generator)),
        stable_hash_str(&format!("{:?}", analysis.cost_model)),
        input_space_hash(input_space),
    ])
}

// ---------------------------------------------------------------------------
// Stage computations.  Pure (deterministic) functions from inputs to
// artifacts, shared by every tier — a tier decides *whether* to compute, these
// decide *what* the artifact is.
// ---------------------------------------------------------------------------

/// Computes the lowering artifact from the function source.
pub fn compute_lowered(function: &Function, key: u64) -> LoweredArtifact {
    let lowered = build_cfg(function);
    let counts = PathCounts::compute(&lowered);
    let decision_stmts = decision_statements(&lowered);
    LoweredArtifact {
        function_key: key,
        lowered,
        counts,
        decision_stmts,
    }
}

/// Computes the partition artifact at one path bound.
pub fn compute_partition(
    lowered: &LoweredArtifact,
    path_bound: u128,
    key: u64,
) -> PartitionArtifact {
    PartitionArtifact {
        key,
        plan: PartitionPlan::compute(&lowered.lowered, path_bound),
    }
}

/// Computes the prepared-model artifact: the checker's shared optimised,
/// encoded and prepared model, valid for every query batch over the function
/// (`None` when no shared model is provably equivalent — cached too, so the
/// verification itself is not repeated).
pub fn compute_prepared_model(
    function: &Function,
    lowered: &LoweredArtifact,
    checker: &ModelChecker,
    key: u64,
) -> PreparedModelArtifact {
    let shared = checker
        .prepare_shared(function, lowered.decision_stmts.clone())
        .map(Arc::new);
    PreparedModelArtifact { key, shared }
}

/// Computes the test-generation artifact.  The generator runs with the
/// tier's cached shared checker model (building it through `tier` only if a
/// residual checker batch exists), so neither the optimisation passes nor
/// the encoder run more than once per `(function, checker configuration)`
/// and a fully heuristic-covered function pays nothing.  The unbatched
/// generator is the benchmark's measured pre-optimisation reference (handing
/// it the shared model would skip the work it is supposed to measure), so it
/// never requests one.
pub fn compute_suite<S: TieredStore + ?Sized>(
    tier: &S,
    function: &Function,
    lowered: &LoweredArtifact,
    partition: &PartitionArtifact,
    generator: &HybridGenerator,
    key: u64,
) -> SuiteArtifact {
    let suite =
        generator.generate_with_model_provider(function, &lowered.lowered, &partition.plan, || {
            let _span = tmg_obs::span("stage:prepare-model");
            tier.prepared_model(function, lowered, &generator.checker)
                .shared
                .clone()
        });
    SuiteArtifact { key, suite }
}

/// Computes the measurement artifact.
///
/// # Errors
///
/// Propagates the target fault as an [`AnalysisError`] (stage `measure`).
pub fn compute_campaign(
    function: &Function,
    lowered: &LoweredArtifact,
    partition: &PartitionArtifact,
    suite: &SuiteArtifact,
    cost_model: &CostModel,
    key: u64,
) -> Result<CampaignArtifact, AnalysisError> {
    let campaign = MeasurementCampaign::run(
        function,
        &lowered.lowered,
        &partition.plan,
        &suite.suite.vectors(),
        cost_model,
    )?;
    Ok(CampaignArtifact { key, campaign })
}

/// Hash of an exhaustive input space (0 reserved for "none supplied").
fn input_space_hash(input_space: Option<&[InputVector]>) -> u64 {
    match input_space {
        None => 0,
        Some(space) => {
            let parts: Vec<u64> = space
                .iter()
                .map(|v| stable_hash_str(&v.to_string()))
                .collect();
            combine_hashes(&parts).max(1)
        }
    }
}

/// The union of every branching statement of the lowered function: the
/// preserve set under which the shared checker model is prepared (any path
/// query's statement set is a subset).  Public so lower storage tiers can
/// re-derive the set when materialising a lowering artifact.
pub fn decision_statements(lowered: &LoweredFunction) -> HashSet<StmtId> {
    let mut stmts = HashSet::new();
    for block in lowered.cfg.blocks() {
        match &block.terminator {
            Terminator::Branch { stmt, .. } | Terminator::Switch { stmt, .. } => {
                stmts.insert(*stmt);
            }
            Terminator::Jump(_) | Terminator::Return { .. } | Terminator::Halt => {}
        }
    }
    stmts
}

/// Everything a staged run produces beyond the report, for callers that want
/// the intermediate artifacts (`analyse_detailed`, the bench harness).
#[derive(Debug)]
pub struct StagedAnalysis {
    /// The partitioning artifact.
    pub partition: Arc<PartitionArtifact>,
    /// The generated-suite artifact.
    pub suite: Arc<SuiteArtifact>,
    /// The measurement artifact.
    pub campaign: Arc<CampaignArtifact>,
    /// The summary report.
    pub report: AnalysisReport,
}

/// Runs the full staged pipeline for `analysis` on `function` through
/// `store`, returning only the report.  A hit on the final bound artifact
/// short-circuits every earlier stage (no lookup, no recompute).
///
/// Generic over the tier (`?Sized`, so `&dyn TieredStore` works too): calls
/// with a statically known store type monomorphise the whole stage chain.
///
/// # Errors
///
/// Returns [`AnalysisError`] when a measurement run faults on the target.
pub fn analyse_staged<S: TieredStore + ?Sized>(
    store: &S,
    analysis: &WcetAnalysis,
    function: &Function,
    input_space: Option<&[InputVector]>,
) -> Result<AnalysisReport, AnalysisError> {
    let function_key = function_fingerprint(function);
    let key = bound_key(analysis, function_key, input_space);
    if let Some(hit) = store.bound(key) {
        return Ok(hit.report.clone());
    }
    let staged = run_stages(store, analysis, function, function_key, input_space)?;
    store.put_bound(key, staged.report.clone());
    Ok(staged.report)
}

/// Like [`analyse_staged`] but returning the intermediate artifacts.  Always
/// materialises the stage chain (from the store where possible), so the
/// bound fast path is not taken.
///
/// # Errors
///
/// Returns [`AnalysisError`] when a measurement run faults on the target.
pub fn analyse_staged_detailed<S: TieredStore + ?Sized>(
    store: &S,
    analysis: &WcetAnalysis,
    function: &Function,
    input_space: Option<&[InputVector]>,
) -> Result<StagedAnalysis, AnalysisError> {
    run_stages(
        store,
        analysis,
        function,
        function_fingerprint(function),
        input_space,
    )
}

fn run_stages<S: TieredStore + ?Sized>(
    store: &S,
    analysis: &WcetAnalysis,
    function: &Function,
    function_key: u64,
    input_space: Option<&[InputVector]>,
) -> Result<StagedAnalysis, AnalysisError> {
    // Stage-boundary cancellation guards: each stage is atomic (it either
    // completes — and is then correct and safely cacheable — or, inside the
    // checker, unwinds with nothing published), so between stages is where a
    // fired deadline turns into a typed error with an accurate stage.
    let cancel = &analysis.generator.checker.cancel;
    let guard = |stage: Stage| {
        if cancel.is_cancelled() {
            Err(AnalysisError::cancelled(stage, &function.name))
        } else {
            Ok(())
        }
    };
    guard(Stage::Lower)?;
    let lowered = {
        let _span = tmg_obs::span("stage:lower");
        store.lowered_keyed(function, function_key)
    };
    guard(Stage::Partition)?;
    let partition = {
        let _span = tmg_obs::span("stage:partition");
        store.partition(&lowered, analysis.path_bound)
    };
    guard(Stage::Testgen)?;
    let suite = {
        let _span = tmg_obs::span("stage:testgen");
        store.suite(function, &lowered, &partition, &analysis.generator)
    };
    guard(Stage::Measure)?;
    let campaign = {
        let _span = tmg_obs::span("stage:measure");
        store.campaign(function, &lowered, &partition, &suite, &analysis.cost_model)?
    };
    guard(Stage::Bound)?;
    let _bound_span = tmg_obs::span("stage:bound");
    let exhaustive_max = match input_space {
        Some(space) => Some({
            let _span = tmg_obs::span("stage:exhaustive");
            exhaustive_end_to_end(function, &lowered.lowered, space, &analysis.cost_model)
                .map_err(AnalysisError::from)?
                .0
        }),
        None => None,
    };
    let plan = &partition.plan;
    let wcet_bound = compute_wcet(&lowered.lowered, plan, &campaign.campaign.worst_case_map());
    let report = AnalysisReport {
        function: function.name.clone(),
        path_bound: analysis.path_bound,
        segments: plan.segments.len(),
        instrumentation_points: plan.instrumentation_points(),
        measurements: plan.measurements(),
        goals: suite.suite.goal_count(),
        heuristic_covered: suite.suite.heuristic_covered(),
        checker_covered: suite.suite.checker_covered(),
        infeasible: suite.suite.infeasible_count(),
        unknown: suite.suite.unknown_count(),
        measurement_runs: campaign.campaign.runs,
        wcet_bound,
        exhaustive_max,
    };
    Ok(StagedAnalysis {
        partition,
        suite,
        campaign,
        report,
    })
}

impl From<MeasurementError> for AnalysisError {
    fn from(e: MeasurementError) -> AnalysisError {
        AnalysisError::new(Stage::Measure, e.function, e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    fn small_function() -> Function {
        parse_function(
            "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } if (a == 0) { z(); } }",
        )
        .expect("parse")
    }

    #[test]
    fn prepared_model_keys_incorporate_the_slicing_config() {
        // The checker's cone-of-influence slicing changes which model a
        // batch explores; a persisted artifact prepared under one slicing
        // setting must never be served to a checker running another.  The
        // key derives from the `Debug`-rendered configuration, which
        // includes the `slicing` flag.
        let function_key = tmg_cfg::function_fingerprint(&small_function());
        let sliced = prepared_model_key(function_key, &ModelChecker::new());
        let unsliced = prepared_model_key(function_key, &ModelChecker::new().with_slicing(false));
        assert_ne!(
            sliced, unsliced,
            "slicing configuration must feed the artifact key"
        );
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "lower",
                "partition",
                "prepare-model",
                "testgen",
                "measure",
                "bound"
            ]
        );
        assert_eq!(Stage::PrepareModel.to_string(), "prepare-model");
    }

    #[test]
    fn lowered_artifacts_are_shared_by_content_not_identity() {
        let store = ArtifactStore::new();
        let f1 = small_function();
        let f2 = small_function(); // parsed separately, identical content
        let a1 = store.lowered(&f1);
        let a2 = store.lowered(&f2);
        assert!(
            Arc::ptr_eq(&a1, &a2),
            "same content must share the artifact"
        );
        assert_eq!(store.stats(Stage::Lower), StageStats::hm(1, 1));
        assert_eq!(a1.counts.len(), a1.lowered.regions.len());
        assert!(!a1.decision_stmts.is_empty());
    }

    #[test]
    fn partition_artifacts_key_on_the_bound() {
        let store = ArtifactStore::new();
        let f = small_function();
        let lowered = store.lowered(&f);
        let p1 = store.partition(&lowered, 1);
        let p2 = store.partition(&lowered, 4);
        let p1_again = store.partition(&lowered, 1);
        assert!(Arc::ptr_eq(&p1, &p1_again));
        assert_ne!(p1.key, p2.key);
        assert_eq!(store.stats(Stage::Partition), StageStats::hm(1, 2));
    }

    #[test]
    fn prepared_model_is_built_once_per_checker_config() {
        let store = ArtifactStore::new();
        let f = small_function();
        let lowered = store.lowered(&f);
        let checker = ModelChecker::new();
        let m1 = store.prepared_model(&f, &lowered, &checker);
        let m2 = store.prepared_model(&f, &lowered, &checker);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert!(m1.shared.is_some(), "plain branches share one model");
        let tighter = ModelChecker::new().with_budget(1234);
        let m3 = store.prepared_model(&f, &lowered, &tighter);
        assert_ne!(m1.key, m3.key, "checker config feeds the key");
        assert_eq!(store.stats(Stage::PrepareModel), StageStats::hm(1, 2));
    }

    #[test]
    fn suite_stage_reuses_the_shared_model_and_matches_the_plain_generator() {
        let store = ArtifactStore::new();
        let f = small_function();
        let lowered = store.lowered(&f);
        // Bound 4 collapses the whole function into one segment whose path
        // goals include the infeasible `a > 1 && a == 0` combination, so the
        // residual checker batch — and with it the lazy model build — is
        // guaranteed to run.
        let partition = store.partition(&lowered, 4);
        let generator = HybridGenerator::new();
        let staged = store.suite(&f, &lowered, &partition, &generator);
        let plain = generator.generate(&f, &lowered.lowered, &partition.plan);
        assert_eq!(staged.suite, plain, "staged suite must be bit-identical");
        assert!(
            staged.suite.infeasible_count() > 0,
            "checker phase must run"
        );
        // The suite miss built the prepared model once; a second suite at a
        // different bound reuses it.
        let partition100 = store.partition(&lowered, 100);
        store.suite(&f, &lowered, &partition100, &generator);
        assert_eq!(
            store.stats(Stage::PrepareModel),
            StageStats::hm(1, 1),
            "one encoding serves both bounds"
        );
    }

    #[test]
    fn fully_heuristic_covered_suites_never_build_the_shared_model() {
        // Every goal of this function is reachable by random search, so the
        // residual batch is empty and the lazy provider must never fire.
        let store = ArtifactStore::new();
        let f =
            parse_function("void f(char a __range(0, 1)) { if (a) { x(); } y(); }").expect("parse");
        let lowered = store.lowered(&f);
        let partition = store.partition(&lowered, 100);
        let staged = store.suite(&f, &lowered, &partition, &HybridGenerator::new());
        assert_eq!(staged.suite.covered_count(), staged.suite.goal_count());
        assert_eq!(
            store.stats(Stage::PrepareModel),
            StageStats::hm(0, 0),
            "no residual batch, no model preparation"
        );
    }

    #[test]
    fn lru_cap_bounds_the_store_and_counts_evictions() {
        let store = ArtifactStore::with_capacity(2);
        let f = small_function();
        let lowered = store.lowered(&f);
        // Three distinct bounds through a 2-entry map: one eviction.
        store.partition(&lowered, 1);
        store.partition(&lowered, 2);
        store.partition(&lowered, 3);
        let stats = store.stats(Stage::Partition);
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 3, 1));
        let snapshot = store.store_stats();
        assert_eq!(snapshot.entries[Stage::Partition.index()], 2);
        // Bound 1 was least recently used and is gone; bound 3 is resident.
        store.partition(&lowered, 3);
        store.partition(&lowered, 1);
        let stats = store.stats(Stage::Partition);
        assert_eq!((stats.hits, stats.misses), (1, 4));
    }

    #[test]
    fn lru_eviction_prefers_the_least_recently_touched_entry() {
        let store = ArtifactStore::with_capacity(2);
        let f = small_function();
        let lowered = store.lowered(&f);
        store.partition(&lowered, 1);
        store.partition(&lowered, 2);
        // Touch bound 1 so bound 2 becomes the eviction victim.
        store.partition(&lowered, 1);
        store.partition(&lowered, 3);
        assert!(store
            .lookup_partition(partition_key(lowered.function_key, 1))
            .is_some());
        assert!(store
            .lookup_partition(partition_key(lowered.function_key, 2))
            .is_none());
    }

    #[test]
    fn store_stats_render_as_json() {
        let store = ArtifactStore::new();
        let f = small_function();
        store.lowered(&f);
        store.lowered(&f);
        let json = store.store_stats().to_json();
        assert!(json.contains("\"schema\": \"tmg-store-stats/v1\""));
        assert!(json.contains(
            "\"lower\": { \"hits\": 1, \"misses\": 1, \"evictions\": 0, \"entries\": 1 }"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let snapshot = store.store_stats();
        assert_eq!(snapshot.total_hits(), 1);
        assert_eq!(snapshot.total_misses(), 1);
        assert_eq!(snapshot.total_evictions(), 0);
    }
}
