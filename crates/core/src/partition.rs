//! CFG partitioning into program segments (Section 2 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;
use tmg_cfg::{BlockId, LoweredFunction, RegionId};
use tmg_target::{InstrumentationPoint, PointId};

/// Identity of a program segment within one [`PartitionPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Raw index into the plan's segment table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// What a segment covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// A whole single-entry region measured as one unit (its path count is
    /// within the bound).
    Region(RegionId),
    /// A single basic block measured on its own (its enclosing region was
    /// decomposed).
    Block(BlockId),
}

/// One program segment of the partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment identity.
    pub id: SegmentId,
    /// Whole region or single block.
    pub kind: SegmentKind,
    /// Blocks covered by the segment.
    pub blocks: Vec<BlockId>,
    /// Number of paths through the segment (1 for single blocks).
    pub paths: u128,
}

impl Segment {
    /// Whether this segment measures a whole region.
    pub fn is_region(&self) -> bool {
        matches!(self.kind, SegmentKind::Region(_))
    }
}

/// The result of partitioning a function with a given path bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// The path bound `b` the plan was computed for.
    pub path_bound: u128,
    /// The program segments, in deterministic (pre-order) order.
    pub segments: Vec<Segment>,
    /// `BlockId → SegmentId` lookup table, built once at plan construction so
    /// [`PartitionPlan::segment_of_block`] is O(1) instead of scanning every
    /// segment's block list.
    block_segment: Vec<Option<SegmentId>>,
}

impl PartitionPlan {
    /// Partitions `lowered` with path bound `b`, following the paper's
    /// algorithm: starting from the whole function, a segment whose path
    /// count is at most `b` is measured as a whole; otherwise it is
    /// decomposed into its nested single-entry regions, and every block not
    /// covered by a nested region is measured individually.
    pub fn compute(lowered: &LoweredFunction, path_bound: u128) -> PartitionPlan {
        let mut segments = Vec::new();
        let root = lowered.regions.root_id();
        visit_region(lowered, root, path_bound, &mut segments);
        let mut block_segment = vec![None; lowered.cfg.block_count()];
        for segment in &segments {
            for block in &segment.blocks {
                block_segment[block.index()] = Some(segment.id);
            }
        }
        PartitionPlan {
            path_bound,
            segments,
            block_segment,
        }
    }

    /// Reassembles a plan from its segments — the deserialization hook of the
    /// persistent artifact store.  `block_count` is the block-table size of
    /// the CFG the plan was computed for ([`PartitionPlan::indexed_blocks`]
    /// of the original); the `BlockId → SegmentId` index is rebuilt exactly
    /// as [`PartitionPlan::compute`] builds it, so a round-tripped plan
    /// compares equal to the original.
    pub fn from_parts(
        path_bound: u128,
        segments: Vec<Segment>,
        block_count: usize,
    ) -> PartitionPlan {
        let mut block_segment = vec![None; block_count];
        for segment in &segments {
            for block in &segment.blocks {
                block_segment[block.index()] = Some(segment.id);
            }
        }
        PartitionPlan {
            path_bound,
            segments,
            block_segment,
        }
    }

    /// Size of the `BlockId → SegmentId` index (the block count of the CFG
    /// the plan was computed for); the serialization counterpart of
    /// [`PartitionPlan::from_parts`].
    pub fn indexed_blocks(&self) -> usize {
        self.block_segment.len()
    }

    /// Number of instrumentation points `ip`: two per segment (one before,
    /// one after), exactly as Table 1 counts them.
    pub fn instrumentation_points(&self) -> usize {
        self.segments.len() * 2
    }

    /// Number of measurements `m`: one per path of each segment (saturating).
    pub fn measurements(&self) -> u128 {
        self.segments
            .iter()
            .fold(0u128, |acc, s| acc.saturating_add(s.paths))
    }

    /// Looks up the segment containing `block`, if any, through the
    /// precomputed `BlockId → SegmentId` index.
    pub fn segment_of_block(&self, block: BlockId) -> Option<&Segment> {
        let id = self.block_segment.get(block.index()).copied().flatten()?;
        Some(&self.segments[id.index()])
    }

    /// The concrete instrumentation points of the plan: for every segment a
    /// point on its entry edge(s) and on each of its exit edges.  (The `ip`
    /// statistic counts the idealised two points per segment like the paper;
    /// the concrete plan needs one point per physical edge.)
    pub fn instrumentation(
        &self,
        lowered: &LoweredFunction,
    ) -> Vec<(
        SegmentId,
        Vec<InstrumentationPoint>,
        Vec<InstrumentationPoint>,
    )> {
        let mut next_point = 0u32;
        let mut fresh = |edge: (BlockId, BlockId), label: String| {
            let p = InstrumentationPoint {
                id: PointId(next_point),
                edge,
                label,
            };
            next_point += 1;
            p
        };
        let mut out = Vec::new();
        for segment in &self.segments {
            let (entry_edges, exit_edges) = segment_edges(lowered, segment);
            let entries: Vec<InstrumentationPoint> = entry_edges
                .into_iter()
                .map(|e| fresh(e, format!("{} entry", segment.id)))
                .collect();
            let exits: Vec<InstrumentationPoint> = exit_edges
                .into_iter()
                .map(|e| fresh(e, format!("{} exit", segment.id)))
                .collect();
            out.push((segment.id, entries, exits));
        }
        out
    }
}

fn visit_region(
    lowered: &LoweredFunction,
    region_id: RegionId,
    bound: u128,
    segments: &mut Vec<Segment>,
) {
    let region = lowered.regions.region(region_id);
    if region.path_count <= bound {
        segments.push(Segment {
            id: SegmentId(segments.len() as u32),
            kind: SegmentKind::Region(region_id),
            blocks: region.blocks.clone(),
            paths: region.path_count,
        });
        return;
    }
    // Decompose: nested regions first (in declaration order), then every
    // block that belongs to no nested region is measured individually.
    for &child in &region.children {
        visit_region(lowered, child, bound, segments);
    }
    for block in lowered.regions.own_blocks(region_id) {
        segments.push(Segment {
            id: SegmentId(segments.len() as u32),
            kind: SegmentKind::Block(block),
            blocks: vec![block],
            paths: 1,
        });
    }
}

/// A list of CFG edges `(from, to)`.
type EdgeList = Vec<(BlockId, BlockId)>;

/// Entry and exit edges of a segment.
fn segment_edges(lowered: &LoweredFunction, segment: &Segment) -> (EdgeList, EdgeList) {
    match segment.kind {
        SegmentKind::Region(region_id) => {
            let entry = lowered
                .regions
                .entry_edge(&lowered.cfg, region_id)
                .into_iter()
                .collect::<Vec<_>>();
            let entry = if entry.is_empty() {
                // Root region: the entry edge is the edge out of the virtual
                // entry block.
                lowered
                    .cfg
                    .successors(lowered.cfg.entry())
                    .into_iter()
                    .map(|s| (lowered.cfg.entry(), s))
                    .collect()
            } else {
                entry
            };
            let exits = lowered.regions.exit_edges(&lowered.cfg, region_id);
            (entry, exits)
        }
        SegmentKind::Block(block) => {
            let entries = lowered
                .cfg
                .predecessors(block)
                .iter()
                .map(|p| (*p, block))
                .collect();
            let exits = lowered
                .cfg
                .successors(block)
                .into_iter()
                .map(|s| (block, s))
                .collect();
            (entries, exits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_codegen::figure1_function;
    use tmg_minic::parse_function;

    fn plan_for(src: &str, bound: u128) -> (LoweredFunction, PartitionPlan) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let plan = PartitionPlan::compute(&lowered, bound);
        (lowered, plan)
    }

    #[test]
    fn table1_of_the_paper_is_reproduced_exactly() {
        let f = figure1_function(false);
        let lowered = build_cfg(&f);
        let expected: [(u128, usize, u128); 7] = [
            (1, 22, 11),
            (2, 16, 9),
            (3, 16, 9),
            (4, 16, 9),
            (5, 16, 9),
            (6, 2, 6),
            (7, 2, 6),
        ];
        for (bound, ip, m) in expected {
            let plan = PartitionPlan::compute(&lowered, bound);
            assert_eq!(
                (plan.instrumentation_points(), plan.measurements()),
                (ip, m),
                "path bound {bound}"
            );
        }
    }

    #[test]
    fn bound_one_measures_every_unit_individually() {
        let (lowered, plan) = plan_for("void f(int a) { p1(); if (a) { p2(); } p3(); }", 1);
        assert_eq!(plan.segments.len(), lowered.cfg.measurable_units().len());
        assert!(plan.segments.iter().all(|s| s.paths == 1));
    }

    #[test]
    fn large_bound_collapses_the_whole_function() {
        let (_, plan) = plan_for(
            "void f(int a) { if (a) { p1(); } if (a > 1) { p2(); } }",
            1000,
        );
        assert_eq!(plan.segments.len(), 1);
        assert!(plan.segments[0].is_region());
        assert_eq!(plan.instrumentation_points(), 2);
        assert_eq!(plan.measurements(), 4);
    }

    #[test]
    fn segments_partition_the_measurable_units() {
        for bound in [1u128, 2, 3, 6, 100] {
            let f = figure1_function(false);
            let lowered = build_cfg(&f);
            let plan = PartitionPlan::compute(&lowered, bound);
            let mut covered: Vec<BlockId> = plan
                .segments
                .iter()
                .flat_map(|s| s.blocks.iter().copied())
                .collect();
            covered.sort_unstable();
            covered.dedup();
            let mut units = lowered.cfg.measurable_units();
            units.sort_unstable();
            assert_eq!(
                covered, units,
                "bound {bound}: segments must partition the units"
            );
            // Segments must be pairwise disjoint.
            let total: usize = plan.segments.iter().map(|s| s.blocks.len()).sum();
            assert_eq!(total, units.len(), "bound {bound}: no overlap");
        }
    }

    #[test]
    fn measurements_never_increase_with_the_bound() {
        let f = figure1_function(false);
        let lowered = build_cfg(&f);
        let mut last_ip = usize::MAX;
        for bound in 1..=8u128 {
            let plan = PartitionPlan::compute(&lowered, bound);
            assert!(plan.instrumentation_points() <= last_ip);
            last_ip = plan.instrumentation_points();
        }
    }

    #[test]
    fn instrumentation_points_cover_entry_and_exit_edges() {
        let (lowered, plan) = plan_for("void f(int a) { p1(); if (a) { p2(); p3(); } p4(); }", 2);
        let instrumentation = plan.instrumentation(&lowered);
        assert_eq!(instrumentation.len(), plan.segments.len());
        for (seg_id, entries, exits) in &instrumentation {
            let segment = &plan.segments[seg_id.index()];
            assert!(!entries.is_empty(), "{seg_id} needs an entry point");
            for p in entries {
                assert!(segment.blocks.contains(&p.edge.1) || segment.blocks.contains(&p.edge.0));
            }
            for p in exits {
                assert!(segment.blocks.contains(&p.edge.0));
            }
        }
        // Point ids are unique across the plan.
        let mut ids: Vec<u32> = instrumentation
            .iter()
            .flat_map(|(_, e, x)| e.iter().chain(x.iter()).map(|p| p.id.0))
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn from_parts_round_trips_a_computed_plan() {
        for bound in [1u128, 2, 6, 1000] {
            let f = figure1_function(false);
            let lowered = build_cfg(&f);
            let plan = PartitionPlan::compute(&lowered, bound);
            let rebuilt = PartitionPlan::from_parts(
                plan.path_bound,
                plan.segments.clone(),
                plan.indexed_blocks(),
            );
            assert_eq!(plan, rebuilt, "bound {bound}");
        }
    }

    #[test]
    fn segment_of_block_finds_the_covering_segment() {
        let (lowered, plan) = plan_for("void f(int a) { if (a) { p1(); } p2(); }", 1);
        for unit in lowered.cfg.measurable_units() {
            assert!(plan.segment_of_block(unit).is_some());
        }
    }

    #[test]
    fn segment_of_block_index_agrees_with_a_linear_scan() {
        for bound in [1u128, 2, 4, 1000] {
            let f = figure1_function(false);
            let lowered = build_cfg(&f);
            let plan = PartitionPlan::compute(&lowered, bound);
            for block in lowered.cfg.blocks() {
                let indexed = plan.segment_of_block(block.id).map(|s| s.id);
                let scanned = plan
                    .segments
                    .iter()
                    .find(|s| s.blocks.contains(&block.id))
                    .map(|s| s.id);
                assert_eq!(indexed, scanned, "bound {bound}, block {}", block.id);
            }
            // The virtual exit block belongs to no segment.
            assert!(plan.segment_of_block(lowered.cfg.exit()).is_none());
        }
    }
}
