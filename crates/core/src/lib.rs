//! Measurement-based WCET analysis by CFG partitioning and model checking.
//!
//! This crate implements the primary contribution of Wenzel, Rieder, Kirner
//! and Puschner, *"Automatic Timing Model Generation by CFG Partitioning and
//! Model Checking"* (DATE 2005):
//!
//! 1. **CFG partitioning** ([`partition`]) — the control-flow graph of the
//!    analysed function is partitioned into *program segments* following the
//!    abstract syntax tree.  A segment whose number of paths does not exceed
//!    the path bound `b` is measured as a whole (two instrumentation points,
//!    one measurement per path); larger segments are decomposed.
//! 2. **Instrumentation/measurement tradeoff** ([`tradeoff`]) — sweeping `b`
//!    reproduces the curves of Figures 2 and 3.
//! 3. **Test-data generation** ([`testgen`]) — a heuristic (genetic) search
//!    covers most segment paths cheaply; the remaining paths are handed to
//!    the model checker of [`tmg_tsys`], which either returns a witness input
//!    vector or proves the path infeasible.
//! 4. **Run-time measurement** ([`measurement`]) — the instrumented program
//!    runs on the simulated HCS12 target of [`tmg_target`] once per test
//!    vector; cycle-counter readings at the segment boundaries yield the
//!    per-segment maximum observed execution times.
//! 5. **Timing-schema WCET computation** ([`schema`]) — the measured maxima
//!    are combined over the segment structure into a WCET bound for the whole
//!    function.
//!
//! The [`analysis::WcetAnalysis`] type wires the five steps into one call.
//!
//! # Quick start
//!
//! ```
//! use tmg_core::WcetAnalysis;
//! use tmg_minic::parse_function;
//!
//! let f = parse_function(
//!     "int f(char a __range(0, 3)) {
//!          int r; r = 0;
//!          if (a == 0) { slow_path(); r = 2; } else { fast_path(); r = 1; }
//!          return r;
//!      }",
//! )?;
//! let report = WcetAnalysis::new(4).analyse(&f)?;
//! assert!(report.wcet_bound > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod measurement;
pub mod module;
pub mod partition;
pub mod pipeline;
pub mod schema;
pub mod testgen;
pub mod tradeoff;

pub use analysis::{AnalysisError, AnalysisReport, WcetAnalysis};
pub use measurement::{MeasurementCampaign, MeasurementError, SegmentTiming};
pub use module::{FunctionSummary, ModuleAnalysis, ModuleReport, RootBound};
pub use partition::{PartitionPlan, Segment, SegmentId, SegmentKind};
pub use pipeline::{ArtifactStore, Stage, StageStats, StoreStats, TieredStore};
pub use testgen::{
    CoverageGoal, CoverageStatus, GeneratorKind, GoalKind, HeuristicConfig, HybridGenerator,
    TestSuite,
};
pub use tradeoff::{
    log_spaced_bounds, sweep_path_bounds, sweep_path_bounds_reference, sweep_with_counts,
    TradeoffPoint,
};
