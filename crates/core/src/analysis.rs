//! The end-to-end WCET analysis pipeline.
//!
//! [`WcetAnalysis`] is a thin configuration wrapper over the staged,
//! content-addressed pipeline of [`crate::pipeline`]: every entry point runs
//! the same stage chain (lower → partition → prepare model → generate →
//! measure → bound) through an [`ArtifactStore`].  Without an attached store
//! each call uses a private transient one — identical behaviour and cost to
//! the historical free-running pipeline; with
//! [`WcetAnalysis::with_store`] artifacts are shared across calls, bounds
//! and threads, so repeated analyses reuse instead of recompute.

use crate::measurement::MeasurementCampaign;
use crate::partition::PartitionPlan;
use crate::pipeline::{analyse_staged, analyse_staged_detailed, ArtifactStore, Stage, TieredStore};
use crate::testgen::{HybridGenerator, TestSuite};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use tmg_minic::ast::Function;
use tmg_minic::value::InputVector;
use tmg_target::CostModel;

/// Classifies an [`AnalysisError`] for callers that must tell genuine
/// pipeline faults apart from cooperative cancellation — the analysis
/// service maps the kind onto its typed JSON error vocabulary (`fault`
/// vs `deadline_exceeded`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisErrorKind {
    /// A real pipeline failure (e.g. a measurement run faulted on the
    /// target).
    Fault,
    /// The request's deadline expired (or its caller cancelled it) before
    /// the analysis completed.  Nothing was computed, published or cached
    /// under the fired token — re-running the same request without a
    /// deadline yields the normal result.
    Cancelled,
}

/// Error raised by the analysis pipeline, attributed to the stage and
/// function it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// Name of the function being analysed.
    pub function: String,
    /// What went wrong.
    pub message: String,
    /// Fault or cooperative cancellation.
    pub kind: AnalysisErrorKind,
}

impl AnalysisError {
    /// Creates an error attributed to `stage` and `function`.
    pub fn new(
        stage: Stage,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> AnalysisError {
        AnalysisError {
            stage,
            function: function.into(),
            message: message.into(),
            kind: AnalysisErrorKind::Fault,
        }
    }

    /// Creates a cancellation error: the deadline fired while `stage` was
    /// the next (or current) stage of `function`'s pipeline.
    pub fn cancelled(stage: Stage, function: impl Into<String>) -> AnalysisError {
        AnalysisError {
            stage,
            function: function.into(),
            message: "deadline expired or request cancelled before the analysis completed"
                .to_string(),
            kind: AnalysisErrorKind::Cancelled,
        }
    }

    /// Whether this error is a cooperative cancellation rather than a fault.
    pub fn is_cancelled(&self) -> bool {
        self.kind == AnalysisErrorKind::Cancelled
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wcet analysis error in stage `{}` of `{}`: {}",
            self.stage, self.function, self.message
        )
    }
}

impl std::error::Error for AnalysisError {}

/// Summary of one complete analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Analysed function name.
    pub function: String,
    /// Path bound used for the partitioning.
    pub path_bound: u128,
    /// Number of program segments.
    pub segments: usize,
    /// Instrumentation points `ip` (two per segment).
    pub instrumentation_points: usize,
    /// Measurements `m` (one per segment path).
    pub measurements: u128,
    /// Coverage goals generated for the measurement campaign.
    pub goals: usize,
    /// Goals covered by the heuristic phase.
    pub heuristic_covered: usize,
    /// Goals covered by the model checker.
    pub checker_covered: usize,
    /// Goals proven infeasible.
    pub infeasible: usize,
    /// Goals left unresolved.
    pub unknown: usize,
    /// Number of instrumented measurement runs.
    pub measurement_runs: usize,
    /// The computed WCET bound in target cycles.
    pub wcet_bound: u64,
    /// Exhaustively measured end-to-end maximum, when an input space was
    /// supplied (the case-study comparison of Section 4).
    pub exhaustive_max: Option<u64>,
}

impl AnalysisReport {
    /// Pessimism of the bound relative to the exhaustive maximum
    /// (`bound / exhaustive`), when available.
    pub fn pessimism(&self) -> Option<f64> {
        self.exhaustive_max
            .map(|e| self.wcet_bound as f64 / e.max(1) as f64)
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WCET analysis of `{}`", self.function)?;
        writeln!(
            f,
            "  path bound b = {}  →  {} segments, ip = {}, m = {}",
            self.path_bound, self.segments, self.instrumentation_points, self.measurements
        )?;
        writeln!(
            f,
            "  test data: {} goals, {} heuristic + {} model checker, {} infeasible, {} unknown",
            self.goals, self.heuristic_covered, self.checker_covered, self.infeasible, self.unknown
        )?;
        writeln!(f, "  measurement runs: {}", self.measurement_runs)?;
        write!(f, "  WCET bound: {} cycles", self.wcet_bound)?;
        if let Some(e) = self.exhaustive_max {
            write!(
                f,
                " (exhaustive maximum {e} cycles, pessimism {:.2}×)",
                self.pessimism().unwrap_or(1.0)
            )?;
        }
        Ok(())
    }
}

/// The complete measurement-based WCET analysis of the paper: partition the
/// CFG, generate test data, measure on the target, combine with the timing
/// schema.
#[derive(Debug, Clone)]
pub struct WcetAnalysis {
    /// Path bound `b` for the partitioning step.
    pub path_bound: u128,
    /// Cost model of the simulated target.
    pub cost_model: CostModel,
    /// Test-data generator (heuristic + model checker).
    pub generator: HybridGenerator,
    /// Artifact store shared across calls, if attached.  Any [`TieredStore`]
    /// tier works: the in-memory [`ArtifactStore`] or the persistent
    /// disk-backed store of the `tmg-service` crate.
    store: Option<Arc<dyn TieredStore>>,
}

impl WcetAnalysis {
    /// Creates an analysis with the given path bound and default settings.
    pub fn new(path_bound: u128) -> WcetAnalysis {
        WcetAnalysis {
            path_bound,
            cost_model: CostModel::hcs12(),
            generator: HybridGenerator::new(),
            store: None,
        }
    }

    /// Replaces the target cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> WcetAnalysis {
        self.cost_model = cost_model;
        self
    }

    /// Attaches a shared artifact store tier: subsequent analyses reuse every
    /// stage whose content-hashed inputs are unchanged (across calls, path
    /// bounds and `analyse_all` worker threads — and, with a persistent tier,
    /// across processes).  Without a store each call runs on a private
    /// transient in-memory store.
    pub fn with_store(mut self, store: Arc<dyn TieredStore>) -> WcetAnalysis {
        self.store = Some(store);
        self
    }

    /// Installs a cooperative cancellation token: the stage chain polls it
    /// at stage boundaries and the model checker at shard-claim boundaries,
    /// so a fired deadline surfaces as a typed
    /// [`AnalysisErrorKind::Cancelled`] error instead of a weaker (and
    /// unsound-to-cache) result.  Stages are atomic with respect to
    /// cancellation — each one either completes (and may be cached, it is
    /// correct) or unwinds with nothing published.  The token is excluded
    /// from every artifact key, so deadlines never fragment the cache.
    pub fn with_cancel(mut self, cancel: tmg_tsys::CancelToken) -> WcetAnalysis {
        self.generator.checker.cancel = cancel;
        self
    }

    /// The attached store tier, if any (the module-level driver shares it
    /// across per-function analyses and summary probes).
    pub(crate) fn store_tier(&self) -> Option<Arc<dyn TieredStore>> {
        self.store.clone()
    }

    /// Runs the full pipeline on `function`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when a measurement run faults on the target.
    pub fn analyse(&self, function: &Function) -> Result<AnalysisReport, AnalysisError> {
        self.run(function, None)
    }

    /// Runs the full pipeline on every function of a module, in input order.
    ///
    /// This is where the toolchain's parallelism lives: functions are
    /// analysed concurrently (each function's residual checker queries are
    /// already batched into one shared exploration by the generator, so
    /// fanning out *within* a function would only add pool overhead).  With
    /// fewer than two functions, or when the generator is configured
    /// sequential, the fan-out is skipped entirely.  An attached store is
    /// shared by all workers.
    pub fn analyse_all(
        &self,
        functions: &[Function],
    ) -> Vec<Result<AnalysisReport, AnalysisError>> {
        if self.generator.parallel && functions.len() > 1 {
            // Workers continue the caller's trace (if any), so a traced
            // request's per-function spans land under its request span no
            // matter which pool thread ran them.
            let ctx = tmg_obs::current_context();
            functions
                .par_iter()
                .map(|f| {
                    let _trace = tmg_obs::enter_trace(ctx);
                    self.analyse(f)
                })
                .collect()
        } else {
            functions.iter().map(|f| self.analyse(f)).collect()
        }
    }

    /// Runs the full pipeline and additionally determines the exact WCET by
    /// exhaustive end-to-end measurement over `input_space` (feasible only
    /// for small input spaces, as in the paper's case study).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when a measurement run faults on the target.
    pub fn analyse_with_exhaustive(
        &self,
        function: &Function,
        input_space: &[InputVector],
    ) -> Result<AnalysisReport, AnalysisError> {
        self.run(function, Some(input_space))
    }

    /// Exposes the intermediate artefacts (plan, suite, campaign) for callers
    /// that want more than the summary report, such as the benchmark harness.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when a measurement run faults on the target.
    pub fn analyse_detailed(
        &self,
        function: &Function,
    ) -> Result<
        (
            PartitionPlan,
            TestSuite,
            MeasurementCampaign,
            AnalysisReport,
        ),
        AnalysisError,
    > {
        let staged = tmg_tsys::catch_cancel(|| match &self.store {
            None => analyse_staged_detailed(&ArtifactStore::new(), self, function, None),
            Some(tier) => match tier.as_memory_store() {
                Some(memory) => analyse_staged_detailed(memory, self, function, None),
                None => analyse_staged_detailed(&**tier, self, function, None),
            },
        })
        .unwrap_or_else(|_| Err(AnalysisError::cancelled(Stage::Testgen, &function.name)))?;
        Ok((
            staged.partition.plan.clone(),
            staged.suite.suite.clone(),
            staged.campaign.campaign.clone(),
            staged.report,
        ))
    }

    /// Dispatches the staged run to the statically-typed in-memory path
    /// whenever the tier is (or wraps nothing but) the plain
    /// [`ArtifactStore`] — the stage chain then monomorphises and inlines —
    /// and to the dynamic path for every other tier.
    fn run(
        &self,
        function: &Function,
        input_space: Option<&[InputVector]>,
    ) -> Result<AnalysisReport, AnalysisError> {
        // A fired deadline unwinds out of the model checker (the only stage
        // component with in-flight checkpoints); catching it here converts
        // the unwind into a typed error and attributes it to the test
        // generation stage, which hosts the checker.
        tmg_tsys::catch_cancel(|| match &self.store {
            None => analyse_staged(&ArtifactStore::new(), self, function, input_space),
            Some(tier) => match tier.as_memory_store() {
                Some(memory) => analyse_staged(memory, self, function, input_space),
                None => analyse_staged(&**tier, self, function, input_space),
            },
        })
        .unwrap_or_else(|_| Err(AnalysisError::cancelled(Stage::Testgen, &function.name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    #[test]
    fn pipeline_produces_a_sound_bound_on_a_small_controller() {
        let src = r#"
            int limiter(char demand __range(0, 10), bool enabled) {
                int out;
                out = 0;
                if (enabled) {
                    if (demand > 5) { saturate(); out = 5; } else { pass(); out = demand; }
                } else {
                    disabled(); out = 0;
                }
                return out;
            }
        "#;
        let f = parse_function(src).expect("parse");
        let space: Vec<InputVector> = (0..=10)
            .flat_map(|d| {
                (0..=1).map(move |e| InputVector::new().with("demand", d).with("enabled", e))
            })
            .collect();
        let report = WcetAnalysis::new(2)
            .analyse_with_exhaustive(&f, &space)
            .expect("analysis");
        let exhaustive = report.exhaustive_max.expect("exhaustive");
        assert!(report.wcet_bound >= exhaustive);
        assert!(report.pessimism().expect("pessimism") < 2.0);
        assert!(report.to_string().contains("WCET bound"));
    }

    #[test]
    fn path_bound_controls_instrumentation_point_count() {
        let src = "void f(char a __range(0, 1)) { if (a) { x(); } if (!a) { y(); } z(); }";
        let f = parse_function(src).expect("parse");
        let fine = WcetAnalysis::new(1).analyse(&f).expect("fine");
        let coarse = WcetAnalysis::new(100).analyse(&f).expect("coarse");
        assert!(fine.instrumentation_points > coarse.instrumentation_points);
        assert_eq!(coarse.instrumentation_points, 2);
        assert!(fine.wcet_bound >= coarse.wcet_bound);
    }

    #[test]
    fn analyse_all_matches_one_by_one_analysis() {
        let sources = [
            "void f1(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }",
            "void f2(char b __range(0, 4)) { if (b > 2) { p(); } if (b < 1) { q(); } }",
            "void f3(char c __range(0, 1)) { if (c) { r(); } s(); }",
        ];
        let functions: Vec<Function> = sources
            .iter()
            .map(|s| parse_function(s).expect("parse"))
            .collect();
        let analysis = WcetAnalysis::new(4);
        let fanned = analysis.analyse_all(&functions);
        assert_eq!(fanned.len(), functions.len());
        for (f, report) in functions.iter().zip(&fanned) {
            assert_eq!(
                report.as_ref().expect("analysis"),
                &analysis.analyse(f).expect("analysis")
            );
        }
    }

    #[test]
    fn analyse_all_with_a_shared_store_matches_the_storeless_path() {
        let sources = [
            "void f1(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }",
            "void f2(char b __range(0, 4)) { if (b > 2) { p(); } if (b < 1) { q(); } }",
        ];
        let functions: Vec<Function> = sources
            .iter()
            .map(|s| parse_function(s).expect("parse"))
            .collect();
        let plain = WcetAnalysis::new(4);
        let stored = WcetAnalysis::new(4).with_store(Arc::new(ArtifactStore::new()));
        for (a, b) in plain
            .analyse_all(&functions)
            .into_iter()
            .zip(stored.analyse_all(&functions))
        {
            assert_eq!(a.expect("plain"), b.expect("stored"));
        }
        // A second fan-out over the shared store must return identical
        // reports again.
        for (f, report) in functions.iter().zip(stored.analyse_all(&functions)) {
            assert_eq!(report.expect("cached"), plain.analyse(f).expect("plain"));
        }
    }

    #[test]
    fn detailed_analysis_exposes_the_intermediate_artefacts() {
        let f = parse_function("void f(char a __range(0, 1)) { if (a) { x(); } }").expect("parse");
        let (plan, suite, campaign, report) =
            WcetAnalysis::new(1).analyse_detailed(&f).expect("analysis");
        assert_eq!(plan.segments.len(), report.segments);
        assert_eq!(suite.goal_count(), report.goals);
        assert_eq!(campaign.timings.len(), plan.segments.len());
    }

    #[test]
    fn analysis_error_names_stage_and_function() {
        let e = AnalysisError::new(Stage::Measure, "wiper", "run faulted");
        assert_eq!(
            e.to_string(),
            "wcet analysis error in stage `measure` of `wiper`: run faulted"
        );
        assert_eq!(e.stage, Stage::Measure);
        assert_eq!(e.kind, AnalysisErrorKind::Fault);
        assert!(!e.is_cancelled());
    }

    #[test]
    fn a_fired_token_yields_a_typed_cancellation_error_and_poisons_nothing() {
        let f =
            parse_function("void f(char a __range(0, 3)) { if (a > 1) { x(); } }").expect("parse");
        let token = tmg_tsys::CancelToken::new();
        token.cancel();
        let store = Arc::new(ArtifactStore::new());
        let err = WcetAnalysis::new(2)
            .with_store(store.clone())
            .with_cancel(token)
            .analyse(&f)
            .expect_err("pre-fired token must cancel the analysis");
        assert!(err.is_cancelled(), "kind must be Cancelled: {err:?}");
        assert_eq!(err.kind, AnalysisErrorKind::Cancelled);
        // The cancelled run left nothing wrong behind: the same store now
        // serves the normal result, bit-identical to the storeless pipeline.
        let warm = WcetAnalysis::new(2)
            .with_store(store)
            .analyse(&f)
            .expect("uncancelled re-run");
        assert_eq!(warm, WcetAnalysis::new(2).analyse(&f).expect("plain"));
    }

    #[test]
    fn an_inert_token_changes_nothing() {
        let f =
            parse_function("void f(char a __range(0, 3)) { if (a > 1) { x(); } }").expect("parse");
        let plain = WcetAnalysis::new(2).analyse(&f).expect("plain");
        let with_token = WcetAnalysis::new(2)
            .with_cancel(tmg_tsys::CancelToken::none())
            .analyse(&f)
            .expect("inert token");
        assert_eq!(plain, with_token);
        // An unfired *live* token (a generous deadline) is also invisible.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let with_deadline = WcetAnalysis::new(2)
            .with_cancel(tmg_tsys::CancelToken::with_deadline(deadline))
            .analyse(&f)
            .expect("generous deadline");
        assert_eq!(plain, with_deadline);
    }
}
