//! The end-to-end WCET analysis pipeline.

use crate::measurement::{exhaustive_end_to_end, MeasurementCampaign};
use crate::partition::PartitionPlan;
use crate::schema::compute_wcet;
use crate::testgen::{HybridGenerator, TestSuite};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use tmg_cfg::build_cfg;
use tmg_minic::ast::Function;
use tmg_minic::value::InputVector;
use tmg_target::CostModel;

/// Error raised by the analysis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError(String);

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wcet analysis error: {}", self.0)
    }
}

impl std::error::Error for AnalysisError {}

/// Summary of one complete analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Analysed function name.
    pub function: String,
    /// Path bound used for the partitioning.
    pub path_bound: u128,
    /// Number of program segments.
    pub segments: usize,
    /// Instrumentation points `ip` (two per segment).
    pub instrumentation_points: usize,
    /// Measurements `m` (one per segment path).
    pub measurements: u128,
    /// Coverage goals generated for the measurement campaign.
    pub goals: usize,
    /// Goals covered by the heuristic phase.
    pub heuristic_covered: usize,
    /// Goals covered by the model checker.
    pub checker_covered: usize,
    /// Goals proven infeasible.
    pub infeasible: usize,
    /// Goals left unresolved.
    pub unknown: usize,
    /// Number of instrumented measurement runs.
    pub measurement_runs: usize,
    /// The computed WCET bound in target cycles.
    pub wcet_bound: u64,
    /// Exhaustively measured end-to-end maximum, when an input space was
    /// supplied (the case-study comparison of Section 4).
    pub exhaustive_max: Option<u64>,
}

impl AnalysisReport {
    /// Pessimism of the bound relative to the exhaustive maximum
    /// (`bound / exhaustive`), when available.
    pub fn pessimism(&self) -> Option<f64> {
        self.exhaustive_max
            .map(|e| self.wcet_bound as f64 / e.max(1) as f64)
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WCET analysis of `{}`", self.function)?;
        writeln!(
            f,
            "  path bound b = {}  →  {} segments, ip = {}, m = {}",
            self.path_bound, self.segments, self.instrumentation_points, self.measurements
        )?;
        writeln!(
            f,
            "  test data: {} goals, {} heuristic + {} model checker, {} infeasible, {} unknown",
            self.goals, self.heuristic_covered, self.checker_covered, self.infeasible, self.unknown
        )?;
        writeln!(f, "  measurement runs: {}", self.measurement_runs)?;
        write!(f, "  WCET bound: {} cycles", self.wcet_bound)?;
        if let Some(e) = self.exhaustive_max {
            write!(
                f,
                " (exhaustive maximum {e} cycles, pessimism {:.2}×)",
                self.pessimism().unwrap_or(1.0)
            )?;
        }
        Ok(())
    }
}

/// The complete measurement-based WCET analysis of the paper: partition the
/// CFG, generate test data, measure on the target, combine with the timing
/// schema.
#[derive(Debug, Clone)]
pub struct WcetAnalysis {
    /// Path bound `b` for the partitioning step.
    pub path_bound: u128,
    /// Cost model of the simulated target.
    pub cost_model: CostModel,
    /// Test-data generator (heuristic + model checker).
    pub generator: HybridGenerator,
}

impl WcetAnalysis {
    /// Creates an analysis with the given path bound and default settings.
    pub fn new(path_bound: u128) -> WcetAnalysis {
        WcetAnalysis {
            path_bound,
            cost_model: CostModel::hcs12(),
            generator: HybridGenerator::new(),
        }
    }

    /// Replaces the target cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> WcetAnalysis {
        self.cost_model = cost_model;
        self
    }

    /// Runs the full pipeline on `function`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when a measurement run faults on the target.
    pub fn analyse(&self, function: &Function) -> Result<AnalysisReport, AnalysisError> {
        self.run(function, None)
    }

    /// Runs the full pipeline on every function of a module, in input order.
    ///
    /// This is where the toolchain's parallelism lives: functions are
    /// analysed concurrently (each function's residual checker queries are
    /// already batched into one shared exploration by the generator, so
    /// fanning out *within* a function would only add pool overhead).  With
    /// fewer than two functions, or when the generator is configured
    /// sequential, the fan-out is skipped entirely.
    pub fn analyse_all(
        &self,
        functions: &[Function],
    ) -> Vec<Result<AnalysisReport, AnalysisError>> {
        if self.generator.parallel && functions.len() > 1 {
            functions.par_iter().map(|f| self.analyse(f)).collect()
        } else {
            functions.iter().map(|f| self.analyse(f)).collect()
        }
    }

    /// Runs the full pipeline and additionally determines the exact WCET by
    /// exhaustive end-to-end measurement over `input_space` (feasible only
    /// for small input spaces, as in the paper's case study).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when a measurement run faults on the target.
    pub fn analyse_with_exhaustive(
        &self,
        function: &Function,
        input_space: &[InputVector],
    ) -> Result<AnalysisReport, AnalysisError> {
        self.run(function, Some(input_space))
    }

    /// Exposes the intermediate artefacts (plan, suite, campaign) for callers
    /// that want more than the summary report, such as the benchmark harness.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when a measurement run faults on the target.
    pub fn analyse_detailed(
        &self,
        function: &Function,
    ) -> Result<
        (
            PartitionPlan,
            TestSuite,
            MeasurementCampaign,
            AnalysisReport,
        ),
        AnalysisError,
    > {
        let lowered = build_cfg(function);
        let plan = PartitionPlan::compute(&lowered, self.path_bound);
        let suite = self.generator.generate(function, &lowered, &plan);
        let campaign = MeasurementCampaign::run(
            function,
            &lowered,
            &plan,
            &suite.vectors(),
            &self.cost_model,
        )
        .map_err(AnalysisError)?;
        let report = self.report(function, &plan, &suite, &campaign, &lowered, None);
        Ok((plan, suite, campaign, report))
    }

    fn run(
        &self,
        function: &Function,
        input_space: Option<&[InputVector]>,
    ) -> Result<AnalysisReport, AnalysisError> {
        let lowered = build_cfg(function);
        let plan = PartitionPlan::compute(&lowered, self.path_bound);
        let suite = self.generator.generate(function, &lowered, &plan);
        let campaign = MeasurementCampaign::run(
            function,
            &lowered,
            &plan,
            &suite.vectors(),
            &self.cost_model,
        )
        .map_err(AnalysisError)?;
        let exhaustive = match input_space {
            Some(space) => Some(
                exhaustive_end_to_end(function, &lowered, space, &self.cost_model)
                    .map_err(AnalysisError)?
                    .0,
            ),
            None => None,
        };
        Ok(self.report(function, &plan, &suite, &campaign, &lowered, exhaustive))
    }

    fn report(
        &self,
        function: &Function,
        plan: &PartitionPlan,
        suite: &TestSuite,
        campaign: &MeasurementCampaign,
        lowered: &tmg_cfg::LoweredFunction,
        exhaustive_max: Option<u64>,
    ) -> AnalysisReport {
        let wcet_bound = compute_wcet(lowered, plan, &campaign.worst_case_map());
        AnalysisReport {
            function: function.name.clone(),
            path_bound: self.path_bound,
            segments: plan.segments.len(),
            instrumentation_points: plan.instrumentation_points(),
            measurements: plan.measurements(),
            goals: suite.goal_count(),
            heuristic_covered: suite.heuristic_covered(),
            checker_covered: suite.checker_covered(),
            infeasible: suite.infeasible_count(),
            unknown: suite.unknown_count(),
            measurement_runs: campaign.runs,
            wcet_bound,
            exhaustive_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    #[test]
    fn pipeline_produces_a_sound_bound_on_a_small_controller() {
        let src = r#"
            int limiter(char demand __range(0, 10), bool enabled) {
                int out;
                out = 0;
                if (enabled) {
                    if (demand > 5) { saturate(); out = 5; } else { pass(); out = demand; }
                } else {
                    disabled(); out = 0;
                }
                return out;
            }
        "#;
        let f = parse_function(src).expect("parse");
        let space: Vec<InputVector> = (0..=10)
            .flat_map(|d| {
                (0..=1).map(move |e| InputVector::new().with("demand", d).with("enabled", e))
            })
            .collect();
        let report = WcetAnalysis::new(2)
            .analyse_with_exhaustive(&f, &space)
            .expect("analysis");
        let exhaustive = report.exhaustive_max.expect("exhaustive");
        assert!(report.wcet_bound >= exhaustive);
        assert!(report.pessimism().expect("pessimism") < 2.0);
        assert!(report.to_string().contains("WCET bound"));
    }

    #[test]
    fn path_bound_controls_instrumentation_point_count() {
        let src = "void f(char a __range(0, 1)) { if (a) { x(); } if (!a) { y(); } z(); }";
        let f = parse_function(src).expect("parse");
        let fine = WcetAnalysis::new(1).analyse(&f).expect("fine");
        let coarse = WcetAnalysis::new(100).analyse(&f).expect("coarse");
        assert!(fine.instrumentation_points > coarse.instrumentation_points);
        assert_eq!(coarse.instrumentation_points, 2);
        assert!(fine.wcet_bound >= coarse.wcet_bound);
    }

    #[test]
    fn analyse_all_matches_one_by_one_analysis() {
        let sources = [
            "void f1(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }",
            "void f2(char b __range(0, 4)) { if (b > 2) { p(); } if (b < 1) { q(); } }",
            "void f3(char c __range(0, 1)) { if (c) { r(); } s(); }",
        ];
        let functions: Vec<Function> = sources
            .iter()
            .map(|s| parse_function(s).expect("parse"))
            .collect();
        let analysis = WcetAnalysis::new(4);
        let fanned = analysis.analyse_all(&functions);
        assert_eq!(fanned.len(), functions.len());
        for (f, report) in functions.iter().zip(&fanned) {
            assert_eq!(
                report.as_ref().expect("analysis"),
                &analysis.analyse(f).expect("analysis")
            );
        }
    }

    #[test]
    fn detailed_analysis_exposes_the_intermediate_artefacts() {
        let f = parse_function("void f(char a __range(0, 1)) { if (a) { x(); } }").expect("parse");
        let (plan, suite, campaign, report) =
            WcetAnalysis::new(1).analyse_detailed(&f).expect("analysis");
        assert_eq!(plan.segments.len(), report.segments);
        assert_eq!(suite.goal_count(), report.goals);
        assert_eq!(campaign.timings.len(), plan.segments.len());
    }
}
