//! Scalar types of the mini-C language.
//!
//! The paper's Section 3.1 emphasises that the number of *bits* used to encode
//! each variable dominates the model-checking state space (a boolean stored as
//! a 16-bit `int` wastes 15 bits).  The type layer therefore exposes the bit
//! width of every type, and the variable-range-analysis optimisation narrows
//! declared types to the smallest width that fits the observed range.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar type of a mini-C variable or expression.
///
/// Widths follow the 16-bit HCS12 compilation model used in the paper:
/// `int` is 16 bits, `char` is 8 bits and `long` is 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// Boolean, one bit of information (stored as a machine byte).
    Bool,
    /// Signed 8-bit integer (`char`).
    I8,
    /// Unsigned 8-bit integer (`unsigned char`).
    U8,
    /// Signed 16-bit integer (`int`).
    I16,
    /// Unsigned 16-bit integer (`unsigned int`).
    U16,
    /// Signed 32-bit integer (`long`).
    I32,
}

impl Ty {
    /// Number of bits needed to represent a value of this type in the model
    /// checker's state vector.
    ///
    /// ```
    /// use tmg_minic::Ty;
    /// assert_eq!(Ty::Bool.bits(), 1);
    /// assert_eq!(Ty::I16.bits(), 16);
    /// ```
    pub fn bits(self) -> u32 {
        match self {
            Ty::Bool => 1,
            Ty::I8 | Ty::U8 => 8,
            Ty::I16 | Ty::U16 => 16,
            Ty::I32 => 32,
        }
    }

    /// Size in bytes when stored in target memory (booleans occupy one byte).
    pub fn storage_bytes(self) -> u32 {
        match self {
            Ty::Bool | Ty::I8 | Ty::U8 => 1,
            Ty::I16 | Ty::U16 => 2,
            Ty::I32 => 4,
        }
    }

    /// Whether the type is signed.
    pub fn is_signed(self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32)
    }

    /// Inclusive range of representable values.
    ///
    /// ```
    /// use tmg_minic::Ty;
    /// assert_eq!(Ty::U8.value_range(), (0, 255));
    /// assert_eq!(Ty::I8.value_range(), (-128, 127));
    /// assert_eq!(Ty::Bool.value_range(), (0, 1));
    /// ```
    pub fn value_range(self) -> (i64, i64) {
        match self {
            Ty::Bool => (0, 1),
            Ty::I8 => (i64::from(i8::MIN), i64::from(i8::MAX)),
            Ty::U8 => (0, i64::from(u8::MAX)),
            Ty::I16 => (i64::from(i16::MIN), i64::from(i16::MAX)),
            Ty::U16 => (0, i64::from(u16::MAX)),
            Ty::I32 => (i64::from(i32::MIN), i64::from(i32::MAX)),
        }
    }

    /// Smallest mini-C type able to hold every value in `lo..=hi`.
    ///
    /// Used by the variable-range-analysis optimisation: declarations whose
    /// observed range fits into a narrower type are re-encoded with that type.
    ///
    /// ```
    /// use tmg_minic::Ty;
    /// assert_eq!(Ty::smallest_for_range(0, 1), Ty::Bool);
    /// assert_eq!(Ty::smallest_for_range(0, 200), Ty::U8);
    /// assert_eq!(Ty::smallest_for_range(-5, 5), Ty::I8);
    /// assert_eq!(Ty::smallest_for_range(-40000, 40000), Ty::I32);
    /// ```
    pub fn smallest_for_range(lo: i64, hi: i64) -> Ty {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let fits = |ty: Ty| {
            let (tlo, thi) = ty.value_range();
            tlo <= lo && hi <= thi
        };
        for ty in [Ty::Bool, Ty::U8, Ty::I8, Ty::U16, Ty::I16, Ty::I32] {
            if fits(ty) {
                return ty;
            }
        }
        Ty::I32
    }

    /// Wraps `v` into the representable range of this type using two's
    /// complement semantics (the behaviour of the HCS12 C compiler).
    ///
    /// ```
    /// use tmg_minic::Ty;
    /// assert_eq!(Ty::U8.wrap(256), 0);
    /// assert_eq!(Ty::I8.wrap(128), -128);
    /// assert_eq!(Ty::Bool.wrap(7), 1);
    /// ```
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            Ty::Bool => i64::from(v != 0),
            Ty::I8 => i64::from(v as i8),
            Ty::U8 => i64::from(v as u8),
            Ty::I16 => i64::from(v as i16),
            Ty::U16 => i64::from(v as u16),
            Ty::I32 => i64::from(v as i32),
        }
    }

    /// The C keyword spelling of this type used by the pretty printer.
    pub fn keyword(self) -> &'static str {
        match self {
            Ty::Bool => "bool",
            Ty::I8 => "char",
            Ty::U8 => "unsigned char",
            Ty::I16 => "int",
            Ty::U16 => "unsigned int",
            Ty::I32 => "long",
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_storage_are_consistent() {
        for ty in [Ty::Bool, Ty::I8, Ty::U8, Ty::I16, Ty::U16, Ty::I32] {
            assert!(ty.bits() <= ty.storage_bytes() * 8);
        }
    }

    #[test]
    fn value_range_is_ordered() {
        for ty in [Ty::Bool, Ty::I8, Ty::U8, Ty::I16, Ty::U16, Ty::I32] {
            let (lo, hi) = ty.value_range();
            assert!(lo < hi, "{ty:?}");
        }
    }

    #[test]
    fn smallest_for_range_prefers_narrow_types() {
        assert_eq!(Ty::smallest_for_range(0, 0), Ty::Bool);
        assert_eq!(Ty::smallest_for_range(1, 1), Ty::Bool);
        assert_eq!(Ty::smallest_for_range(0, 2), Ty::U8);
        assert_eq!(Ty::smallest_for_range(-1, 1), Ty::I8);
        assert_eq!(Ty::smallest_for_range(0, 1000), Ty::U16);
        assert_eq!(Ty::smallest_for_range(-1000, 1000), Ty::I16);
        assert_eq!(Ty::smallest_for_range(0, 70000), Ty::I32);
    }

    #[test]
    fn smallest_for_range_accepts_reversed_bounds() {
        assert_eq!(Ty::smallest_for_range(5, -5), Ty::I8);
    }

    #[test]
    fn wrap_matches_twos_complement() {
        assert_eq!(Ty::I16.wrap(32768), -32768);
        assert_eq!(Ty::U16.wrap(-1), 65535);
        assert_eq!(Ty::I32.wrap(1 << 40), 0);
        assert_eq!(Ty::Bool.wrap(-3), 1);
        assert_eq!(Ty::Bool.wrap(0), 0);
    }

    #[test]
    fn display_uses_c_keywords() {
        assert_eq!(Ty::I16.to_string(), "int");
        assert_eq!(Ty::U8.to_string(), "unsigned char");
    }
}
