//! Pretty printer: turns an AST back into C-like source text.
//!
//! Generated programs (wiper-control case study, TargetLink-style automotive
//! code) are built directly as ASTs; the pretty printer lets users inspect
//! them, and round-tripping through [`crate::parse_program`] is used as a
//! property test of parser/printer consistency.

use crate::ast::{Block, Expr, Function, Program, Stmt, UnOp};
use std::fmt::Write;

/// Renders a whole program as C-like source.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&function_to_string(f));
    }
    out
}

/// Renders a single function definition.
pub fn function_to_string(function: &Function) -> String {
    let mut out = String::new();
    let ret = function
        .ret_ty
        .map(|t| t.keyword().to_owned())
        .unwrap_or_else(|| "void".to_owned());
    let params = function
        .params
        .iter()
        .map(|p| {
            let mut s = format!("{} {}", p.ty.keyword(), p.name);
            if let Some((lo, hi)) = p.range {
                let _ = write!(s, " __range({lo}, {hi})");
            }
            s
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "{ret} {}({params}) {{", function.name);
    for local in &function.locals {
        let mut line = format!("    {} {}", local.ty.keyword(), local.name);
        if let Some((lo, hi)) = local.range {
            let _ = write!(line, " __range({lo}, {hi})");
        }
        if let Some(init) = &local.init {
            let _ = write!(line, " = {}", expr_to_string(init));
        }
        line.push(';');
        let _ = writeln!(out, "{line}");
    }
    write_block(&mut out, &function.body, 1);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, block: &Block, level: usize) {
    for stmt in &block.stmts {
        write_stmt(out, stmt, level);
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Assign { target, value, .. } => {
            indent(out, level);
            let _ = writeln!(out, "{target} = {};", expr_to_string(value));
        }
        Stmt::Call { callee, args, .. } => {
            indent(out, level);
            let args = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "{callee}({args});");
        }
        Stmt::Return { value, .. } => {
            indent(out, level);
            match value {
                Some(v) => {
                    let _ = writeln!(out, "return {};", expr_to_string(v));
                }
                None => {
                    let _ = writeln!(out, "return;");
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            write_block(out, then_branch, level + 1);
            indent(out, level);
            match else_branch {
                Some(e) => {
                    out.push_str("} else {\n");
                    write_block(out, e, level + 1);
                    indent(out, level);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::Switch {
            selector,
            cases,
            default,
            ..
        } => {
            indent(out, level);
            let _ = writeln!(out, "switch ({}) {{", expr_to_string(selector));
            for case in cases {
                indent(out, level + 1);
                let _ = writeln!(out, "case {}:", case.value);
                write_block(out, &case.body, level + 2);
                indent(out, level + 2);
                out.push_str("break;\n");
            }
            if let Some(d) = default {
                indent(out, level + 1);
                out.push_str("default:\n");
                write_block(out, d, level + 2);
                indent(out, level + 2);
                out.push_str("break;\n");
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::While {
            cond, bound, body, ..
        } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) __bound({bound}) {{", expr_to_string(cond));
            write_block(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Renders an expression with full parenthesisation (unambiguous and easy to
/// re-parse; the paper's generated code is similarly parenthesis-heavy).
pub fn expr_to_string(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Unary { op, operand } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{sym}({})", expr_to_string(operand))
        }
        Expr::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                expr_to_string(lhs),
                op.symbol(),
                expr_to_string(rhs)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn round_trips_a_structured_function() {
        let src = r#"
            int control(int speed __range(0, 2), bool pump) {
                int state = 0;
                if (speed == 1 && pump) { state = 1; } else { state = 2; }
                switch (state) { case 1: act1(); break; case 2: act2(); break; default: break; }
                while (state > 0) __bound(3) { state = state - 1; }
                return state;
            }
        "#;
        let p1 = parse_program(src).expect("parse original");
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed).expect("parse printed");
        // Compare structure (ignoring line numbers) via a second print.
        assert_eq!(printed, program_to_string(&p2));
        assert_eq!(p1.stmt_count(), p2.stmt_count());
    }

    #[test]
    fn prints_range_annotations_and_bounds() {
        let src = "void f(int a __range(0, 3)) { int i; while (i < a) __bound(3) { i = i + 1; } }";
        let p = parse_program(src).expect("parse");
        let printed = program_to_string(&p);
        assert!(printed.contains("__range(0, 3)"));
        assert!(printed.contains("__bound(3)"));
    }

    #[test]
    fn expr_printing_is_fully_parenthesised() {
        let p = parse_program("void f(int a, int b) { a = a + b * 2; }").expect("parse");
        let printed = program_to_string(&p);
        assert!(printed.contains("(a + (b * 2))"), "{printed}");
    }
}
