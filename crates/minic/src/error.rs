use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Error raised by the mini-C frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The lexer encountered an invalid character or malformed literal.
    Lex(String),
    /// The parser encountered an unexpected token or construct.
    Parse(String),
    /// Semantic analysis rejected the program (undeclared variable, type
    /// mismatch, missing loop bound, ...).
    Sema(String),
    /// Runtime failure inside the reference interpreter (division by zero,
    /// exceeded loop bound, missing input value, ...).
    Runtime(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex(msg) => write!(f, "lex error: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Sema(msg) => write!(f, "semantic error: {msg}"),
            Error::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("unexpected `}`".to_owned());
        assert_eq!(e.to_string(), "parse error: unexpected `}`");
        let e = Error::Runtime("division by zero".to_owned());
        assert!(e.to_string().contains("division by zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
