//! Runtime values and input vectors shared by the interpreter, the target
//! simulator and the test-data generators.

use crate::types::Ty;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A scalar runtime value.
///
/// Mini-C only has integer-like scalars, so a value is a signed 64-bit
/// integer that is wrapped to the width of its declared type whenever it is
/// stored into a variable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Value(pub i64);

impl Value {
    /// The boolean `true` value.
    pub const TRUE: Value = Value(1);
    /// The boolean `false` value.
    pub const FALSE: Value = Value(0);

    /// Creates a value from a raw integer.
    pub fn new(v: i64) -> Value {
        Value(v)
    }

    /// Raw integer representation.
    pub fn raw(self) -> i64 {
        self.0
    }

    /// C truthiness: any non-zero value is true.
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }

    /// Creates a boolean value.
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Wraps the value into the representable range of `ty`.
    pub fn wrapped_to(self, ty: Ty) -> Value {
        Value(ty.wrap(self.0))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::from_bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An assignment of concrete values to the analysed function's parameters —
/// one *test data pattern* in the paper's terminology.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InputVector {
    values: BTreeMap<String, i64>,
}

impl InputVector {
    /// Creates an empty input vector.
    pub fn new() -> InputVector {
        InputVector::default()
    }

    /// Sets the value of parameter `name`.
    pub fn set(&mut self, name: impl Into<String>, value: i64) {
        self.values.insert(name.into(), value);
    }

    /// Builder-style variant of [`InputVector::set`].
    pub fn with(mut self, name: impl Into<String>, value: i64) -> InputVector {
        self.set(name, value);
        self
    }

    /// Reads the value of parameter `name`, if present.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    /// Number of parameters covered by this vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector assigns no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl FromIterator<(String, i64)> for InputVector {
    fn from_iter<T: IntoIterator<Item = (String, i64)>>(iter: T) -> Self {
        InputVector {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, i64)> for InputVector {
    fn extend<T: IntoIterator<Item = (String, i64)>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl fmt::Display for InputVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_c() {
        assert!(Value(1).as_bool());
        assert!(Value(-7).as_bool());
        assert!(!Value(0).as_bool());
        assert_eq!(Value::from_bool(true), Value::TRUE);
    }

    #[test]
    fn wrapping_respects_type() {
        assert_eq!(Value(300).wrapped_to(Ty::U8), Value(44));
        assert_eq!(Value(-1).wrapped_to(Ty::U16), Value(65535));
        assert_eq!(Value(2).wrapped_to(Ty::Bool), Value(1));
    }

    #[test]
    fn input_vector_round_trips_values() {
        let v = InputVector::new().with("speed", 2).with("pump", 1);
        assert_eq!(v.get("speed"), Some(2));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.to_string(), "{pump=1, speed=2}");
    }

    #[test]
    fn input_vector_collects_from_iterator() {
        let v: InputVector = vec![("a".to_owned(), 1), ("b".to_owned(), 2)]
            .into_iter()
            .collect();
        assert_eq!(v.get("b"), Some(2));
        let mut v2 = InputVector::new();
        v2.extend(vec![("c".to_owned(), 3)]);
        assert_eq!(v2.get("c"), Some(3));
    }

    #[test]
    fn display_of_value() {
        assert_eq!(Value(-3).to_string(), "-3");
    }
}
