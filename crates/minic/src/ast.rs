//! Abstract syntax tree of mini-C.
//!
//! Every statement carries a [`StmtId`] assigned by semantic analysis.  The
//! CFG builder, the instrumentation planner and the target-code lowering all
//! refer back to statements through these ids, so a single AST instance is the
//! shared source of truth across the whole toolchain.

use crate::types::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a statement inside a [`Program`].
///
/// Ids are dense (0..`Program::stmt_count()`) and assigned in a deterministic
/// pre-order walk by [`crate::sema::check_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Placeholder id used by the parser before semantic analysis numbers the
    /// statements.
    pub const UNASSIGNED: StmtId = StmtId(u32::MAX);

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical negation `!x`.
    Not,
    /// Bitwise complement is not part of mini-C; `~` is rejected by the lexer.
    /// This variant exists for completeness of generated code that uses
    /// `x ^ -1` style complements and is produced only by the generators.
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// Whether the operator yields a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator is a logical connective (`&&`, `||`).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// C source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Integer (or boolean) literal.
    Int(i64),
    /// Variable read.
    Var(String),
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Builds a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Builds an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Builds a binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds a unary expression.
    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr::Unary {
            op,
            operand: Box::new(operand),
        }
    }

    /// Collects the names of all variables read by this expression (with
    /// duplicates preserved in evaluation order).
    pub fn referenced_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_vars(&mut |name| out.push(name));
        out
    }

    fn visit_vars<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Int(_) => {}
            Expr::Var(name) => f(name),
            Expr::Unary { operand, .. } => operand.visit_vars(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_vars(f);
                rhs.visit_vars(f);
            }
        }
    }

    /// Number of operator and operand nodes, a rough proxy for evaluation
    /// cost used by the target cost model and the generators.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Var(_) => 1,
            Expr::Unary { operand, .. } => 1 + operand.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
        }
    }

    /// Substitutes every read of `name` with `replacement` (used by the
    /// reverse-CSE model optimisation).
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Int(_) => self.clone(),
            Expr::Var(v) => {
                if v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(operand.substitute(name, replacement)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute(name, replacement)),
                rhs: Box::new(rhs.substitute(name, replacement)),
            },
        }
    }
}

/// A variable declaration (function parameter or local).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Optional `__range(lo, hi)` annotation emitted by the code generator;
    /// consumed by the variable-range-analysis optimisation.
    pub range: Option<(i64, i64)>,
    /// Optional initialiser expression.
    pub init: Option<Expr>,
}

impl VarDecl {
    /// Creates an unannotated, uninitialised declaration.
    pub fn new(name: impl Into<String>, ty: Ty) -> VarDecl {
        VarDecl {
            name: name.into(),
            ty,
            range: None,
            init: None,
        }
    }

    /// Adds a `__range` annotation.
    pub fn with_range(mut self, lo: i64, hi: i64) -> VarDecl {
        self.range = Some((lo, hi));
        self
    }

    /// Adds an initialiser.
    pub fn with_init(mut self, init: Expr) -> VarDecl {
        self.init = Some(init);
        self
    }
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// Creates a block from the given statements.
    pub fn from_stmts(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }

    /// Whether the block contains no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// One case arm of a `switch` statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCase {
    /// Case label value.
    pub value: i64,
    /// Statements of the case (mini-C requires every case to end in `break`,
    /// i.e. no fall-through, which is what TargetLink emits).
    pub body: Block,
}

/// Statements of mini-C.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `target = value;`
    Assign {
        id: StmtId,
        /// 1-based source line (0 for generated code).
        line: u32,
        target: String,
        value: Expr,
    },
    /// Call to an external leaf routine, e.g. `printf3();` — externals have
    /// no observable effect on program variables, only an execution cost.
    Call {
        id: StmtId,
        line: u32,
        callee: String,
        args: Vec<Expr>,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        id: StmtId,
        line: u32,
        cond: Expr,
        then_branch: Block,
        else_branch: Option<Block>,
    },
    /// `switch (selector) { case v: {...} break; ... default: {...} }`
    Switch {
        id: StmtId,
        line: u32,
        selector: Expr,
        cases: Vec<SwitchCase>,
        default: Option<Block>,
    },
    /// `while (cond) __bound(n) { ... }` — bounded loop.
    While {
        id: StmtId,
        line: u32,
        cond: Expr,
        /// Maximum number of iterations; mandatory for WCET analysis.
        bound: u32,
        body: Block,
    },
    /// `return expr;` / `return;`
    Return {
        id: StmtId,
        line: u32,
        value: Option<Expr>,
    },
}

impl Stmt {
    /// The statement's id.
    pub fn id(&self) -> StmtId {
        match self {
            Stmt::Assign { id, .. }
            | Stmt::Call { id, .. }
            | Stmt::If { id, .. }
            | Stmt::Switch { id, .. }
            | Stmt::While { id, .. }
            | Stmt::Return { id, .. } => *id,
        }
    }

    /// The 1-based source line the statement starts on (0 for generated
    /// statements that never existed in text form).
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::Call { line, .. }
            | Stmt::If { line, .. }
            | Stmt::Switch { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Return { line, .. } => *line,
        }
    }

    /// Whether the statement is a simple (non-branching) statement.
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. }
        )
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters; these are the analysis *inputs* for which test data is
    /// generated.
    pub params: Vec<VarDecl>,
    /// Local variables declared at the top of the function (C89 style, as
    /// emitted by TargetLink).
    pub locals: Vec<VarDecl>,
    /// Return type, `None` for `void`.
    pub ret_ty: Option<Ty>,
    /// Function body.
    pub body: Block,
}

impl Function {
    /// Looks up the declaration of `name` among parameters and locals.
    pub fn decl(&self, name: &str) -> Option<&VarDecl> {
        self.params
            .iter()
            .chain(self.locals.iter())
            .find(|d| d.name == name)
    }

    /// Iterates over all declarations (parameters first, then locals).
    pub fn decls(&self) -> impl Iterator<Item = &VarDecl> {
        self.params.iter().chain(self.locals.iter())
    }

    /// Calls `f` on every statement of the body in pre-order.
    pub fn for_each_stmt<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for_each_stmt_in_block(&self.body, f);
    }

    /// Number of statements in the body.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(&mut |_| n += 1);
        n
    }

    /// Number of conditional branch statements (`if` and `switch`).
    pub fn branch_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::If { .. } | Stmt::Switch { .. }) {
                n += 1;
            }
        });
        n
    }
}

/// Walks every statement of `block` (and nested blocks) in pre-order.
pub fn for_each_stmt_in_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for_each_stmt_in_block(then_branch, f);
                if let Some(e) = else_branch {
                    for_each_stmt_in_block(e, f);
                }
            }
            Stmt::Switch { cases, default, .. } => {
                for case in cases {
                    for_each_stmt_in_block(&case.body, f);
                }
                if let Some(d) = default {
                    for_each_stmt_in_block(d, f);
                }
            }
            Stmt::While { body, .. } => for_each_stmt_in_block(body, f),
            Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. } => {}
        }
    }
}

/// Mutable pre-order walk over every statement of `block`.
pub fn for_each_stmt_in_block_mut(block: &mut Block, f: &mut impl FnMut(&mut Stmt)) {
    for stmt in &mut block.stmts {
        f(stmt);
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for_each_stmt_in_block_mut(then_branch, f);
                if let Some(e) = else_branch {
                    for_each_stmt_in_block_mut(e, f);
                }
            }
            Stmt::Switch { cases, default, .. } => {
                for case in cases.iter_mut() {
                    for_each_stmt_in_block_mut(&mut case.body, f);
                }
                if let Some(d) = default {
                    for_each_stmt_in_block_mut(d, f);
                }
            }
            Stmt::While { body, .. } => for_each_stmt_in_block_mut(body, f),
            Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. } => {}
        }
    }
}

/// A complete mini-C program (translation unit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Defined functions.  Calls to names without a definition are treated as
    /// external leaf routines (the `printfN()` stubs of the paper's example).
    pub functions: Vec<Function>,
    /// Total number of statements across all functions; valid after semantic
    /// analysis.
    pub stmt_count: u32,
}

impl Program {
    /// Creates a program from a list of functions (ids must still be assigned
    /// by [`crate::sema::check_program`]).
    pub fn new(functions: Vec<Function>) -> Program {
        Program {
            functions,
            stmt_count: 0,
        }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total number of statements (valid after semantic analysis).
    pub fn stmt_count(&self) -> usize {
        self.stmt_count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_expr() -> Expr {
        // (a + 1) * b
        Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::var("a"), Expr::int(1)),
            Expr::var("b"),
        )
    }

    #[test]
    fn referenced_vars_in_evaluation_order() {
        assert_eq!(sample_expr().referenced_vars(), vec!["a", "b"]);
    }

    #[test]
    fn node_count_counts_all_nodes() {
        assert_eq!(sample_expr().node_count(), 5);
        assert_eq!(Expr::int(3).node_count(), 1);
    }

    #[test]
    fn substitute_replaces_only_matching_variable() {
        let replaced =
            sample_expr().substitute("a", &Expr::binary(BinOp::Add, Expr::var("c"), Expr::int(2)));
        assert_eq!(replaced.referenced_vars(), vec!["c", "b"]);
        let unchanged = sample_expr().substitute("zzz", &Expr::int(0));
        assert_eq!(unchanged, sample_expr());
    }

    #[test]
    fn stmt_accessors_return_id_and_line() {
        let s = Stmt::Assign {
            id: StmtId(7),
            line: 42,
            target: "x".to_owned(),
            value: Expr::int(0),
        };
        assert_eq!(s.id(), StmtId(7));
        assert_eq!(s.line(), 42);
        assert!(s.is_simple());
        let b = Stmt::If {
            id: StmtId(8),
            line: 43,
            cond: Expr::var("x"),
            then_branch: Block::new(),
            else_branch: None,
        };
        assert!(!b.is_simple());
    }

    #[test]
    fn function_statistics_count_nested_statements() {
        let f = Function {
            name: "f".to_owned(),
            params: vec![VarDecl::new("a", Ty::I16)],
            locals: vec![],
            ret_ty: None,
            body: Block::from_stmts(vec![Stmt::If {
                id: StmtId(0),
                line: 1,
                cond: Expr::var("a"),
                then_branch: Block::from_stmts(vec![Stmt::Call {
                    id: StmtId(1),
                    line: 2,
                    callee: "leaf".to_owned(),
                    args: vec![],
                }]),
                else_branch: None,
            }]),
        };
        assert_eq!(f.stmt_count(), 2);
        assert_eq!(f.branch_count(), 1);
        assert!(f.decl("a").is_some());
        assert!(f.decl("zz").is_none());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert_eq!(BinOp::Shl.symbol(), "<<");
    }

    #[test]
    fn stmt_id_display_and_index() {
        assert_eq!(StmtId(3).to_string(), "s3");
        assert_eq!(StmtId(3).index(), 3);
    }
}
