//! Mini-C frontend for the timing-model-generation toolchain.
//!
//! The DATE 2005 paper analyses C code that was produced automatically by the
//! dSpace TargetLink code generator from Matlab/Simulink models.  That code
//! has a very regular shape: one analysed function, scalar integer/boolean
//! variables, nested `if`/`switch` statements, bounded loops and calls to
//! external leaf routines.  `tmg-minic` implements exactly that subset of C —
//! enough to express the paper's case study and the industrial-sized generated
//! programs — together with
//!
//! * a [`lexer`] and recursive-descent [`parser`],
//! * a typed [`ast`] with statement identities ([`ast::StmtId`]) that the CFG
//!   and instrumentation layers refer back to,
//! * a [`sema`] pass (symbol resolution, type checking, loop-bound checking),
//! * a reference [`interp`]reter used as the semantic oracle for exhaustive
//!   end-to-end measurements and for validating generated test data, and
//! * a [`pretty`] printer so generated programs can be inspected as C source.
//!
//! # Example
//!
//! ```
//! use tmg_minic::parse_program;
//!
//! let src = r#"
//!     int clamp(int x) {
//!         int y;
//!         y = x;
//!         if (y > 100) { y = 100; }
//!         if (y < 0) { y = 0; }
//!         return y;
//!     }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name, "clamp");
//! # Ok::<(), tmg_minic::Error>(())
//! ```

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod types;
pub mod value;

mod error;

pub use ast::{BinOp, Block, Expr, Function, Program, Stmt, StmtId, UnOp, VarDecl};
pub use error::{Error, Result};
pub use interp::{ExecOutcome, ExecTrace, Interpreter};
pub use types::Ty;
pub use value::Value;

/// Parses and semantically checks a complete mini-C program.
///
/// This is the main entry point of the crate: it runs the lexer, the parser
/// and the semantic analysis pass and returns a checked [`Program`] whose
/// statements carry stable [`StmtId`]s.
///
/// # Errors
///
/// Returns [`Error::Lex`], [`Error::Parse`] or [`Error::Sema`] when the source
/// is not valid mini-C.
///
/// # Example
///
/// ```
/// let p = tmg_minic::parse_program("int f(int a) { return a; }")?;
/// assert_eq!(p.functions[0].params.len(), 1);
/// # Ok::<(), tmg_minic::Error>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = lexer::lex(source)?;
    let mut program = parser::Parser::new(tokens).parse_program()?;
    sema::check_program(&mut program)?;
    Ok(program)
}

/// Parses a single function definition and wraps it in a [`Program`].
///
/// Convenience for tests and generators that deal with one analysed function
/// (the common case in the paper).
///
/// # Errors
///
/// Same as [`parse_program`].
pub fn parse_function(source: &str) -> Result<Function> {
    let program = parse_program(source)?;
    program
        .functions
        .into_iter()
        .next()
        .ok_or_else(|| Error::Parse("source contains no function definition".to_owned()))
}
