//! Hand-written lexer for mini-C.

use crate::error::{Error, Result};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Turns mini-C source text into a token stream terminated by
/// [`TokenKind::Eof`].
///
/// Line ( `//` ) and block ( `/* ... */` ) comments as well as preprocessor
/// lines starting with `#` are skipped (the generated code the paper analyses
/// has all includes resolved, so `#` lines are only ever remnants).
///
/// # Errors
///
/// Returns [`Error::Lex`] on characters outside the mini-C alphabet or on
/// unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            source,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                self.lex_word()
            } else if c.is_ascii_digit() {
                self.lex_number()?
            } else {
                self.lex_punct()?
            };
            tokens.push(Token { kind, line });
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    // Preprocessor remnant: skip to end of line.
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::Lex(format!(
                                    "unterminated block comment starting before line {}",
                                    self.line
                                )))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match Keyword::from_str(&word) {
            Some(Keyword::True) => TokenKind::Int(1),
            Some(Keyword::False) => TokenKind::Int(0),
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        // Hexadecimal literal.
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    self.bump();
                } else {
                    break;
                }
            }
            let digits: String = self.chars[hex_start..self.pos].iter().collect();
            let value = i64::from_str_radix(&digits, 16)
                .map_err(|_| Error::Lex(format!("invalid hex literal on line {}", self.line)))?;
            return Ok(TokenKind::Int(value));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        // Skip integer suffixes generated code sometimes emits (u, U, l, L).
        while matches!(self.peek(), Some('u') | Some('U') | Some('l') | Some('L')) {
            self.bump();
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .filter(|c| c.is_ascii_digit())
            .collect();
        let value = text
            .parse::<i64>()
            .map_err(|_| Error::Lex(format!("integer literal overflow on line {}", self.line)))?;
        Ok(TokenKind::Int(value))
    }

    fn lex_punct(&mut self) -> Result<TokenKind> {
        let c = self.bump().expect("caller checked a character is present");
        let two = |l: &mut Lexer<'a>, next: char, yes: Punct, no: Punct| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let p = match c {
            '(' => Punct::LParen,
            ')' => Punct::RParen,
            '{' => Punct::LBrace,
            '}' => Punct::RBrace,
            ';' => Punct::Semicolon,
            ',' => Punct::Comma,
            ':' => Punct::Colon,
            '+' => two(self, '+', Punct::PlusPlus, Punct::Plus),
            '-' => two(self, '-', Punct::MinusMinus, Punct::Minus),
            '*' => Punct::Star,
            '/' => Punct::Slash,
            '%' => Punct::Percent,
            '^' => Punct::Caret,
            '=' => two(self, '=', Punct::EqEq, Punct::Assign),
            '!' => two(self, '=', Punct::NotEq, Punct::Not),
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Punct::Le
                } else if self.peek() == Some('<') {
                    self.bump();
                    Punct::Shl
                } else {
                    Punct::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Punct::Ge
                } else if self.peek() == Some('>') {
                    self.bump();
                    Punct::Shr
                } else {
                    Punct::Gt
                }
            }
            '&' => two(self, '&', Punct::AndAnd, Punct::Amp),
            '|' => two(self, '|', Punct::OrOr, Punct::Pipe),
            other => {
                return Err(Error::Lex(format!(
                    "unexpected character `{other}` on line {} (source length {})",
                    self.line,
                    self.source.len()
                )))
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lex").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_function_header() {
        let ks = kinds("int main()");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("main".to_owned()),
                TokenKind::Punct(Punct::LParen),
                TokenKind::Punct(Punct::RParen),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        let ks = kinds("<= >= == != && || << >> ++ --");
        let expect = [
            Punct::Le,
            Punct::Ge,
            Punct::EqEq,
            Punct::NotEq,
            Punct::AndAnd,
            Punct::OrOr,
            Punct::Shl,
            Punct::Shr,
            Punct::PlusPlus,
            Punct::MinusMinus,
        ];
        for (k, p) in ks.iter().zip(expect.iter()) {
            assert_eq!(k, &TokenKind::Punct(*p));
        }
    }

    #[test]
    fn skips_comments_and_preprocessor_lines() {
        let ks = kinds("// line comment\n#include <stdio.h>\n/* block\ncomment */ x");
        assert_eq!(ks, vec![TokenKind::Ident("x".to_owned()), TokenKind::Eof]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").expect("lex");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn lexes_hex_and_suffixed_literals() {
        assert_eq!(kinds("0x10")[0], TokenKind::Int(16));
        assert_eq!(kinds("42u")[0], TokenKind::Int(42));
        assert_eq!(kinds("7L")[0], TokenKind::Int(7));
    }

    #[test]
    fn true_false_become_integer_literals() {
        assert_eq!(kinds("true")[0], TokenKind::Int(1));
        assert_eq!(kinds("false")[0], TokenKind::Int(0));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(lex("int $x;"), Err(Error::Lex(_))));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(matches!(lex("/* never closed"), Err(Error::Lex(_))));
    }
}
