//! Recursive-descent parser for mini-C.

use crate::ast::{BinOp, Block, Expr, Function, Program, Stmt, StmtId, SwitchCase, UnOp, VarDecl};
use crate::error::{Error, Result};
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::Ty;

/// Recursive-descent parser over the token stream produced by
/// [`crate::lexer::lex`].
///
/// The parser leaves every statement id as [`StmtId::UNASSIGNED`]; semantic
/// analysis assigns dense ids afterwards.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over `tokens` (which must end in [`TokenKind::Eof`]).
    pub fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected `{}` but found {} on line {}",
                p.as_str(),
                self.peek(),
                self.peek_line()
            )))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword `{}` but found {} on line {}",
                kw.as_str(),
                self.peek(),
                self.peek_line()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(Error::Parse(format!(
                "expected identifier but found {other} on line {}",
                self.peek_line()
            ))),
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        match self.bump() {
            TokenKind::Int(v) => Ok(v),
            TokenKind::Punct(Punct::Minus) => match self.bump() {
                TokenKind::Int(v) => Ok(-v),
                other => Err(Error::Parse(format!(
                    "expected integer literal but found {other} on line {}",
                    self.peek_line()
                ))),
            },
            other => Err(Error::Parse(format!(
                "expected integer literal but found {other} on line {}",
                self.peek_line()
            ))),
        }
    }

    /// Parses a complete program (a sequence of function definitions).
    pub fn parse_program(&mut self) -> Result<Program> {
        let mut functions = Vec::new();
        while self.peek() != &TokenKind::Eof {
            functions.push(self.parse_function()?);
        }
        Ok(Program::new(functions))
    }

    fn try_parse_type(&mut self) -> Option<Ty> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Bool) => {
                self.bump();
                Some(Ty::Bool)
            }
            TokenKind::Keyword(Keyword::Char) => {
                self.bump();
                Some(Ty::I8)
            }
            TokenKind::Keyword(Keyword::Int) => {
                self.bump();
                Some(Ty::I16)
            }
            TokenKind::Keyword(Keyword::Long) => {
                self.bump();
                Some(Ty::I32)
            }
            TokenKind::Keyword(Keyword::Unsigned) => {
                self.bump();
                if self.eat_keyword(Keyword::Char) {
                    Some(Ty::U8)
                } else {
                    // `unsigned` and `unsigned int` are both 16 bit.
                    self.eat_keyword(Keyword::Int);
                    Some(Ty::U16)
                }
            }
            _ => None,
        }
    }

    fn parse_function(&mut self) -> Result<Function> {
        let ret_ty = if self.eat_keyword(Keyword::Void) {
            None
        } else {
            match self.try_parse_type() {
                Some(ty) => Some(ty),
                None => {
                    return Err(Error::Parse(format!(
                        "expected return type but found {} on line {}",
                        self.peek(),
                        self.peek_line()
                    )))
                }
            }
        };
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                if self.eat_keyword(Keyword::Void)
                    && self.peek() == &TokenKind::Punct(Punct::RParen)
                {
                    self.expect_punct(Punct::RParen)?;
                    break;
                }
                let ty = self.try_parse_type().ok_or_else(|| {
                    Error::Parse(format!(
                        "expected parameter type but found {} on line {}",
                        self.peek(),
                        self.peek_line()
                    ))
                })?;
                let pname = self.expect_ident()?;
                let mut decl = VarDecl::new(pname, ty);
                if let Some((lo, hi)) = self.try_parse_range()? {
                    decl = decl.with_range(lo, hi);
                }
                params.push(decl);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let mut locals = Vec::new();
        // C89-style declarations at the top of the body.
        while let Some(ty) = self.try_parse_type() {
            loop {
                let vname = self.expect_ident()?;
                let mut decl = VarDecl::new(vname, ty);
                if let Some((lo, hi)) = self.try_parse_range()? {
                    decl = decl.with_range(lo, hi);
                }
                if self.eat_punct(Punct::Assign) {
                    decl = decl.with_init(self.parse_expr()?);
                }
                locals.push(decl);
                if self.eat_punct(Punct::Comma) {
                    continue;
                }
                self.expect_punct(Punct::Semicolon)?;
                break;
            }
        }
        let body = self.parse_stmts_until_rbrace()?;
        Ok(Function {
            name,
            params,
            locals,
            ret_ty,
            body,
        })
    }

    fn try_parse_range(&mut self) -> Result<Option<(i64, i64)>> {
        if !self.eat_keyword(Keyword::Range) {
            return Ok(None);
        }
        self.expect_punct(Punct::LParen)?;
        let lo = self.expect_int()?;
        self.expect_punct(Punct::Comma)?;
        let hi = self.expect_int()?;
        self.expect_punct(Punct::RParen)?;
        Ok(Some((lo, hi)))
    }

    fn parse_stmts_until_rbrace(&mut self) -> Result<Block> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(Error::Parse(
                    "unexpected end of input inside block".to_owned(),
                ));
            }
            self.parse_stmt_into(&mut stmts)?;
        }
        Ok(Block::from_stmts(stmts))
    }

    fn parse_block(&mut self) -> Result<Block> {
        self.expect_punct(Punct::LBrace)?;
        self.parse_stmts_until_rbrace()
    }

    /// Parses one statement; bare nested blocks are flattened into the parent
    /// statement list, which is why this pushes into `out` instead of
    /// returning a single statement.
    fn parse_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<()> {
        let line = self.peek_line();
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                let inner = self.parse_block()?;
                out.extend(inner.stmts);
                Ok(())
            }
            TokenKind::Punct(Punct::Semicolon) => {
                self.bump();
                Ok(())
            }
            TokenKind::Keyword(Keyword::If) => {
                let stmt = self.parse_if(line)?;
                out.push(stmt);
                Ok(())
            }
            TokenKind::Keyword(Keyword::Switch) => {
                let stmt = self.parse_switch(line)?;
                out.push(stmt);
                Ok(())
            }
            TokenKind::Keyword(Keyword::While) => {
                let stmt = self.parse_while(line)?;
                out.push(stmt);
                Ok(())
            }
            TokenKind::Keyword(Keyword::For) => {
                self.parse_for_into(line, out)?;
                Ok(())
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.eat_punct(Punct::Semicolon) {
                    None
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semicolon)?;
                    Some(e)
                };
                out.push(Stmt::Return {
                    id: StmtId::UNASSIGNED,
                    line,
                    value,
                });
                Ok(())
            }
            TokenKind::Ident(_) => {
                let stmt = self.parse_assign_or_call(line)?;
                self.expect_punct(Punct::Semicolon)?;
                out.push(stmt);
                Ok(())
            }
            other => Err(Error::Parse(format!(
                "unexpected {other} at start of statement on line {line}"
            ))),
        }
    }

    fn parse_assign_or_call(&mut self, line: u32) -> Result<Stmt> {
        let name = self.expect_ident()?;
        match self.peek() {
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let mut args = Vec::new();
                if !self.eat_punct(Punct::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat_punct(Punct::RParen) {
                            break;
                        }
                        self.expect_punct(Punct::Comma)?;
                    }
                }
                Ok(Stmt::Call {
                    id: StmtId::UNASSIGNED,
                    line,
                    callee: name,
                    args,
                })
            }
            TokenKind::Punct(Punct::Assign) => {
                self.bump();
                let value = self.parse_expr()?;
                Ok(Stmt::Assign {
                    id: StmtId::UNASSIGNED,
                    line,
                    target: name,
                    value,
                })
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                Ok(Stmt::Assign {
                    id: StmtId::UNASSIGNED,
                    line,
                    target: name.clone(),
                    value: Expr::binary(BinOp::Add, Expr::var(name), Expr::int(1)),
                })
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                Ok(Stmt::Assign {
                    id: StmtId::UNASSIGNED,
                    line,
                    target: name.clone(),
                    value: Expr::binary(BinOp::Sub, Expr::var(name), Expr::int(1)),
                })
            }
            other => Err(Error::Parse(format!(
                "expected `=`, `++`, `--` or `(` after identifier `{name}` but found {other} on line {line}"
            ))),
        }
    }

    fn parse_if(&mut self, line: u32) -> Result<Stmt> {
        self.expect_keyword(Keyword::If)?;
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_branch = self.parse_branch_body()?;
        let else_branch = if self.eat_keyword(Keyword::Else) {
            if self.peek() == &TokenKind::Keyword(Keyword::If) {
                let nested_line = self.peek_line();
                let nested = self.parse_if(nested_line)?;
                Some(Block::from_stmts(vec![nested]))
            } else {
                Some(self.parse_branch_body()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            id: StmtId::UNASSIGNED,
            line,
            cond,
            then_branch,
            else_branch,
        })
    }

    /// A branch body is either a braced block or a single statement.
    fn parse_branch_body(&mut self) -> Result<Block> {
        if self.peek() == &TokenKind::Punct(Punct::LBrace) {
            self.parse_block()
        } else {
            let mut stmts = Vec::new();
            self.parse_stmt_into(&mut stmts)?;
            Ok(Block::from_stmts(stmts))
        }
    }

    fn parse_switch(&mut self, line: u32) -> Result<Stmt> {
        self.expect_keyword(Keyword::Switch)?;
        self.expect_punct(Punct::LParen)?;
        let selector = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            if self.eat_punct(Punct::RBrace) {
                break;
            }
            if self.eat_keyword(Keyword::Case) {
                let value = self.expect_int()?;
                self.expect_punct(Punct::Colon)?;
                let body = self.parse_case_body()?;
                cases.push(SwitchCase { value, body });
            } else if self.eat_keyword(Keyword::Default) {
                self.expect_punct(Punct::Colon)?;
                let body = self.parse_case_body()?;
                if default.is_some() {
                    return Err(Error::Parse(format!(
                        "duplicate `default` label in switch on line {line}"
                    )));
                }
                default = Some(body);
            } else {
                return Err(Error::Parse(format!(
                    "expected `case`, `default` or `}}` in switch but found {} on line {}",
                    self.peek(),
                    self.peek_line()
                )));
            }
        }
        Ok(Stmt::Switch {
            id: StmtId::UNASSIGNED,
            line,
            selector,
            cases,
            default,
        })
    }

    /// Parses the statements of a case arm up to (and consuming) the `break;`.
    /// Fall-through is not supported: every arm must end with `break;` or be
    /// followed directly by `case`/`default`/`}` with an empty body.
    fn parse_case_body(&mut self) -> Result<Block> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Keyword(Keyword::Break) => {
                    self.bump();
                    self.expect_punct(Punct::Semicolon)?;
                    return Ok(Block::from_stmts(stmts));
                }
                TokenKind::Keyword(Keyword::Case)
                | TokenKind::Keyword(Keyword::Default)
                | TokenKind::Punct(Punct::RBrace) => {
                    if stmts.is_empty() {
                        return Ok(Block::from_stmts(stmts));
                    }
                    return Err(Error::Parse(format!(
                        "switch case starting before line {} must end with `break;` (fall-through is not supported)",
                        self.peek_line()
                    )));
                }
                TokenKind::Eof => {
                    return Err(Error::Parse(
                        "unexpected end of input inside switch case".to_owned(),
                    ))
                }
                _ => self.parse_stmt_into(&mut stmts)?,
            }
        }
    }

    fn parse_while(&mut self, line: u32) -> Result<Stmt> {
        self.expect_keyword(Keyword::While)?;
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let bound = self.parse_bound()?;
        let body = self.parse_branch_body()?;
        Ok(Stmt::While {
            id: StmtId::UNASSIGNED,
            line,
            cond,
            bound,
            body,
        })
    }

    fn parse_bound(&mut self) -> Result<u32> {
        if !self.eat_keyword(Keyword::Bound) {
            // A missing bound is a semantic error, but the parser accepts it so
            // the error message can point at the loop.
            return Ok(0);
        }
        self.expect_punct(Punct::LParen)?;
        let v = self.expect_int()?;
        self.expect_punct(Punct::RParen)?;
        if v < 0 {
            return Err(Error::Parse("loop bound must be non-negative".to_owned()));
        }
        Ok(v as u32)
    }

    /// Desugars `for (init; cond; step) __bound(n) { body }` into
    /// `init; while (cond) __bound(n) { body; step; }`.
    fn parse_for_into(&mut self, line: u32, out: &mut Vec<Stmt>) -> Result<()> {
        self.expect_keyword(Keyword::For)?;
        self.expect_punct(Punct::LParen)?;
        if !self.eat_punct(Punct::Semicolon) {
            let init = self.parse_assign_or_call(line)?;
            self.expect_punct(Punct::Semicolon)?;
            out.push(init);
        }
        let cond = if self.peek() == &TokenKind::Punct(Punct::Semicolon) {
            Expr::int(1)
        } else {
            self.parse_expr()?
        };
        self.expect_punct(Punct::Semicolon)?;
        let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
            None
        } else {
            Some(self.parse_assign_or_call(line)?)
        };
        self.expect_punct(Punct::RParen)?;
        let bound = self.parse_bound()?;
        let mut body = self.parse_branch_body()?;
        if let Some(step) = step {
            body.stmts.push(step);
        }
        out.push(Stmt::While {
            id: StmtId::UNASSIGNED,
            line,
            cond,
            bound,
            body,
        });
        Ok(())
    }

    /// Parses an expression with standard C precedence.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_binary(0)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let Some((op, prec)) = self.peek_binop() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let p = match self.peek() {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::OrOr => (BinOp::Or, 1),
            Punct::AndAnd => (BinOp::And, 2),
            Punct::Pipe => (BinOp::BitOr, 3),
            Punct::Caret => (BinOp::BitXor, 4),
            Punct::Amp => (BinOp::BitAnd, 5),
            Punct::EqEq => (BinOp::Eq, 6),
            Punct::NotEq => (BinOp::Ne, 6),
            Punct::Lt => (BinOp::Lt, 7),
            Punct::Le => (BinOp::Le, 7),
            Punct::Gt => (BinOp::Gt, 7),
            Punct::Ge => (BinOp::Ge, 7),
            Punct::Shl => (BinOp::Shl, 8),
            Punct::Shr => (BinOp::Shr, 8),
            Punct::Plus => (BinOp::Add, 9),
            Punct::Minus => (BinOp::Sub, 9),
            Punct::Star => (BinOp::Mul, 10),
            Punct::Slash => (BinOp::Div, 10),
            Punct::Percent => (BinOp::Mod, 10),
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::unary(UnOp::Neg, self.parse_unary()?))
            }
            TokenKind::Punct(Punct::Not) => {
                self.bump();
                Ok(Expr::unary(UnOp::Not, self.parse_unary()?))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let line = self.peek_line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Ident(name) => Ok(Expr::Var(name)),
            TokenKind::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(Error::Parse(format!(
                "expected expression but found {other} on line {line}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        Parser::new(lex(src).expect("lex"))
            .parse_program()
            .expect("parse")
    }

    fn parse_err(src: &str) -> Error {
        Parser::new(lex(src).expect("lex"))
            .parse_program()
            .expect_err("should fail")
    }

    #[test]
    fn parses_empty_void_function() {
        let p = parse("void f() { }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].ret_ty, None);
        assert!(p.functions[0].body.is_empty());
    }

    #[test]
    fn parses_params_and_locals_with_annotations() {
        let p = parse(
            "int f(int a __range(0, 2), bool b) { unsigned char s __range(0, 8); long t = 5; return a; }",
        );
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].range, Some((0, 2)));
        assert_eq!(f.params[1].ty, Ty::Bool);
        assert_eq!(f.locals.len(), 2);
        assert_eq!(f.locals[0].ty, Ty::U8);
        assert_eq!(f.locals[0].range, Some((0, 8)));
        assert_eq!(f.locals[1].init, Some(Expr::int(5)));
    }

    #[test]
    fn parses_if_else_chain() {
        let p =
            parse("void f(int a) { if (a == 0) { g(); } else if (a == 1) { h(); } else { k(); } }");
        let f = &p.functions[0];
        assert_eq!(f.body.stmts.len(), 1);
        match &f.body.stmts[0] {
            Stmt::If { else_branch, .. } => {
                let else_b = else_branch.as_ref().expect("else");
                assert!(matches!(else_b.stmts[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_switch_with_cases_and_default() {
        let p = parse(
            "void f(int s) { switch (s) { case 0: g(); break; case 1: break; default: h(); break; } }",
        );
        match &p.functions[0].body.stmts[0] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[0].value, 0);
                assert!(cases[1].body.is_empty());
                assert!(default.is_some());
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_switch_fall_through() {
        let err = parse_err("void f(int s) { switch (s) { case 0: g(); case 1: break; } }");
        assert!(matches!(err, Error::Parse(_)));
    }

    #[test]
    fn parses_while_with_bound() {
        let p = parse("void f(int n) { int i; i = 0; while (i < n) __bound(10) { i = i + 1; } }");
        match &p.functions[0].body.stmts[1] {
            Stmt::While { bound, .. } => assert_eq!(*bound, 10),
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn desugars_for_loop_into_while() {
        let p = parse("void f() { int i; for (i = 0; i < 4; i++) __bound(4) { g(); } }");
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(stmts[0], Stmt::Assign { .. }));
        match &stmts[1] {
            Stmt::While { body, bound, .. } => {
                assert_eq!(*bound, 4);
                // body = { g(); i = i + 1; }
                assert_eq!(body.stmts.len(), 2);
                assert!(matches!(body.stmts[1], Stmt::Assign { .. }));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence_is_c_like() {
        let p = parse(
            "void f(int a, int b, int c) { a = a + b * c; b = (a + b) * c; c = a == 0 && b < 2; }",
        );
        let stmts = &p.functions[0].body.stmts;
        match &stmts[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected a + (b*c), got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
        match &stmts[2] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn increment_and_decrement_desugar_to_assignments() {
        let p = parse("void f(int a) { a++; a--; }");
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(
            &stmts[0],
            Stmt::Assign {
                value: Expr::Binary { op: BinOp::Add, .. },
                ..
            }
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Assign {
                value: Expr::Binary { op: BinOp::Sub, .. },
                ..
            }
        ));
    }

    #[test]
    fn bare_blocks_are_flattened() {
        let p = parse("void f() { { g(); { h(); } } k(); }");
        assert_eq!(p.functions[0].body.stmts.len(), 3);
    }

    #[test]
    fn figure1_example_parses() {
        let src = r#"
            int main() {
                int i;
                printf1();
                printf2();
                if (i == 0) {
                    printf3();
                    if (i == 0) { printf4(); } else { printf5(); }
                }
                if (i == 0) {
                    printf6();
                    printf7();
                }
                printf8();
                return 0;
            }
        "#;
        let p = parse(src);
        assert_eq!(p.functions[0].branch_count(), 3);
    }

    #[test]
    fn reports_unexpected_token() {
        let err = parse_err("void f() { + }");
        assert!(err.to_string().contains("statement"));
    }

    #[test]
    fn reports_missing_close_brace() {
        let err = parse_err("void f() { g();");
        assert!(matches!(err, Error::Parse(_)));
    }
}
