//! Reference interpreter for mini-C.
//!
//! The interpreter serves two roles in the reproduction:
//!
//! * it is the *semantic oracle*: the exhaustive end-to-end measurements of
//!   the case study (Section 4 of the paper) execute the program once per
//!   possible input and the interpreter decides which path each input takes;
//! * it validates generated test data: a test vector claimed to drive a
//!   particular path is replayed here and the recorded [`ExecTrace`] is
//!   compared against the intended path.

use crate::ast::{BinOp, Block, Expr, Function, Program, Stmt, StmtId, UnOp};
use crate::error::{Error, Result};
use crate::types::Ty;
use crate::value::{InputVector, Value};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Which way a branching statement went during one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchChoice {
    /// `if` condition was true.
    Then,
    /// `if` condition was false (whether or not an `else` branch exists).
    Else,
    /// `switch` selected the case with this label value.
    Case(i64),
    /// `switch` selected the `default` arm (or fell through an absent one).
    Default,
    /// `while` condition was true — one more iteration.
    LoopIterate,
    /// `while` condition was false — loop exited.
    LoopExit,
}

/// One event of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A simple statement was executed.
    Stmt(StmtId),
    /// A branching statement made a decision.
    Branch {
        /// The branching statement.
        stmt: StmtId,
        /// The decision taken.
        choice: BranchChoice,
    },
}

/// Complete record of one execution of the analysed function.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl ExecTrace {
    /// The sequence of branch decisions, which uniquely identifies the
    /// executed path through the CFG.
    pub fn branch_signature(&self) -> Vec<(StmtId, BranchChoice)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Branch { stmt, choice } => Some((*stmt, *choice)),
                TraceEvent::Stmt(_) => None,
            })
            .collect()
    }

    /// Ids of all executed statements (simple and branching), in order.
    pub fn executed_stmts(&self) -> Vec<StmtId> {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Stmt(id) => *id,
                TraceEvent::Branch { stmt, .. } => *stmt,
            })
            .collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Result of executing a function on one input vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Value returned by the function, if any.
    pub return_value: Option<Value>,
    /// Trace of executed statements and branch decisions.
    pub trace: ExecTrace,
    /// Number of interpreter steps (statements executed), a hardware-agnostic
    /// cost proxy.
    pub steps: u64,
}

enum Flow {
    Normal,
    Returned(Option<Value>),
}

/// AST interpreter over a checked [`Program`].
///
/// # Example
///
/// ```
/// use tmg_minic::{parse_program, Interpreter, value::InputVector};
///
/// let p = parse_program("int abs(int x) { int r; r = x; if (x < 0) { r = 0 - x; } return r; }")?;
/// let interp = Interpreter::new(&p);
/// let out = interp.run("abs", &InputVector::new().with("x", -5))?;
/// assert_eq!(out.return_value.map(|v| v.raw()), Some(5));
/// # Ok::<(), tmg_minic::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Interpreter<'p> {
    program: &'p Program,
}

struct Frame<'f> {
    vars: FxHashMap<&'f str, i64>,
    types: FxHashMap<&'f str, Ty>,
    trace: ExecTrace,
    steps: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter over `program`.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        Interpreter { program }
    }

    /// Executes `function` with the given `inputs`.
    ///
    /// Parameters missing from `inputs` default to zero; all locals start at
    /// zero unless they carry an initialiser (TargetLink always initialises
    /// the state variables it emits).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] on division by zero, on a loop exceeding its
    /// declared `__bound`, or if `function` does not exist.
    pub fn run(&self, function: &str, inputs: &InputVector) -> Result<ExecOutcome> {
        let func = self
            .program
            .function(function)
            .ok_or_else(|| Error::Runtime(format!("function `{function}` is not defined")))?;
        let mut frame = Frame {
            vars: FxHashMap::default(),
            types: FxHashMap::default(),
            trace: ExecTrace::default(),
            steps: 0,
        };
        for decl in func.decls() {
            frame.types.insert(decl.name.as_str(), decl.ty);
        }
        for param in &func.params {
            let raw = inputs.get(&param.name).unwrap_or(0);
            frame.vars.insert(param.name.as_str(), param.ty.wrap(raw));
        }
        for local in &func.locals {
            let init = match &local.init {
                Some(e) => eval_expr(e, &frame.vars)?,
                None => 0,
            };
            frame.vars.insert(local.name.as_str(), local.ty.wrap(init));
        }
        let flow = exec_block(func, &func.body, &mut frame)?;
        let return_value = match flow {
            Flow::Returned(v) => v,
            Flow::Normal => None,
        };
        Ok(ExecOutcome {
            return_value,
            trace: frame.trace,
            steps: frame.steps,
        })
    }
}

fn exec_block<'f>(func: &'f Function, block: &'f Block, frame: &mut Frame<'f>) -> Result<Flow> {
    for stmt in &block.stmts {
        match exec_stmt(func, stmt, frame)? {
            Flow::Normal => {}
            returned @ Flow::Returned(_) => return Ok(returned),
        }
    }
    Ok(Flow::Normal)
}

fn exec_stmt<'f>(func: &'f Function, stmt: &'f Stmt, frame: &mut Frame<'f>) -> Result<Flow> {
    frame.steps += 1;
    match stmt {
        Stmt::Assign {
            id, target, value, ..
        } => {
            frame.trace.events.push(TraceEvent::Stmt(*id));
            let v = eval_expr(value, &frame.vars)?;
            let ty = frame.types.get(target.as_str()).copied().ok_or_else(|| {
                Error::Runtime(format!("assignment to unknown variable `{target}`"))
            })?;
            frame.vars.insert(
                func.decl(target)
                    .map(|d| d.name.as_str())
                    .unwrap_or(target.as_str()),
                ty.wrap(v),
            );
            Ok(Flow::Normal)
        }
        Stmt::Call { id, args, .. } => {
            frame.trace.events.push(TraceEvent::Stmt(*id));
            // External leaf calls have no effect on program state, but their
            // arguments are still evaluated (they may trap, e.g. divide by 0).
            for a in args {
                eval_expr(a, &frame.vars)?;
            }
            Ok(Flow::Normal)
        }
        Stmt::Return { id, value, .. } => {
            frame.trace.events.push(TraceEvent::Stmt(*id));
            let v = match value {
                Some(e) => Some(Value(eval_expr(e, &frame.vars)?)),
                None => None,
            };
            Ok(Flow::Returned(v))
        }
        Stmt::If {
            id,
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let taken = eval_expr(cond, &frame.vars)? != 0;
            frame.trace.events.push(TraceEvent::Branch {
                stmt: *id,
                choice: if taken {
                    BranchChoice::Then
                } else {
                    BranchChoice::Else
                },
            });
            if taken {
                exec_block(func, then_branch, frame)
            } else if let Some(e) = else_branch {
                exec_block(func, e, frame)
            } else {
                Ok(Flow::Normal)
            }
        }
        Stmt::Switch {
            id,
            selector,
            cases,
            default,
            ..
        } => {
            let sel = eval_expr(selector, &frame.vars)?;
            if let Some(case) = cases.iter().find(|c| c.value == sel) {
                frame.trace.events.push(TraceEvent::Branch {
                    stmt: *id,
                    choice: BranchChoice::Case(case.value),
                });
                exec_block(func, &case.body, frame)
            } else {
                frame.trace.events.push(TraceEvent::Branch {
                    stmt: *id,
                    choice: BranchChoice::Default,
                });
                match default {
                    Some(d) => exec_block(func, d, frame),
                    None => Ok(Flow::Normal),
                }
            }
        }
        Stmt::While {
            id,
            cond,
            bound,
            body,
            line,
            ..
        } => {
            let mut iterations = 0u32;
            loop {
                let continue_loop = eval_expr(cond, &frame.vars)? != 0;
                frame.trace.events.push(TraceEvent::Branch {
                    stmt: *id,
                    choice: if continue_loop {
                        BranchChoice::LoopIterate
                    } else {
                        BranchChoice::LoopExit
                    },
                });
                if !continue_loop {
                    return Ok(Flow::Normal);
                }
                iterations += 1;
                if iterations > *bound {
                    return Err(Error::Runtime(format!(
                        "loop on line {line} exceeded its declared bound of {bound} iterations"
                    )));
                }
                match exec_block(func, body, frame)? {
                    Flow::Normal => {}
                    returned @ Flow::Returned(_) => return Ok(returned),
                }
            }
        }
    }
}

/// Evaluates an expression under a variable environment.
///
/// Exposed so the model-checking encoder and the target simulator reuse the
/// exact same semantics (C-like: comparisons yield 0/1, `&&`/`||` short
/// circuit, division truncates toward zero).
///
/// # Errors
///
/// Returns [`Error::Runtime`] on division/modulo by zero or on a read of an
/// unknown variable.
pub fn eval_expr(expr: &Expr, vars: &FxHashMap<&str, i64>) -> Result<i64> {
    match expr {
        Expr::Int(v) => Ok(*v),
        Expr::Var(name) => vars
            .get(name.as_str())
            .copied()
            .ok_or_else(|| Error::Runtime(format!("read of unknown variable `{name}`"))),
        Expr::Unary { op, operand } => {
            let v = eval_expr(operand, vars)?;
            Ok(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => i64::from(v == 0),
                UnOp::BitNot => !v,
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit evaluation for logical connectives.
            if *op == BinOp::And {
                let l = eval_expr(lhs, vars)?;
                if l == 0 {
                    return Ok(0);
                }
                return Ok(i64::from(eval_expr(rhs, vars)? != 0));
            }
            if *op == BinOp::Or {
                let l = eval_expr(lhs, vars)?;
                if l != 0 {
                    return Ok(1);
                }
                return Ok(i64::from(eval_expr(rhs, vars)? != 0));
            }
            let l = eval_expr(lhs, vars)?;
            let r = eval_expr(rhs, vars)?;
            Ok(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => {
                    if r == 0 {
                        return Err(Error::Runtime("division by zero".to_owned()));
                    }
                    l.wrapping_div(r)
                }
                BinOp::Mod => {
                    if r == 0 {
                        return Err(Error::Runtime("modulo by zero".to_owned()));
                    }
                    l.wrapping_rem(r)
                }
                BinOp::Lt => i64::from(l < r),
                BinOp::Le => i64::from(l <= r),
                BinOp::Gt => i64::from(l > r),
                BinOp::Ge => i64::from(l >= r),
                BinOp::Eq => i64::from(l == r),
                BinOp::Ne => i64::from(l != r),
                BinOp::BitAnd => l & r,
                BinOp::BitOr => l | r,
                BinOp::BitXor => l ^ r,
                BinOp::Shl => l.wrapping_shl((r & 63) as u32),
                BinOp::Shr => l.wrapping_shr((r & 63) as u32),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn run(src: &str, func: &str, inputs: &[(&str, i64)]) -> ExecOutcome {
        let p = parse_program(src).expect("parse");
        let mut iv = InputVector::new();
        for (k, v) in inputs {
            iv.set(*k, *v);
        }
        Interpreter::new(&p).run(func, &iv).expect("run")
    }

    #[test]
    fn computes_return_value_with_wrapping() {
        let out = run(
            "int f(int a) { int b; b = a + 1; return b; }",
            "f",
            &[("a", 32767)],
        );
        assert_eq!(out.return_value, Some(Value(-32768)));
    }

    #[test]
    fn records_branch_choices() {
        let src = "void f(int a) { if (a > 0) { g(); } else { h(); } }";
        let taken = run(src, "f", &[("a", 5)]);
        let not_taken = run(src, "f", &[("a", -5)]);
        assert_eq!(taken.trace.branch_signature()[0].1, BranchChoice::Then);
        assert_eq!(not_taken.trace.branch_signature()[0].1, BranchChoice::Else);
        assert_ne!(
            taken.trace.branch_signature(),
            not_taken.trace.branch_signature()
        );
    }

    #[test]
    fn switch_selects_case_or_default() {
        let src = "void f(int s) { switch (s) { case 1: a1(); break; case 2: a2(); break; default: d(); break; } }";
        assert_eq!(
            run(src, "f", &[("s", 2)]).trace.branch_signature()[0].1,
            BranchChoice::Case(2)
        );
        assert_eq!(
            run(src, "f", &[("s", 9)]).trace.branch_signature()[0].1,
            BranchChoice::Default
        );
    }

    #[test]
    fn while_loop_iterates_and_exits() {
        let src = "int f(int n) { int i; int s; i = 0; s = 0; while (i < n) __bound(10) { s = s + i; i = i + 1; } return s; }";
        let out = run(src, "f", &[("n", 4)]);
        assert_eq!(out.return_value, Some(Value(1 + 2 + 3)));
        let sig = out.trace.branch_signature();
        assert_eq!(
            sig.iter()
                .filter(|(_, c)| *c == BranchChoice::LoopIterate)
                .count(),
            4
        );
        assert_eq!(
            sig.iter()
                .filter(|(_, c)| *c == BranchChoice::LoopExit)
                .count(),
            1
        );
    }

    #[test]
    fn loop_bound_violation_is_a_runtime_error() {
        let p = parse_program(
            "void f(int n) { int i; i = 0; while (i < n) __bound(3) { i = i + 1; } }",
        )
        .expect("parse");
        let err = Interpreter::new(&p)
            .run("f", &InputVector::new().with("n", 100))
            .expect_err("bound exceeded");
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let p = parse_program("int f(int a) { int b; b = 10 / a; return b; }").expect("parse");
        let err = Interpreter::new(&p)
            .run("f", &InputVector::new().with("a", 0))
            .expect_err("division by zero");
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let out = run("int f(int a) { return a; }", "f", &[]);
        assert_eq!(out.return_value, Some(Value(0)));
    }

    #[test]
    fn locals_use_initialisers() {
        let out = run("int f() { int a = 7; int b; b = a; return b; }", "f", &[]);
        assert_eq!(out.return_value, Some(Value(7)));
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        let out = run(
            "int f(int a) { int r; r = 0; if (a != 0 && 10 / a > 1) { r = 1; } return r; }",
            "f",
            &[("a", 0)],
        );
        assert_eq!(out.return_value, Some(Value(0)));
    }

    #[test]
    fn return_exits_nested_control_flow() {
        let out = run(
            "int f(int a) { if (a > 0) { return 1; } return 2; }",
            "f",
            &[("a", 3)],
        );
        assert_eq!(out.return_value, Some(Value(1)));
        assert_eq!(out.trace.executed_stmts().len(), 2);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let p = parse_program("void f() { }").expect("parse");
        assert!(Interpreter::new(&p)
            .run("missing", &InputVector::new())
            .is_err());
    }

    #[test]
    fn steps_count_executed_statements() {
        let out = run("void f(int a) { a = 1; a = 2; a = 3; }", "f", &[]);
        assert_eq!(out.steps, 3);
    }
}
