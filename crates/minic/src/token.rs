//! Token definitions produced by the [`lexer`](crate::lexer).

use std::fmt;

/// A lexical token together with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number, used in diagnostics and to label CFG nodes the
    /// same way the paper's Figure 1 does.
    pub line: u32,
}

/// The different kinds of mini-C tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (variable or function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keyword such as `if`, `while`, `int`, ...
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input marker.
    Eof,
}

/// Reserved words of mini-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Int,
    Char,
    Long,
    Unsigned,
    Bool,
    Void,
    If,
    Else,
    Switch,
    Case,
    Default,
    Break,
    While,
    For,
    Return,
    True,
    False,
    /// `__bound(N)` loop-bound annotation keyword.
    Bound,
    /// `__range(lo, hi)` value-range annotation keyword.
    Range,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semicolon,
    Comma,
    Colon,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(name) => write!(f, "identifier `{name}`"),
            TokenKind::Int(v) => write!(f, "integer literal `{v}`"),
            TokenKind::Keyword(kw) => write!(f, "keyword `{}`", kw.as_str()),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

impl Keyword {
    /// Source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Char => "char",
            Keyword::Long => "long",
            Keyword::Unsigned => "unsigned",
            Keyword::Bool => "bool",
            Keyword::Void => "void",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Switch => "switch",
            Keyword::Case => "case",
            Keyword::Default => "default",
            Keyword::Break => "break",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Bound => "__bound",
            Keyword::Range => "__range",
        }
    }

    /// Looks up a keyword from its spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "char" => Keyword::Char,
            "long" => Keyword::Long,
            "unsigned" => Keyword::Unsigned,
            "bool" | "_Bool" => Keyword::Bool,
            "void" => Keyword::Void,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            "break" => Keyword::Break,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "__bound" => Keyword::Bound,
            "__range" => Keyword::Range,
            _ => return None,
        })
    }
}

impl Punct {
    /// Source spelling of the punctuation token.
    pub fn as_str(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::Semicolon => ";",
            Punct::Comma => ",",
            Punct::Colon => ":",
            Punct::Assign => "=",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::NotEq => "!=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Not => "!",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trips_through_spelling() {
        for kw in [
            Keyword::Int,
            Keyword::Char,
            Keyword::Long,
            Keyword::Unsigned,
            Keyword::Bool,
            Keyword::Void,
            Keyword::If,
            Keyword::Else,
            Keyword::Switch,
            Keyword::Case,
            Keyword::Default,
            Keyword::Break,
            Keyword::While,
            Keyword::For,
            Keyword::Return,
            Keyword::True,
            Keyword::False,
            Keyword::Bound,
            Keyword::Range,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("frobnicate"), None);
    }

    #[test]
    fn display_mentions_payload() {
        let t = TokenKind::Ident("speed".to_owned());
        assert!(t.to_string().contains("speed"));
        assert!(TokenKind::Punct(Punct::Shl).to_string().contains("<<"));
    }
}
