//! Semantic analysis: symbol resolution, light type checking, loop-bound
//! checking and dense [`StmtId`] assignment.

use crate::ast::{for_each_stmt_in_block_mut, Expr, Function, Program, Stmt, StmtId};
use crate::error::{Error, Result};
use std::collections::{HashMap, HashSet};

/// Checks `program` and assigns dense statement ids.
///
/// The following rules are enforced:
///
/// * variable names are unique per function (parameters and locals share one
///   namespace);
/// * every read variable is declared;
/// * assignment targets are declared;
/// * a call either targets an *external* leaf routine (a name without a
///   definition in the program — any arity) or a *defined* function, in
///   which case the argument count must match the definition's parameter
///   count (recursion is legal here; the call-graph analysis rejects
///   cycles with a typed error when bounds are composed);
/// * every `while` loop carries a positive `__bound(n)` annotation;
/// * `__range(lo, hi)` annotations are ordered and fit the declared type;
/// * `switch` case labels are unique per switch statement.
///
/// # Errors
///
/// Returns [`Error::Sema`] describing the first violation found.
pub fn check_program(program: &mut Program) -> Result<()> {
    let defined: HashMap<String, usize> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.params.len()))
        .collect();
    let mut names_seen = HashSet::new();
    for f in &program.functions {
        if !names_seen.insert(f.name.clone()) {
            return Err(Error::Sema(format!(
                "duplicate function definition `{}`",
                f.name
            )));
        }
    }

    let mut next_id: u32 = 0;
    for function in &mut program.functions {
        check_function(function, &defined)?;
        assign_ids(function, &mut next_id);
    }
    program.stmt_count = next_id;
    Ok(())
}

fn check_function(function: &Function, defined: &HashMap<String, usize>) -> Result<()> {
    let mut vars: HashSet<&str> = HashSet::new();
    for decl in function.decls() {
        if !vars.insert(decl.name.as_str()) {
            return Err(Error::Sema(format!(
                "variable `{}` declared twice in function `{}`",
                decl.name, function.name
            )));
        }
        if let Some((lo, hi)) = decl.range {
            if lo > hi {
                return Err(Error::Sema(format!(
                    "range annotation of `{}` in `{}` is reversed ({lo} > {hi})",
                    decl.name, function.name
                )));
            }
            let (tlo, thi) = decl.ty.value_range();
            if lo < tlo || hi > thi {
                return Err(Error::Sema(format!(
                    "range annotation of `{}` in `{}` exceeds its type `{}`",
                    decl.name, function.name, decl.ty
                )));
            }
        }
        if let Some(init) = &decl.init {
            check_expr(init, &vars, &function.name)?;
        }
    }
    check_block(&function.body, &vars, defined, function)?;
    Ok(())
}

fn check_block(
    block: &crate::ast::Block,
    vars: &HashSet<&str>,
    defined: &HashMap<String, usize>,
    function: &Function,
) -> Result<()> {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Assign {
                target,
                value,
                line,
                ..
            } => {
                if !vars.contains(target.as_str()) {
                    return Err(Error::Sema(format!(
                        "assignment to undeclared variable `{target}` in `{}` (line {line})",
                        function.name
                    )));
                }
                check_expr(value, vars, &function.name)?;
            }
            Stmt::Call {
                callee, args, line, ..
            } => {
                if let Some(&arity) = defined.get(callee) {
                    if args.len() != arity {
                        return Err(Error::Sema(format!(
                            "call to `{callee}` in `{}` (line {line}) passes {} argument(s) but the definition takes {arity}",
                            function.name,
                            args.len()
                        )));
                    }
                }
                for a in args {
                    check_expr(a, vars, &function.name)?;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                check_expr(cond, vars, &function.name)?;
                check_block(then_branch, vars, defined, function)?;
                if let Some(e) = else_branch {
                    check_block(e, vars, defined, function)?;
                }
            }
            Stmt::Switch {
                selector,
                cases,
                default,
                line,
                ..
            } => {
                check_expr(selector, vars, &function.name)?;
                let mut labels = HashSet::new();
                for case in cases {
                    if !labels.insert(case.value) {
                        return Err(Error::Sema(format!(
                            "duplicate case label {} in switch of `{}` (line {line})",
                            case.value, function.name
                        )));
                    }
                    check_block(&case.body, vars, defined, function)?;
                }
                if let Some(d) = default {
                    check_block(d, vars, defined, function)?;
                }
            }
            Stmt::While {
                cond,
                bound,
                body,
                line,
                ..
            } => {
                if *bound == 0 {
                    return Err(Error::Sema(format!(
                        "loop on line {line} of `{}` is missing a positive `__bound(n)` annotation (required for WCET analysis)",
                        function.name
                    )));
                }
                check_expr(cond, vars, &function.name)?;
                check_block(body, vars, defined, function)?;
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    check_expr(v, vars, &function.name)?;
                }
            }
        }
    }
    Ok(())
}

fn check_expr(expr: &Expr, vars: &HashSet<&str>, fname: &str) -> Result<()> {
    for v in expr.referenced_vars() {
        if !vars.contains(v) {
            return Err(Error::Sema(format!(
                "use of undeclared variable `{v}` in function `{fname}`"
            )));
        }
    }
    Ok(())
}

fn assign_ids(function: &mut Function, next_id: &mut u32) {
    for_each_stmt_in_block_mut(&mut function.body, &mut |stmt| {
        let id = StmtId(*next_id);
        *next_id += 1;
        match stmt {
            Stmt::Assign { id: slot, .. }
            | Stmt::Call { id: slot, .. }
            | Stmt::If { id: slot, .. }
            | Stmt::Switch { id: slot, .. }
            | Stmt::While { id: slot, .. }
            | Stmt::Return { id: slot, .. } => *slot = id,
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    #[test]
    fn assigns_dense_preorder_ids() {
        let p = parse_program("void f(int a) { a = 1; if (a) { a = 2; } a = 3; }").expect("parse");
        let mut ids = Vec::new();
        p.functions[0].for_each_stmt(&mut |s| ids.push(s.id().0));
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(p.stmt_count(), 4);
    }

    #[test]
    fn rejects_undeclared_variable_read() {
        let err = parse_program("void f() { int a; a = b; }").expect_err("should fail");
        assert!(err.to_string().contains("undeclared variable `b`"));
    }

    #[test]
    fn rejects_undeclared_assignment_target() {
        let err = parse_program("void f() { x = 1; }").expect_err("should fail");
        assert!(err.to_string().contains("undeclared variable `x`"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let err = parse_program("void f(int a) { int a; }").expect_err("should fail");
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let err = parse_program("void f() { } void f() { }").expect_err("should fail");
        assert!(err.to_string().contains("duplicate function"));
    }

    #[test]
    fn allows_calls_to_defined_functions() {
        assert!(parse_program("void g() { } void f() { g(); }").is_ok());
    }

    #[test]
    fn rejects_arity_mismatch_on_defined_callee() {
        let err = parse_program("void g(int a) { } void f() { g(); }").expect_err("should fail");
        assert!(err.to_string().contains("0 argument(s)"));
        let err =
            parse_program("void g() { } void f(int a) { g(a, a); }").expect_err("should fail");
        assert!(err.to_string().contains("2 argument(s)"));
    }

    #[test]
    fn allows_calls_to_external_leaves() {
        assert!(parse_program("void f() { printf1(); }").is_ok());
    }

    #[test]
    fn rejects_unbounded_loop() {
        let err = parse_program("void f(int n) { int i; i = 0; while (i < n) { i = i + 1; } }")
            .expect_err("should fail");
        assert!(err.to_string().contains("__bound"));
    }

    #[test]
    fn rejects_reversed_or_oversized_range_annotation() {
        let err = parse_program("void f(int a __range(5, 1)) { }").expect_err("should fail");
        assert!(err.to_string().contains("reversed"));
        let err = parse_program("void f(char a __range(0, 300)) { }").expect_err("should fail");
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_duplicate_case_labels() {
        let err = parse_program("void f(int s) { switch (s) { case 1: break; case 1: break; } }")
            .expect_err("should fail");
        assert!(err.to_string().contains("duplicate case label"));
    }

    #[test]
    fn ids_are_unique_across_functions() {
        let p = parse_program("void f(int a) { a = 1; } void g(int b) { b = 2; b = 3; }")
            .expect("parse");
        let mut ids = Vec::new();
        for f in &p.functions {
            f.for_each_stmt(&mut |s| ids.push(s.id().0));
        }
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(p.stmt_count(), 3);
    }
}
