//! Property tests for the segment log, plus the two-writer lock-contention
//! test.
//!
//! The property: under *any* interleaving of append / read / evict /
//! compact / flush / reopen / crashy-reopen, a read returns either the
//! bit-identical artifact that was put under that key or a clean miss —
//! never a wrong payload, never a panic, never a poisoned directory.
//! Keys are content-addressed in production (same key ⇒ same bytes), so
//! each test key maps to one deterministic report.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tmg_core::pipeline::TieredStore;
use tmg_core::AnalysisReport;
use tmg_service::{FaultKind, FaultPlan, PersistentStore, PersistentStoreConfig};

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tmg-segprop-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The one true value for `key` — content-addressed storage means a key
/// never maps to two different payloads.
fn report_for(key: u64) -> AnalysisReport {
    AnalysisReport {
        function: format!("prop_fn_{key}"),
        path_bound: 1 + u128::from(key % 7),
        segments: 2 + (key % 9) as usize,
        instrumentation_points: 4 + (key % 5) as usize,
        measurements: 10 + u128::from(key) * 3,
        goals: 5 + (key % 4) as usize,
        heuristic_covered: (key % 4) as usize,
        checker_covered: (key % 3) as usize,
        infeasible: (key % 2) as usize,
        unknown: 0,
        measurement_runs: 1 + (key % 6) as usize,
        wcet_bound: 100 + key * 31,
        exhaustive_max: if key.is_multiple_of(3) {
            Some(90 + key * 31)
        } else {
            None
        },
    }
}

fn open_store(root: &Path, plan: FaultPlan) -> Arc<PersistentStore> {
    Arc::new(
        PersistentStore::with_config(
            PersistentStoreConfig::new(root)
                .with_disk_budget(24 * 1024)
                .with_segment_bytes(512)
                .with_fault_plan(plan),
        )
        .expect("open store"),
    )
}

/// Reads through the zero-copy disk route so the memory tier cannot mask a
/// disk-level wrong answer; panics on a payload mismatch.
fn check_read(store: &PersistentStore, key: u64, ever_put: &HashSet<u64>) {
    let got = store.with_bound_view(key, |view| view.map(|v| v.to_report()));
    match got {
        None => {} // a clean miss is always legal
        Some(report) => {
            assert!(
                ever_put.contains(&key),
                "key {key} was never put but read Some"
            );
            assert_eq!(
                report,
                report_for(key),
                "key {key} returned a WRONG payload"
            );
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put(u64),
    Read(u64),
    Compact,
    Flush,
    /// Drop + reopen: exercises publish, snapshot load, and tail scan.
    Reopen,
    /// Drop + reopen with fault shots armed: `n % 3` torn appends and one
    /// mid-compaction crash poised over the following operations.
    CrashyReopen(u64),
    /// Drop + reopen + full recovery scan.
    Recover,
}

fn run_ops(ops: &[Op]) {
    let root = temp_root("ops");
    let mut store = open_store(&root, FaultPlan::none());
    let mut ever_put: HashSet<u64> = HashSet::new();
    for op in ops {
        match op {
            Op::Put(k) => {
                store.put_bound(*k, report_for(*k));
                ever_put.insert(*k);
            }
            Op::Read(k) => check_read(&store, *k, &ever_put),
            Op::Compact => store.compact(),
            Op::Flush => store.flush(),
            Op::Reopen => {
                drop(store);
                store = open_store(&root, FaultPlan::none());
            }
            Op::CrashyReopen(n) => {
                drop(store);
                let plan = FaultPlan::none()
                    .with(FaultKind::TornAppend, n % 3)
                    .with(FaultKind::CrashMidCompaction, 1);
                store = open_store(&root, plan);
            }
            Op::Recover => {
                drop(store);
                store = open_store(&root, FaultPlan::none());
                store.recovery_scan();
            }
        }
    }
    // Final sweep: a fresh fault-free process must still honour the
    // invariant for every key ever touched, and recovery must be clean.
    drop(store);
    let fresh = open_store(&root, FaultPlan::none());
    fresh.recovery_scan();
    for k in 0..8u64 {
        check_read(&fresh, k, &ever_put);
    }
    drop(fresh);
    let _ = std::fs::remove_dir_all(&root);
}

/// Expands a seed into a deterministic op sequence (the vendored proptest
/// generates integers only, so the structure comes from a splitmix walk).
fn ops_from_seed(seed: u64, len: u64) -> Vec<Op> {
    let mut x = seed | 1;
    let mut next = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let r = next();
            let key = r >> 32 & 7;
            match r % 17 {
                0..=5 => Op::Put(key),
                6..=11 => Op::Read(key),
                12 => Op::Compact,
                13 => Op::Flush,
                14 => Op::Reopen,
                15 => Op::CrashyReopen(r >> 16 & 7),
                _ => Op::Recover,
            }
        })
        .collect()
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn any_interleaving_yields_bit_identical_or_clean_miss(
            seed in 0u64..u64::MAX,
            len in 1u64..48,
        ) {
            run_ops(&ops_from_seed(seed, len));
        }
    }
}

/// A deterministic worst case the generator may not hit: every key torn on
/// first write, then healed, then compacted twice around a crash.
#[test]
fn the_torn_then_healed_then_crash_compacted_sequence_is_sound() {
    let mut ops = Vec::new();
    ops.push(Op::CrashyReopen(2)); // arms 2 torn appends
    for k in 0..8 {
        ops.push(Op::Put(k));
        ops.push(Op::Read(k));
    }
    ops.push(Op::Recover);
    for k in 0..8 {
        ops.push(Op::Put(k)); // duplicates → dead bytes
    }
    ops.push(Op::CrashyReopen(1));
    ops.push(Op::Compact); // crashes mid-compaction
    for k in 0..8 {
        ops.push(Op::Read(k));
    }
    ops.push(Op::Compact); // retry completes
    ops.push(Op::Recover);
    for k in 0..8 {
        ops.push(Op::Read(k));
    }
    run_ops(&ops);
}

/// Two stores over one cache directory — the in-test stand-in for two
/// processes sharing `TMG_CACHE_DIR`.  Advisory segment locks must give
/// each writer its own active segment; after both exit, a third store must
/// see a consistent union index: every key from either writer, bit-identical.
#[test]
fn two_writers_over_one_directory_converge_to_a_consistent_index() {
    // Default (large) budget: nothing may be evicted, so every key from
    // either writer must survive to the third store.
    fn open_plain(root: &Path) -> Arc<PersistentStore> {
        Arc::new(
            PersistentStore::with_config(
                PersistentStoreConfig::new(root).with_segment_bytes(4 * 1024),
            )
            .expect("open store"),
        )
    }

    let root = temp_root("two-writers");
    let a = open_plain(&root);
    let b = open_plain(&root);

    let (a2, b2) = (a.clone(), b.clone());
    let ta = std::thread::spawn(move || {
        for k in 0..48u64 {
            a2.put_bound(k, report_for(k));
        }
        // Shared keys: both writers append bit-identical frames.
        for k in 200..216u64 {
            a2.put_bound(k, report_for(k));
        }
    });
    let tb = std::thread::spawn(move || {
        for k in 48..96u64 {
            b2.put_bound(k, report_for(k));
        }
        for k in 200..216u64 {
            b2.put_bound(k, report_for(k));
        }
    });
    ta.join().expect("writer a");
    tb.join().expect("writer b");

    // Each writer must at least see its own appends (the peer's may need a
    // rescan and are allowed to be misses here — but never wrong).
    let all: HashSet<u64> = (0..96).chain(200..216).collect();
    for k in 0..48u64 {
        let got = a.with_bound_view(k, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(report_for(k)), "writer a lost its own key {k}");
    }
    for k in 48..96u64 {
        let got = b.with_bound_view(k, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(report_for(k)), "writer b lost its own key {k}");
    }
    check_read(&a, 60, &all);
    check_read(&b, 10, &all);

    // The two writers must have used distinct active segments.
    assert!(
        a.stats().segment.segments >= 1 && b.stats().segment.segments >= 1,
        "both writers must own segments"
    );
    drop(a);
    drop(b);

    // A third process sees the union, fully warm and bit-identical, no
    // matter whose snapshot publish won the last-writer race.
    let c = open_plain(&root);
    for &k in &all {
        let got = c.with_bound_view(k, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(report_for(k)), "union key {k} after both exit");
    }
    assert!(
        c.stats().segment.segments >= 2,
        "two writers, two+ segments"
    );
    // No stale lock files survive a clean exit.
    let locks = std::fs::read_dir(root.join("segments"))
        .map(|it| {
            it.flatten()
                .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("lock"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(locks, 0, "clean exits must release segment locks");
    let _ = std::fs::remove_dir_all(&root);
}
