//! Fault-injection acceptance tests for the crash-safe disk tier.
//!
//! The invariant under test, for every injected fault class: the analysis
//! returns either the bit-identical correct artifact or a clean
//! miss + recompute — never a wrong or partial result — and a fresh process
//! after an injected crash serves warm hits bit-identical to a fault-free
//! run.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tmg_core::pipeline::{Stage, STAGES};
use tmg_core::{AnalysisReport, WcetAnalysis};
use tmg_minic::parse_function;
use tmg_service::{FaultKind, FaultPlan, PersistentStore, PersistentStoreConfig};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmg-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn controller() -> tmg_minic::Function {
    // The infeasible `demand > 3 && demand < 2` pair forces a residual
    // checker goal, so the prepare-model stage and the sharded explorer run.
    parse_function(
        r#"
        void controller(char demand __range(0, 6), bool enabled) {
            if (enabled) {
                if (demand > 3) { heavy(); } else { light(); }
            } else {
                off();
            }
            if (demand > 3) { if (demand < 2) { never(); } }
            if (demand == 0) { idle(); }
        }
        "#,
    )
    .expect("parse")
}

fn open_with(root: &Path, plan: FaultPlan) -> Arc<PersistentStore> {
    Arc::new(
        PersistentStore::with_config(PersistentStoreConfig::new(root).with_fault_plan(plan))
            .expect("open cache"),
    )
}

fn analyse(store: &Arc<PersistentStore>) -> AnalysisReport {
    WcetAnalysis::new(2)
        .with_store(store.clone())
        .analyse(&controller())
        .expect("analysis")
}

fn reference() -> AnalysisReport {
    WcetAnalysis::new(2)
        .analyse(&controller())
        .expect("storeless reference")
}

#[test]
fn torn_writes_never_corrupt_a_result_and_the_recovery_scan_quarantines_them() {
    let root = temp_root("torn");
    let reference = reference();

    // Cold run with every store torn mid-frame: the result must still be
    // bit-identical (the cache is an accelerator, never an authority).
    let faulty = open_with(&root, FaultPlan::none().with(FaultKind::TornWrite, 100));
    assert_eq!(analyse(&faulty), reference);
    assert_eq!(
        faulty.stats().disk.iter().map(|s| s.stores).sum::<u64>(),
        0,
        "every write was torn; none may count as a store"
    );

    // A fresh process's recovery scan quarantines all six torn frames...
    let fresh = open_with(&root, FaultPlan::none());
    let report = fresh.recovery_scan();
    assert_eq!(report.scanned, 6, "one torn frame per stage");
    assert_eq!(report.quarantined, 6, "every torn frame fails verification");
    let stats = fresh.stats();
    for stage in STAGES {
        assert_eq!(stats.disk_stage(stage).quarantined, 1, "stage {stage}");
    }

    // ...after which the rerun is a clean miss + recompute: no runtime
    // discards, correct result, and a third process is fully warm.
    assert_eq!(analyse(&fresh), reference);
    assert_eq!(fresh.stats().total_computes(), 6);
    let healed = open_with(&root, FaultPlan::none());
    assert_eq!(healed.recovery_scan().quarantined, 0);
    assert_eq!(analyse(&healed), reference);
    assert_eq!(healed.stats().total_computes(), 0, "fully warm after heal");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_before_publish_leaves_no_partial_frame_behind() {
    let root = temp_root("crash-before");
    let reference = reference();

    // The first write "crashes" after fsync but before the atomic rename.
    let faulty = open_with(
        &root,
        FaultPlan::none().with(FaultKind::CrashBeforePublish, 1),
    );
    assert_eq!(analyse(&faulty), reference);

    // The unpublished artifact exists only as an orphaned `.tmp`; every
    // published `.tmga` frame verifies.  This is the regression test for
    // the old non-atomic write path, which could leave a stray partial
    // `.tmga` when the process died mid-write.
    let orphans = count_files(&root, "tmp");
    assert_eq!(orphans, 1, "the crashed write leaves exactly one orphan");
    assert_eq!(count_files(&root, "tmga"), 5, "five frames published");

    // A fresh process reclaims the orphan; the surviving bound frame still
    // verifies, so the warm fast-path serves the result without ever
    // touching the lost upstream stage.
    let fresh = open_with(&root, FaultPlan::none());
    let report = fresh.recovery_scan();
    assert_eq!(report.reclaimed_tmp, 1);
    assert_eq!(report.quarantined, 0, "published frames all verify");
    assert_eq!(count_files(&root, "tmp"), 0);
    assert_eq!(analyse(&fresh), reference);
    assert_eq!(fresh.stats().total_computes(), 0, "bound fast-path hit");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_before_every_publish_degrades_to_a_fully_cold_recompute() {
    let root = temp_root("crash-before-all");
    let reference = reference();
    let faulty = open_with(
        &root,
        FaultPlan::none().with(FaultKind::CrashBeforePublish, 100),
    );
    assert_eq!(analyse(&faulty), reference);
    assert_eq!(count_files(&root, "tmga"), 0, "nothing was ever published");

    // Every artifact died pre-rename: the fresh process reclaims all six
    // orphans and recomputes every stage — a clean miss, never a wrong or
    // partial answer.
    let fresh = open_with(&root, FaultPlan::none());
    let report = fresh.recovery_scan();
    assert_eq!(report.reclaimed_tmp, 6);
    assert_eq!(report.quarantined, 0);
    assert_eq!(analyse(&fresh), reference);
    assert_eq!(fresh.stats().total_computes(), 6, "fully cold recompute");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_after_publish_still_serves_the_frame_warm_in_a_fresh_process() {
    let root = temp_root("crash-after");
    let reference = reference();
    let faulty = open_with(
        &root,
        FaultPlan::none().with(FaultKind::CrashAfterPublish, 2),
    );
    assert_eq!(analyse(&faulty), reference);

    // The crashes happened *after* the atomic rename: all six frames are
    // durable, so a fresh process is fully warm and bit-identical.
    let fresh = open_with(&root, FaultPlan::none());
    assert_eq!(fresh.recovery_scan().quarantined, 0);
    assert_eq!(analyse(&fresh), reference);
    assert_eq!(fresh.stats().total_computes(), 0, "all frames published");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn short_reads_and_bit_flips_degrade_to_a_clean_recompute() {
    let root = temp_root("read-faults");
    let reference = reference();
    assert_eq!(analyse(&open_with(&root, FaultPlan::none())), reference);

    for (tag, kind) in [
        ("short_read", FaultKind::ShortRead),
        ("bit_flip", FaultKind::BitFlip),
    ] {
        // A warm process whose first load is damaged in flight: the frame
        // fails verification, is discarded, and the stage recomputes — the
        // result is still bit-identical, and the re-stored frame heals the
        // cache for the next process.
        let faulty = open_with(&root, FaultPlan::none().with(kind, 1));
        assert_eq!(
            analyse(&faulty),
            reference,
            "{tag} must not change a result"
        );
        assert_eq!(faulty.fault_shots_fired(), 1, "{tag} must actually fire");
        let stats = faulty.stats();
        assert_eq!(
            stats.disk_stage(Stage::Bound).misses,
            1,
            "{tag}: the damaged bound frame is a miss, not a hit"
        );
        assert!(stats.total_computes() >= 1, "{tag}: recompute happened");

        let healed = open_with(&root, FaultPlan::none());
        assert_eq!(analyse(&healed), reference);
        assert_eq!(healed.stats().total_computes(), 0, "{tag}: cache healed");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn the_issue_example_plan_parses_and_drives_a_mixed_fault_session() {
    let root = temp_root("mixed");
    let reference = reference();
    let plan = FaultPlan::parse("torn_write:3,crash_after_publish:1").expect("plan");
    let faulty = open_with(&root, plan.clone());
    assert_eq!(analyse(&faulty), reference);
    assert_eq!(plan.fired(FaultKind::TornWrite), 3);
    assert_eq!(plan.fired(FaultKind::CrashAfterPublish), 1);

    // Recovery quarantines the three torn frames; the crash-after-publish
    // frame and the two clean ones — including the bound frame — survive
    // and verify, so the rerun is served warm off the bound fast-path.
    let fresh = open_with(&root, FaultPlan::none());
    let report = fresh.recovery_scan();
    assert_eq!(report.quarantined, 3);
    assert_eq!(report.scanned, 6);
    assert_eq!(analyse(&fresh), reference);
    assert_eq!(fresh.stats().total_computes(), 0, "bound frame survived");
    let _ = std::fs::remove_dir_all(&root);
}

/// Files under the cache root with the given extension.
fn count_files(root: &Path, ext: &str) -> usize {
    let mut n = 0;
    for stage in STAGES {
        let Ok(entries) = std::fs::read_dir(root.join(stage.name())) else {
            continue;
        };
        n += entries
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(ext))
            .count();
    }
    n
}
