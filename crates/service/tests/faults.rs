//! Crash-consistency tests for the segment-log disk tier, driven by the
//! deterministic [`FaultPlan`] injector.
//!
//! The invariant under test, for every fault site: an injected fault yields
//! either a *bit-identical* artifact or a *clean miss + recompute* — never a
//! wrong answer, never a poisoned cache, never a lost analysis.  The fault
//! sites map to the log's real I/O boundaries:
//!
//! * `torn_append`      — a record append dies halfway; the active segment
//!   is abandoned with a torn tail.
//! * `crash_after_publish` — an append is written and synced but the writer
//!   dies before accounting/publish; the record is durable yet unindexed.
//! * `torn_write`       — the index *snapshot* is torn at its final path;
//!   the snapshot is an accelerator, so data must survive via a scan.
//! * `crash_before_publish` — the snapshot temp file is written but never
//!   renamed; an orphan `index.*.tmp` remains.
//! * `short_read` / `bit_flip` — a warm read returns damaged bytes; the
//!   digest check must turn it into a miss.
//! * `crash_mid_compaction` — compaction copies the victim's live records
//!   but dies before deleting the victim; bit-identical duplicates remain.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tmg_core::pipeline::{Stage, STAGES};
use tmg_core::{AnalysisReport, WcetAnalysis};
use tmg_minic::parse_function;
use tmg_service::{FaultKind, FaultPlan, PersistentStore, PersistentStoreConfig};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmg-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn controller() -> tmg_minic::Function {
    // The infeasible `demand > 3 && demand < 2` pair forces a residual
    // checker goal, so the prepare-model stage and the sharded explorer run.
    parse_function(
        r#"
        void controller(char demand __range(0, 6), bool enabled) {
            if (enabled) {
                if (demand > 3) { heavy(); } else { light(); }
            } else {
                off();
            }
            if (demand > 3) { if (demand < 2) { never(); } }
            if (demand == 0) { idle(); }
        }
        "#,
    )
    .expect("parse")
}

fn open_with(root: &Path, plan: FaultPlan) -> Arc<PersistentStore> {
    Arc::new(
        PersistentStore::with_config(PersistentStoreConfig::new(root).with_fault_plan(plan))
            .expect("open cache"),
    )
}

fn open(root: &Path) -> Arc<PersistentStore> {
    open_with(root, FaultPlan::none())
}

fn analyse(store: &Arc<PersistentStore>) -> AnalysisReport {
    WcetAnalysis::new(2)
        .with_store(store.clone())
        .analyse(&controller())
        .expect("analysis")
}

fn reference() -> AnalysisReport {
    WcetAnalysis::new(2)
        .analyse(&controller())
        .expect("storeless reference")
}

#[test]
fn a_torn_append_degrades_to_a_clean_miss_and_heals() {
    let root = temp_root("torn-append");
    // Every append dies halfway: nothing lands on disk, each abandoned
    // segment keeps a torn tail past its watermark.
    let plan = FaultPlan::none().with(FaultKind::TornAppend, 100);
    let store = open_with(&root, plan);
    let first = analyse(&store);
    assert_eq!(
        first,
        reference(),
        "a torn append must not change the bound"
    );
    let stats = store.stats();
    let stored: u64 = (0..6).map(|i| stats.disk[i].stores).sum();
    assert_eq!(stored, 0, "no torn frame may count as stored");
    assert_eq!(store.fault_shots_fired(), 6);
    drop(store);

    // A fresh process scans the torn tails, quarantines all six, and
    // recomputes cleanly.
    let fresh = open(&root);
    let report = fresh.recovery_scan();
    assert_eq!(
        report.quarantined, 6,
        "every torn record must be quarantined: {report:?}"
    );
    let healed = analyse(&fresh);
    assert_eq!(healed, reference());
    assert_eq!(fresh.stats().total_computes(), 6, "cold after quarantine");
    drop(fresh);

    // Third process: fully warm, bit-identical.
    let warm = open(&root);
    assert_eq!(analyse(&warm), reference());
    assert_eq!(warm.stats().total_computes(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_after_a_durable_append_is_recovered_by_the_tail_scan() {
    let root = temp_root("crash-after");
    // Every append (the bound included) is written and synced, but the
    // writer "dies" before accounting: the records are durable yet never
    // indexed or published by this process.
    let plan = FaultPlan::none().with(FaultKind::CrashAfterPublish, 100);
    let store = open_with(&root, plan);
    let first = analyse(&store);
    assert_eq!(first, reference());
    assert_eq!(store.fault_shots_fired(), 6);
    let stats = store.stats();
    let stored: u64 = (0..6).map(|i| stats.disk[i].stores).sum();
    assert_eq!(stored, 0, "a crashed append must not count as stored");
    drop(store);

    // A fresh process must find the unaccounted records by scanning past
    // the published watermarks — zero recomputation, bit-identical.
    let fresh = open(&root);
    assert_eq!(analyse(&fresh), reference());
    let stats = fresh.stats();
    assert_eq!(
        stats.total_computes(),
        0,
        "durable-but-unindexed records must be recovered: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_torn_index_snapshot_degrades_to_a_scan_rebuild() {
    let root = temp_root("torn-index");
    // The only publish in this run is the one at drop; it tears the
    // snapshot at its final path.
    let plan = FaultPlan::none().with(FaultKind::TornWrite, 100);
    let store = open_with(&root, plan);
    let first = analyse(&store);
    drop(store);
    assert!(
        root.join("index.tmgi").exists(),
        "the torn snapshot lands at the final path"
    );

    // The snapshot is an accelerator, not the authority: a fresh process
    // rejects the torn snapshot, rebuilds from the segment files, and is
    // fully warm.
    let fresh = open(&root);
    assert_eq!(analyse(&fresh), first);
    let stats = fresh.stats();
    assert_eq!(stats.total_computes(), 0, "data must survive a torn index");
    assert_eq!(
        stats.segment.index_rebuilds, 1,
        "the torn snapshot must be counted as a rebuild"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_before_the_snapshot_rename_leaves_only_a_reclaimable_orphan() {
    let root = temp_root("crash-before");
    let plan = FaultPlan::none().with(FaultKind::CrashBeforePublish, 100);
    let store = open_with(&root, plan);
    let first = analyse(&store);
    drop(store);
    assert!(
        !root.join("index.tmgi").exists(),
        "the rename never happened"
    );

    // Segment data is durable independently of the snapshot: warm start
    // via scan, and the recovery pass reclaims the orphan temp file.
    let fresh = open(&root);
    let report = fresh.recovery_scan();
    assert!(
        report.reclaimed_tmp >= 1,
        "the orphan index temp must be reclaimed: {report:?}"
    );
    assert_eq!(report.quarantined, 0);
    assert_eq!(analyse(&fresh), first);
    assert_eq!(fresh.stats().total_computes(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn short_reads_and_bit_flips_turn_into_misses_not_wrong_bounds() {
    let root = temp_root("read-damage");
    let cold = open(&root);
    let first = analyse(&cold);
    drop(cold);

    for kind in [FaultKind::ShortRead, FaultKind::BitFlip] {
        let plan = FaultPlan::none().with(kind, 1);
        let store = open_with(&root, plan);
        let report = analyse(&store);
        assert_eq!(report, first, "{kind:?} must never change a bound");
        let stats = store.stats();
        assert_eq!(
            stats.disk_stage(Stage::Bound).misses,
            1,
            "{kind:?}: the damaged read must be a miss, not a hit"
        );
        assert!(
            stats.total_computes() >= 1,
            "{kind:?}: the damaged artifact must recompute"
        );
        assert_eq!(store.fault_shots_fired(), 1);
        drop(store);
        // The recompute re-appended the frame: the next process is warm.
        let healed = open(&root);
        assert_eq!(analyse(&healed), first);
        assert_eq!(healed.stats().total_computes(), 0, "{kind:?} must heal");
        drop(healed);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_crash_mid_compaction_leaves_only_bit_identical_duplicates() {
    use tmg_core::pipeline::TieredStore;

    fn report_for(i: u64) -> AnalysisReport {
        AnalysisReport {
            function: format!("dup_{i}"),
            path_bound: 2,
            segments: 4,
            instrumentation_points: 8,
            measurements: 30 + u128::from(i),
            goals: 6,
            heuristic_covered: 4,
            checker_covered: 2,
            infeasible: 0,
            unknown: 0,
            measurement_runs: 3,
            wcet_bound: 500 + i * 13,
            exhaustive_max: None,
        }
    }

    let root = temp_root("crash-compaction");
    // Two generations of identical frames in one (default-sized, so never
    // rotated) segment: 24 live records, 24 dead.  The clean exit seals it.
    let writer = open(&root);
    for _ in 0..2 {
        for i in 0..24u64 {
            writer.put_bound(7000 + i, report_for(i));
        }
    }
    drop(writer);

    // Compaction in the next process picks the half-dead segment, copies
    // its first live record, and "dies" before deleting the victim.
    let plan = FaultPlan::none().with(FaultKind::CrashMidCompaction, 1);
    let store = open_with(&root, plan);
    store.compact();
    assert_eq!(store.fault_shots_fired(), 1, "the crash shot must fire");
    assert!(store.stats().segment.compacted_frames >= 1);
    // In-process, every key still reads bit-identically (duplicates are
    // content-addressed: either copy is the right answer).
    for i in 0..24u64 {
        let got = store.with_bound_view(7000 + i, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(report_for(i)), "key {i} during the crash run");
    }
    drop(store);

    // A fresh process reconciles the duplicates (last writer wins — both
    // copies are identical) and a clean compaction finishes the job.
    let fresh = open(&root);
    for i in 0..24u64 {
        let got = fresh.with_bound_view(7000 + i, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(report_for(i)), "key {i} after the crash");
    }
    fresh.compact();
    assert!(fresh.stats().segment.compactions >= 1);
    for i in 0..24u64 {
        let got = fresh.with_bound_view(7000 + i, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(report_for(i)), "key {i} after the retry");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_mixed_fault_plan_still_yields_the_reference_bound() {
    let root = temp_root("mixed");
    let plan = FaultPlan::parse("torn_append:3,crash_after_publish:1").expect("parse");
    let store = open_with(&root, plan);
    let first = analyse(&store);
    assert_eq!(first, reference());
    assert_eq!(store.fault_shots_fired(), 4);
    drop(store);

    // Three torn tails quarantined, one durable-but-unindexed record
    // recovered by the scan, two indexed normally; the bound artifact was
    // appended after the shots ran out, so the fresh process serves it warm.
    let fresh = open(&root);
    let report = fresh.recovery_scan();
    assert_eq!(report.quarantined, 3, "{report:?}");
    assert_eq!(analyse(&fresh), reference());
    assert_eq!(fresh.stats().total_computes(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn an_unarmed_plan_is_inert_and_counts_nothing() {
    let root = temp_root("inert");
    let store = open_with(&root, FaultPlan::none());
    let first = analyse(&store);
    assert_eq!(first, reference());
    assert_eq!(store.fault_shots_fired(), 0);
    let stats = store.stats();
    for stage in STAGES {
        assert_eq!(stats.disk_stage(stage).stores, 1);
    }
    let _ = std::fs::remove_dir_all(&root);
}
