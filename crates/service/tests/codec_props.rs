//! Property-based codec guarantees: for random mini-C functions and random
//! path bounds,
//!
//! * every artifact round-trips — `decode(encode(x))` equals `x` and
//!   re-encoding is bit-identical (the on-disk representation is a pure
//!   function of the artifact value);
//! * any single-byte corruption of a frame is *detected* — decode returns an
//!   error (never a panic, never a silently different artifact);
//! * a frame written by a different codec version is a clean miss.

use proptest::prelude::*;
use tmg_core::pipeline::{self, ArtifactStore, TieredStore};
use tmg_core::WcetAnalysis;
use tmg_minic::parse_function;
use tmg_service::codec;

/// Deterministic draw stream decoding one `u64` seed into small choices
/// (the vendored proptest only supplies integer-range strategies).
struct Draws(u64);

impl Draws {
    fn next(&mut self, n: u64) -> u64 {
        let v = self.0 % n;
        self.0 = (self.0 / n).rotate_left(17) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v
    }
}

/// Builds a random mini-C function with nested branches, switches and
/// bounded loops over two small-domain parameters (the partition-invariant
/// suite uses the same shape).
fn random_function(shape: u64, depth: u64) -> String {
    let mut d = Draws(shape);
    let mut decls = String::new();
    let mut body = String::new();
    let mut label = 0usize;
    emit_block(&mut d, depth, &mut decls, &mut body, &mut label, 1);
    format!("void f(char a __range(0, 4), char b __range(0, 3)) {{\n{decls}{body}}}\n")
}

fn emit_block(
    d: &mut Draws,
    depth: u64,
    decls: &mut String,
    body: &mut String,
    label: &mut usize,
    indent: usize,
) {
    let stmts = 1 + d.next(3);
    for _ in 0..stmts {
        let k = *label;
        *label += 1;
        let pad = "    ".repeat(indent);
        let var = if d.next(2) == 0 { "a" } else { "b" };
        match d.next(if depth > 0 { 5 } else { 2 }) {
            0 => body.push_str(&format!("{pad}call{k}();\n")),
            1 => {
                let lit = d.next(5);
                body.push_str(&format!("{pad}if ({var} > {lit}) {{ leaf{k}(); }}\n"));
            }
            2 => {
                let lit = d.next(4);
                body.push_str(&format!("{pad}if ({var} == {lit}) {{\n"));
                emit_block(d, depth - 1, decls, body, label, indent + 1);
                body.push_str(&format!("{pad}}} else {{\n"));
                emit_block(d, depth - 1, decls, body, label, indent + 1);
                body.push_str(&format!("{pad}}}\n"));
            }
            3 => {
                body.push_str(&format!("{pad}switch ({var}) {{\n"));
                let arms = 1 + d.next(3);
                for arm in 0..arms {
                    body.push_str(&format!("{pad}case {arm}:\n"));
                    emit_block(d, depth - 1, decls, body, label, indent + 1);
                    body.push_str(&format!("{pad}    break;\n"));
                }
                body.push_str(&format!("{pad}default:\n"));
                emit_block(d, depth - 1, decls, body, label, indent + 1);
                body.push_str(&format!("{pad}    break;\n"));
                body.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                decls.push_str(&format!("    char i{k} = 0;\n"));
                body.push_str(&format!(
                    "{pad}while (i{k} < {var}) __bound(3) {{\n{pad}    i{k} = i{k} + 1;\n"
                ));
                emit_block(d, depth.saturating_sub(1), decls, body, label, indent + 1);
                body.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowered_and_partition_artifacts_round_trip_bit_identically(
        shape in 0u64..u64::MAX,
        depth in 1u64..4,
        bound_pick in 0u64..6,
    ) {
        let src = random_function(shape, depth);
        let f = parse_function(&src).expect("generated function parses");
        let store = ArtifactStore::new();
        let lowered = store.lowered(&f);
        let bytes = codec::encode_lowered(&lowered);
        let back = codec::decode_lowered(&bytes, lowered.function_key).expect("decode lowered");
        prop_assert_eq!(&back.lowered.cfg, &lowered.lowered.cfg, "cfg diverges on {}", src);
        prop_assert_eq!(&back.lowered.regions, &lowered.lowered.regions);
        prop_assert_eq!(&back.counts, &lowered.counts);
        prop_assert_eq!(&back.decision_stmts, &lowered.decision_stmts);
        prop_assert_eq!(codec::encode_lowered(&back), bytes, "re-encode differs on {}", src);

        let bound = [1u128, 2, 3, 5, 50, u128::MAX][bound_pick as usize];
        let partition = store.partition(&lowered, bound);
        let bytes = codec::encode_partition(&partition);
        let back = codec::decode_partition(&bytes, partition.key).expect("decode partition");
        prop_assert_eq!(&back.plan, &partition.plan, "plan diverges on {}", src);
        prop_assert_eq!(codec::encode_partition(&back), bytes);
    }

    #[test]
    fn any_truncation_is_a_clean_error_never_a_panic(
        shape in 0u64..u64::MAX,
        cut_seed in 0u64..u64::MAX,
    ) {
        let src = random_function(shape, 2);
        let f = parse_function(&src).expect("generated function parses");
        let store = ArtifactStore::new();
        let lowered = store.lowered(&f);
        let good = codec::encode_lowered(&lowered);
        let cut = (cut_seed % good.len() as u64) as usize;
        prop_assert!(
            codec::decode_lowered(&good[..cut], lowered.function_key).is_err(),
            "a frame truncated to {} of {} bytes must be a clean miss on {}",
            cut, good.len(), src
        );
        prop_assert!(
            codec::verify_frame(&good[..cut], pipeline::Stage::Lower, lowered.function_key)
                .is_err(),
            "the recovery scan must reject the same truncation"
        );
    }

    #[test]
    fn single_byte_corruption_is_always_detected(
        shape in 0u64..u64::MAX,
        victim in 0u64..u64::MAX,
        flip in 1u64..256,
    ) {
        let src = random_function(shape, 2);
        let f = parse_function(&src).expect("generated function parses");
        let store = ArtifactStore::new();
        let lowered = store.lowered(&f);
        let good = codec::encode_lowered(&lowered);
        let mut bad = good.clone();
        let at = (victim % bad.len() as u64) as usize;
        bad[at] ^= flip as u8; // flip != 0, so the frame genuinely changes
        let decoded = codec::decode_lowered(&bad, lowered.function_key);
        prop_assert!(
            decoded.is_err(),
            "corrupting byte {} of {} must not decode on {}",
            at, good.len(), src
        );
    }
}

proptest! {
    // The full chain (testgen runs a genetic search + model checker per
    // case) is heavier, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn the_full_artifact_chain_round_trips(
        shape in 0u64..u64::MAX,
        bound_pick in 0u64..4,
    ) {
        let src = random_function(shape, 2);
        let f = parse_function(&src).expect("generated function parses");
        let bound = [1u128, 2, 5, 1000][bound_pick as usize];
        let store = ArtifactStore::new();
        let analysis = WcetAnalysis::new(bound);
        let staged = pipeline::analyse_staged_detailed(&store, &analysis, &f, None)
            .expect("analysis");

        let bytes = codec::encode_suite(&staged.suite);
        let back = codec::decode_suite(&bytes, staged.suite.key).expect("decode suite");
        prop_assert_eq!(&back.suite, &staged.suite.suite, "suite diverges on {}", src);
        prop_assert_eq!(codec::encode_suite(&back), bytes);

        let bytes = codec::encode_campaign(&staged.campaign);
        let back = codec::decode_campaign(&bytes, staged.campaign.key).expect("decode campaign");
        prop_assert_eq!(&back.campaign, &staged.campaign.campaign);
        prop_assert_eq!(codec::encode_campaign(&back), bytes);

        let key = pipeline::bound_key(&analysis, tmg_cfg::function_fingerprint(&f), None);
        let bound_artifact = pipeline::BoundArtifact { key, report: staged.report.clone() };
        let bytes = codec::encode_bound(&bound_artifact);
        let back = codec::decode_bound(&bytes, key).expect("decode bound");
        prop_assert_eq!(&back.report, &staged.report);
        prop_assert_eq!(codec::encode_bound(&back), bytes);

        // Prepared model (may be absent when no residual goal forced it —
        // build it explicitly so the round-trip is always exercised).
        let model = store.prepared_model(&f, &store.lowered(&f), &analysis.generator.checker);
        let bytes = codec::encode_prepared_model(&model);
        let back = codec::decode_prepared_model(&bytes, model.key).expect("decode model");
        match (&model.shared, &back.shared) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.model(), b.model());
                prop_assert_eq!(a.union(), b.union());
            }
            (None, None) => {}
            _ => prop_assert!(false, "shared-model presence must round-trip on {}", src),
        }
        prop_assert_eq!(codec::encode_prepared_model(&back), bytes);
    }
}

/// Recomputes a frame's trailing digest so that *only* the check under
/// test can reject it (same technique as the version-bump test).
fn repair_digest(frame: &mut [u8]) {
    use std::hash::Hasher;
    let body_end = frame.len() - 8;
    let mut h = tmg_cfg::StableHasher::new();
    h.write(&frame[..body_end]);
    let digest = h.finish();
    frame[body_end..].copy_from_slice(&digest.to_le_bytes());
}

#[test]
fn truncation_at_every_header_byte_boundary_is_a_clean_error() {
    let f = parse_function("void f(char a __range(0, 3)) { if (a > 1) { x(); } }").expect("parse");
    let store = ArtifactStore::new();
    let lowered = store.lowered(&f);
    let good = codec::encode_lowered(&lowered);
    // Every prefix is rejected without a panic — most importantly each of
    // the 24 header byte boundaries and each digest byte, where a sloppy
    // decoder would index past the end.
    for cut in 0..good.len() {
        assert!(
            codec::decode_lowered(&good[..cut], lowered.function_key).is_err(),
            "a frame truncated to {cut} of {} bytes must not decode",
            good.len()
        );
        assert!(
            codec::verify_frame(&good[..cut], pipeline::Stage::Lower, lowered.function_key)
                .is_err(),
            "the recovery scan must reject the truncation to {cut} bytes"
        );
    }
}

#[test]
fn a_zero_length_payload_is_a_valid_frame_but_a_clean_typed_miss() {
    let frame = codec::encode_frame(pipeline::Stage::Lower, 42, &[]);
    // The frame layer round-trips an empty payload...
    assert_eq!(
        codec::decode_frame(&frame, pipeline::Stage::Lower, 42).expect("empty frame verifies"),
        &[] as &[u8]
    );
    assert!(codec::verify_frame(&frame, pipeline::Stage::Lower, 42).is_ok());
    // ...but the typed decoder reports a malformed payload, never a panic.
    assert!(matches!(
        codec::decode_lowered(&frame, 42),
        Err(codec::CodecError::Malformed(_))
    ));
}

#[test]
fn a_declared_payload_length_beyond_the_frame_is_rejected() {
    let f = parse_function("void f(char a __range(0, 3)) { if (a > 1) { x(); } }").expect("parse");
    let store = ArtifactStore::new();
    let lowered = store.lowered(&f);
    let mut frame = codec::encode_lowered(&lowered);
    // Claim a payload far larger than the file and repair the digest, so
    // only the length check can reject the frame: a decoder trusting the
    // declared length would read past the end of the mapping.
    frame[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    repair_digest(&mut frame);
    assert!(matches!(
        codec::decode_lowered(&frame, lowered.function_key),
        Err(codec::CodecError::Malformed(
            "payload length disagrees with frame"
        ))
    ));
    assert!(codec::verify_frame(&frame, pipeline::Stage::Lower, lowered.function_key).is_err());

    // The under-declared twin: the length field claims less than the frame
    // holds.  Same clean rejection.
    let mut frame = codec::encode_lowered(&lowered);
    frame[16..24].copy_from_slice(&0u64.to_le_bytes());
    repair_digest(&mut frame);
    assert!(matches!(
        codec::decode_lowered(&frame, lowered.function_key),
        Err(codec::CodecError::Malformed(
            "payload length disagrees with frame"
        ))
    ));
}

#[test]
fn a_version_bump_invalidates_stored_frames() {
    let f = parse_function("void f(char a __range(0, 3)) { if (a > 1) { x(); } }").expect("parse");
    let store = ArtifactStore::new();
    let lowered = store.lowered(&f);
    let mut frame = codec::encode_lowered(&lowered);
    // Patch the version field to a future codec and repair the digest so
    // *only* the version check can reject it.
    let next = codec::CODEC_VERSION + 1;
    frame[4..6].copy_from_slice(&next.to_le_bytes());
    let body_end = frame.len() - 8;
    let digest = {
        use std::hash::Hasher;
        let mut h = tmg_cfg::StableHasher::new();
        h.write(&frame[..body_end]);
        h.finish()
    };
    frame[body_end..].copy_from_slice(&digest.to_le_bytes());
    assert!(matches!(
        codec::decode_lowered(&frame, lowered.function_key),
        Err(codec::CodecError::VersionMismatch { found }) if found == next
    ));
}
