//! Schema-stability test for the `stats` snapshot.
//!
//! PR 9 replaced the scattered counter renderers with the unified
//! metrics registry and renamed the snapshot schema from
//! `tmg-tier-stats/v1` to `tmg-obs-stats/v1`.  The contract of that
//! migration is that only the `schema` *value* changed: every key a
//! `tmg-tier-stats/v1` consumer could have depended on must still
//! resolve.  The golden key list lives in
//! `tests/golden/tier-stats-keys.txt`.

use std::io::Cursor;
use std::sync::Arc;
use tmg_service::json::{self, Value};
use tmg_service::store::{PersistentStore, PersistentStoreConfig};
use tmg_service::Server;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmg-stats-schema-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Walks a dotted path (`segments.live_bytes`) into a parsed JSON value.
fn lookup<'a>(root: &'a Value, path: &str) -> Option<&'a Value> {
    let mut value = root;
    for segment in path.split('.') {
        value = value.get(segment)?;
    }
    Some(value)
}

#[test]
fn every_documented_tier_stats_key_survives_the_obs_migration() {
    let root = temp_root("golden");
    let store =
        Arc::new(PersistentStore::with_config(PersistentStoreConfig::new(&root)).expect("open"));
    // One analyse first, so the latency group has something recorded and
    // the snapshot exercises every section a real deployment would see.
    let source = "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }";
    let script = format!(
        "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n\
         {{\"id\": 2, \"op\": \"stats\"}}\n\
         {{\"id\": 3, \"op\": \"shutdown\"}}\n",
        json::escape(source)
    );
    let server = Server::new(store).with_workers(2);
    let mut out = Vec::new();
    server
        .serve(Cursor::new(script), &mut out)
        .expect("serve succeeds");
    let text = String::from_utf8(out).expect("utf-8 responses");
    let stats_line = text
        .lines()
        .find(|line| line.contains("\"op\": \"stats\""))
        .expect("a stats response");
    let response = json::parse(stats_line).expect("stats response parses");
    let stats = response.get("stats").expect("stats object");

    assert_eq!(
        stats.get("schema").and_then(Value::as_str),
        Some("tmg-obs-stats/v1"),
        "the snapshot carries the new schema id"
    );

    let golden = include_str!("golden/tier-stats-keys.txt");
    let mut missing = Vec::new();
    for path in golden
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        if lookup(stats, path).is_none() {
            missing.push(path);
        }
    }
    assert!(
        missing.is_empty(),
        "documented tmg-tier-stats/v1 keys lost in the migration: {missing:?}\nsnapshot: {stats_line}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
