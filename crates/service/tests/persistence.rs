//! Acceptance tests for the persistent artifact tier: a *fresh process's*
//! analysis of an unchanged function must be served from disk — bit-identical
//! bound, zero lower/partition/testgen recomputation — with the disk-hit
//! counters proving it.  A fresh [`PersistentStore`] over an existing cache
//! directory is the in-test equivalent of a fresh process: it shares no
//! memory with the store that wrote the frames, only the directory.
//!
//! The disk tier is an append-only segment log (`segments/seg-*.tmgs` plus
//! an `index.tmgi` snapshot); these tests cover both warm-start routes — the
//! published snapshot and the watermark tail scan that recovers records a
//! still-running (or crashed) writer never published.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tmg_core::pipeline::{Stage, STAGES};
use tmg_core::WcetAnalysis;
use tmg_minic::parse_function;
use tmg_service::{PersistentStore, PersistentStoreConfig};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmg-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn controller() -> tmg_minic::Function {
    // The `demand > 3 && demand < 2` pair is infeasible, so every partition
    // leaves a residual checker goal and the prepare-model stage runs.
    parse_function(
        r#"
        void controller(char demand __range(0, 6), bool enabled) {
            if (enabled) {
                if (demand > 3) { heavy(); } else { light(); }
            } else {
                off();
            }
            if (demand > 3) { if (demand < 2) { never(); } }
            if (demand == 0) { idle(); }
        }
        "#,
    )
    .expect("parse")
}

fn open(root: &Path) -> Arc<PersistentStore> {
    Arc::new(PersistentStore::open(root).expect("open cache"))
}

/// Segment files currently on disk.
fn segment_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(root.join("segments")) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("tmgs") {
            out.push(path);
        }
    }
    out.sort();
    out
}

#[test]
fn a_fresh_process_serves_the_bound_from_disk_with_zero_recomputation() {
    let root = temp_root("cold-warm");
    let f = controller();

    // Cold process: every stage computes once and lands in the log.
    let cold_store = open(&root);
    let cold = WcetAnalysis::new(2)
        .with_store(cold_store.clone())
        .analyse(&f)
        .expect("cold analysis");
    let stats = cold_store.stats();
    for stage in STAGES {
        assert_eq!(
            stats.disk_stage(stage).computes,
            1,
            "cold run must compute stage {stage} exactly once"
        );
        assert_eq!(
            stats.disk_stage(stage).stores,
            1,
            "cold run must persist stage {stage}"
        );
    }

    // Warm "process": a brand-new store over the same directory, while the
    // cold writer is still alive — its snapshot is unpublished, so this
    // exercises the watermark tail scan (shared-cache peers see each
    // other's appends without any publish).
    let warm_store = open(&root);
    let warm = WcetAnalysis::new(2)
        .with_store(warm_store.clone())
        .analyse(&f)
        .expect("warm analysis");
    assert_eq!(cold, warm, "disk-served report must be bit-identical");

    let stats = warm_store.stats();
    assert_eq!(
        stats.total_computes(),
        0,
        "warm run must recompute nothing: {stats:?}"
    );
    assert_eq!(
        stats.disk_stage(Stage::Bound).hits,
        1,
        "the bound artifact must be served from disk"
    );
    assert_eq!(
        stats.segment.zero_copy_hits, 1,
        "the bound fast path must serve without an owned payload decode"
    );
    assert_eq!(stats.segment.decoded_hits, 0);
    // The bound fast path short-circuits every earlier stage: no memory
    // probes, no disk probes, no computation.
    for stage in [
        Stage::Lower,
        Stage::Partition,
        Stage::PrepareModel,
        Stage::Testgen,
        Stage::Measure,
    ] {
        let disk = stats.disk_stage(stage);
        assert_eq!((disk.hits, disk.misses), (0, 0), "stage {stage} untouched");
        let memory = stats.memory.stage(stage);
        assert_eq!(
            (memory.hits, memory.misses),
            (0, 0),
            "stage {stage} not even probed in memory"
        );
    }

    // A third process after both writers exited cleanly starts from the
    // published snapshot — same answer, still zero recomputation.
    drop(cold_store);
    drop(warm_store);
    let snapshot_store = open(&root);
    let again = WcetAnalysis::new(2)
        .with_store(snapshot_store.clone())
        .analyse(&f)
        .expect("snapshot-warm analysis");
    assert_eq!(again, cold);
    assert_eq!(snapshot_store.stats().total_computes(), 0);
    assert!(
        root.join("index.tmgi").exists(),
        "a clean exit must publish the index snapshot"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_new_bound_in_a_fresh_process_reuses_lowering_and_model_from_disk() {
    let root = temp_root("partial-warm");
    let f = controller();
    let cold_store = open(&root);
    WcetAnalysis::new(2)
        .with_store(cold_store.clone())
        .analyse(&f)
        .expect("cold analysis");
    drop(cold_store);

    // A different path bound in a fresh process: lowering and the prepared
    // model come from disk, only the bound-dependent stages recompute.
    let warm_store = open(&root);
    WcetAnalysis::new(100)
        .with_store(warm_store.clone())
        .analyse(&f)
        .expect("warm analysis at a new bound");
    let stats = warm_store.stats();
    assert_eq!(stats.disk_stage(Stage::Lower).hits, 1);
    assert_eq!(stats.disk_stage(Stage::Lower).computes, 0);
    assert_eq!(stats.disk_stage(Stage::PrepareModel).hits, 1);
    assert_eq!(stats.disk_stage(Stage::PrepareModel).computes, 0);
    assert_eq!(
        stats.segment.decoded_hits, 2,
        "AST-bearing stages decode owned artifacts"
    );
    for stage in [
        Stage::Partition,
        Stage::Testgen,
        Stage::Measure,
        Stage::Bound,
    ] {
        assert_eq!(
            stats.disk_stage(stage).computes,
            1,
            "stage {stage} depends on the bound and must recompute"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exhaustive_reports_round_trip_through_the_disk_tier() {
    let root = temp_root("exhaustive");
    let f = controller();
    let space: Vec<tmg_minic::value::InputVector> = (0..=6)
        .flat_map(|d| {
            (0..=1).map(move |e| {
                tmg_minic::value::InputVector::new()
                    .with("demand", d)
                    .with("enabled", e)
            })
        })
        .collect();
    let cold = WcetAnalysis::new(2)
        .with_store(open(&root))
        .analyse_with_exhaustive(&f, &space)
        .expect("cold");
    let warm_store = open(&root);
    let warm = WcetAnalysis::new(2)
        .with_store(warm_store.clone())
        .analyse_with_exhaustive(&f, &space)
        .expect("warm");
    assert_eq!(cold, warm);
    assert!(warm.exhaustive_max.is_some());
    assert_eq!(warm_store.stats().total_computes(), 0);
    // The storeless pipeline agrees with both.
    let plain = WcetAnalysis::new(2)
        .analyse_with_exhaustive(&f, &space)
        .expect("plain");
    assert_eq!(plain, warm);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_segments_degrade_to_a_clean_recompute() {
    let root = temp_root("corrupt");
    let f = controller();
    let reference = WcetAnalysis::new(2)
        .with_store(open(&root))
        .analyse(&f)
        .expect("cold analysis");

    // Rot every record body while leaving the published index snapshot
    // intact: each indexed location now points at bytes that fail the
    // digest, the worst case for a reader that trusts the index.
    let segments = segment_files(&root);
    assert!(!segments.is_empty(), "the cold run must write a segment");
    for path in &segments {
        let mut bytes = std::fs::read(path).expect("read segment");
        for b in bytes.iter_mut().skip(16) {
            *b ^= 0x5A;
        }
        std::fs::write(path, bytes).expect("write damaged segment");
    }

    // A fresh process over the damaged cache: every load fails verification,
    // everything recomputes, and the bound is still bit-identical.
    let store = open(&root);
    let report = WcetAnalysis::new(2)
        .with_store(store.clone())
        .analyse(&f)
        .expect("analysis over damaged cache");
    assert_eq!(report, reference, "damaged cache must never change a bound");
    let stats = store.stats();
    assert_eq!(stats.disk_stage(Stage::Bound).hits, 0);
    assert_eq!(stats.disk_stage(Stage::Bound).computes, 1);
    assert_eq!(stats.total_computes(), 6, "all stages recompute");
    drop(store);

    // The recomputed frames went to a fresh segment; a third process is
    // fully warm again.
    let healed = open(&root);
    let again = WcetAnalysis::new(2)
        .with_store(healed.clone())
        .analyse(&f)
        .expect("healed analysis");
    assert_eq!(again, reference);
    assert_eq!(healed.stats().total_computes(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn the_disk_budget_evicts_whole_segments_oldest_first() {
    let root = temp_root("budget");
    // Small segments so rotation produces several; a budget small enough
    // that a handful of functions overflows it, large enough for any
    // single frame.
    let store = Arc::new(
        PersistentStore::with_config(
            PersistentStoreConfig::new(&root)
                .with_disk_budget(2 * 1024)
                .with_segment_bytes(1024),
        )
        .expect("open"),
    );
    let sources: Vec<String> = (0..6)
        .map(|i| {
            format!(
                "void f{i}(char a __range(0, 3)) {{ if (a > {}) {{ x{i}(); }} else {{ y{i}(); }} }}",
                i % 3
            )
        })
        .collect();
    for src in &sources {
        let f = parse_function(src).expect("parse");
        WcetAnalysis::new(2)
            .with_store(store.clone())
            .analyse(&f)
            .expect("analysis");
    }
    let stats = store.stats();
    let evictions: u64 = (0..6).map(|i| stats.disk[i].evictions).sum();
    assert!(evictions > 0, "budget must force evictions: {stats:?}");
    assert!(
        stats.disk_bytes <= 2 * 1024,
        "byte budget must hold after eviction ({} bytes)",
        stats.disk_bytes
    );
    // Evicted artifacts are recomputed, not lost: re-analysing the first
    // function still matches the storeless pipeline.
    let f0 = parse_function(&sources[0]).expect("parse");
    let via_cache = WcetAnalysis::new(2)
        .with_store(store.clone())
        .analyse(&f0)
        .expect("cached");
    let plain = WcetAnalysis::new(2).analyse(&f0).expect("plain");
    assert_eq!(via_cache, plain);
    let _ = std::fs::remove_dir_all(&root);
}

fn synthetic_report(i: u64) -> tmg_core::AnalysisReport {
    tmg_core::AnalysisReport {
        function: format!("synthetic_{i}"),
        path_bound: 2,
        segments: 3 + (i % 5) as usize,
        instrumentation_points: 7,
        measurements: 40 + u128::from(i),
        goals: 9,
        heuristic_covered: 5,
        checker_covered: 3,
        infeasible: 1,
        unknown: 0,
        measurement_runs: 4,
        wcet_bound: 1000 + i * 17,
        exhaustive_max: if i.is_multiple_of(2) {
            Some(900 + i * 17)
        } else {
            None
        },
    }
}

#[test]
fn compaction_reclaims_dead_bytes_and_keeps_every_live_artifact_readable() {
    use tmg_core::pipeline::TieredStore;

    let root = temp_root("compaction");
    let store = Arc::new(
        PersistentStore::with_config(PersistentStoreConfig::new(&root).with_segment_bytes(512))
            .expect("open"),
    );
    // First generation fills several segments; the second writes
    // bit-identical frames under the same keys, turning every
    // first-generation record into dead bytes in sealed segments.
    for round in 0..2 {
        for i in 0..24u64 {
            store.put_bound(9000 + i, synthetic_report(i));
        }
        let _ = round;
    }
    store.flush();
    store.compact();
    let stats = store.stats();
    assert!(
        stats.segment.compactions >= 1,
        "rewriting every key must trigger compaction: {stats:?}"
    );
    assert!(stats.segment.compacted_frames >= 1);

    // Every live artifact survives compaction bit-identically; reads go
    // through the zero-copy view so the memory tier cannot mask disk loss.
    for i in 0..24u64 {
        let got = store.with_bound_view(9000 + i, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(synthetic_report(i)), "key {i} after compaction");
    }
    drop(store);

    // A fresh process reconciles the compacted layout and sees the same data.
    let fresh = open(&root);
    for i in 0..24u64 {
        let got = fresh.with_bound_view(9000 + i, |view| view.map(|v| v.to_report()));
        assert_eq!(got, Some(synthetic_report(i)), "key {i} in a fresh process");
    }
    let dead = fresh.stats().segment.dead_bytes;
    drop(fresh);
    // Force-compacting again in yet another process drives sealed dead
    // bytes to zero (only the active tail may still hold dead records).
    let last = open(&root);
    last.compact();
    assert!(last.stats().segment.dead_bytes <= dead);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_fresh_process_serves_module_bounds_warm_from_the_log() {
    use tmg_core::{ModuleAnalysis, TieredStore};

    let root = temp_root("module-warm");
    let program = tmg_minic::parse_program(
        "void util(char v __range(0, 3)) { if (v > 1) { slow(); } else { fast(); } } \
         void mid(char m __range(0, 3)) { util(m); if (m == 0) { util(m); } } \
         void entry(char a __range(0, 3)) { mid(a); util(a); }",
    )
    .expect("parse module");

    // Cold process: every function summary computes and lands in the log.
    let cold_store = open(&root);
    let cold = ModuleAnalysis::new(4)
        .with_store(cold_store.clone() as Arc<dyn TieredStore>)
        .analyse_module(&program)
        .expect("cold module analysis");
    assert_eq!(cold.summaries_computed, 3);
    assert_eq!(cold.summaries_reused, 0);
    drop(cold_store);

    // Fresh process: a brand-new store over the same directory must serve
    // every summary from the segment log — bit-identical composed bounds,
    // nothing recomputed.
    let warm_before = tmg_core::module::metrics::snapshot().modules_served_warm;
    let warm_store = open(&root);
    let warm = ModuleAnalysis::new(4)
        .with_store(warm_store.clone() as Arc<dyn TieredStore>)
        .analyse_module(&program)
        .expect("warm module analysis");
    assert_eq!(warm.summaries_reused, 3);
    assert_eq!(warm.summaries_computed, 0);
    assert_eq!(
        warm.reports, cold.reports,
        "warm reports must be bit-identical"
    );
    assert_eq!(warm.summaries.len(), cold.summaries.len());
    for (w, c) in warm.summaries.iter().zip(&cold.summaries) {
        assert_eq!(w.function, c.function);
        assert_eq!(w.summary_key, c.summary_key);
        assert_eq!(w.wcet_bound, c.wcet_bound);
        assert_eq!(w.callees, c.callees);
        assert!(w.from_cache, "{} must be served from the log", w.function);
    }
    assert_eq!(warm.roots, cold.roots);
    assert_eq!(warm.module_key, cold.module_key);
    assert_eq!(
        tmg_core::module::metrics::snapshot().modules_served_warm,
        warm_before + 1,
        "a fully warm module run must count as served-warm"
    );
    assert_eq!(
        warm_store.stats().total_computes(),
        0,
        "the fresh process must recompute no pipeline stage"
    );
    let _ = std::fs::remove_dir_all(&root);
}
