//! `tmg-service`: the persistent analysis layer of the timing-model
//! toolchain.
//!
//! The staged pipeline of `tmg_core` made every WCET stage a
//! content-addressed artifact, but the in-memory `ArtifactStore` dies with
//! the process.  This crate adds the two pieces that turn the pipeline into
//! a long-running service:
//!
//! * [`store::PersistentStore`] — an on-disk artifact cache (versioned
//!   binary frames, [`codec`]) layered under the in-memory store behind the
//!   `tmg_core::pipeline::TieredStore` trait.  A *fresh process's* analysis
//!   of an unchanged function is served from disk with zero
//!   lower/partition/testgen recomputation, bit-identical to the cold run.
//! * [`server::Server`] — a JSON-lines request server (`tmg-service/v1`:
//!   `analyse`, `sweep`, `stats`, `shutdown`) over stdin/stdout, driven by a
//!   concurrent scheduler that deduplicates identical in-flight requests and
//!   fans independent functions across the rayon worker pool.
//!
//! See `crates/service/README.md` for the protocol and the cache layout.

pub mod codec;
pub mod fault;
pub mod json;
pub mod latency;
pub mod segment;
pub mod server;
pub mod store;
pub mod tcp;

pub use fault::{FaultKind, FaultPlan, STALL_MS};
pub use latency::{Histogram, LatencySet};
pub use segment::{SegmentStats, DEFAULT_GROUP_COMMIT_WINDOW_MS, DEFAULT_SEGMENT_BYTES};
pub use server::{ServeSummary, Server, DEFAULT_QUEUE_CAPACITY, PROTOCOL};
pub use store::{
    DiskStageStats, PersistentStore, PersistentStoreConfig, RecoveryReport, TierStats,
    DEFAULT_DISK_BUDGET,
};
