//! The persistent artifact tier: a size-capped on-disk cache layered under
//! the in-memory [`ArtifactStore`].
//!
//! [`PersistentStore`] implements [`TieredStore`], so
//! `WcetAnalysis::with_store` accepts it wherever the in-memory store works.
//! Every stage request probes the tiers in order:
//!
//! 1. **memory** — the process-local [`ArtifactStore`] (hit/miss/eviction
//!    counters as before);
//! 2. **disk** — `<root>/<stage>/<key_hex>.tmga` frames written by *any*
//!    process ([`crate::codec`]); a frame that fails integrity verification
//!    (bad magic, foreign version, checksum mismatch, malformed payload) is
//!    deleted and treated as a miss — never a panic, never a wrong artifact;
//! 3. **compute** — the stage function itself; the result is written to both
//!    tiers.
//!
//! The disk tier is bounded by a byte budget: each store records the file
//! size in an in-process index (rebuilt lazily from the directory on first
//! write/stats — never on the read-only warm path — ordered
//! by modification time) and evicts least-recently-used files until the
//! budget holds again.  Like the in-memory LRU this is pure cache policy —
//! an evicted artifact is recomputed on the next request.
//!
//! Measurement faults are never cached, matching the in-memory tier.

use crate::codec::{self, CodecError};
use crate::fault::{self, FaultKind, FaultPlan};
use rustc_hash::FxHashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tmg_cfg::key_hex;
use tmg_core::pipeline::{
    self, ArtifactStore, BoundArtifact, CampaignArtifact, LoweredArtifact, PartitionArtifact,
    PreparedModelArtifact, Stage, SuiteArtifact, TieredStore, STAGES,
};
use tmg_core::{AnalysisError, AnalysisReport, HybridGenerator, StoreStats};
use tmg_minic::ast::Function;
use tmg_target::CostModel;
use tmg_tsys::ModelChecker;

/// File extension of every cached artifact frame.
pub const ARTIFACT_EXT: &str = "tmga";

/// Default disk budget: 256 MiB of artifact frames.
pub const DEFAULT_DISK_BUDGET: u64 = 256 * 1024 * 1024;

/// Per-stage counters of the disk tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStageStats {
    /// Frames served from disk (decoded and verified).
    pub hits: u64,
    /// Probes that found no usable frame (absent, corrupt or foreign).
    pub misses: u64,
    /// Frames written.
    pub stores: u64,
    /// Frames evicted by the byte budget.
    pub evictions: u64,
    /// Stage computations actually executed (neither tier had the artifact).
    pub computes: u64,
    /// Frames deleted by the startup recovery scan because they failed
    /// integrity verification (torn writes, bit rot, foreign versions).
    /// Each becomes a clean miss on its next request.
    pub quarantined: u64,
}

/// Counter + occupancy snapshot of a [`PersistentStore`], combining both
/// tiers; rendered to hand-written JSON for the service `stats` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// In-memory tier snapshot.
    pub memory: StoreStats,
    /// Per-stage disk counters, indexed by [`Stage::index`].
    pub disk: [DiskStageStats; 6],
    /// Bytes currently held on disk.
    pub disk_bytes: u64,
    /// Disk byte budget.
    pub disk_budget: u64,
}

impl TierStats {
    /// Disk counters of one stage.
    pub fn disk_stage(&self, stage: Stage) -> DiskStageStats {
        self.disk[stage.index()]
    }

    /// Total stage computations across all stages (0 on a fully warm run).
    pub fn total_computes(&self) -> u64 {
        self.disk.iter().map(|s| s.computes).sum()
    }

    /// Total disk hits across all stages.
    pub fn total_disk_hits(&self) -> u64 {
        self.disk.iter().map(|s| s.hits).sum()
    }

    /// Renders the snapshot as one JSON object (hand-written; schema
    /// `tmg-tier-stats/v1`), embedding the memory tier's
    /// [`StoreStats::to_json`] output and the process-wide checker counters
    /// ([`tmg_tsys::metrics`]: slicing reductions, sharded-explorer activity
    /// and visited-table contention), so perf work on the checker stays
    /// observable through the service `stats` op.
    pub fn to_json(&self) -> String {
        self.to_json_with(None)
    }

    /// Like [`TierStats::to_json`], with an optional pre-rendered JSON
    /// object of per-op latency histograms (the server's request-level
    /// p50/p95/p99 view) embedded under `"latency"`.
    pub fn to_json_with(&self, latency: Option<&str>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{ \"schema\": \"tmg-tier-stats/v1\", \"computes\": {}, \"disk_bytes\": {}, \"disk_budget\": {}, \"memory\": {}, \"checker\": {}, ",
            self.total_computes(),
            self.disk_bytes,
            self.disk_budget,
            self.memory.to_json(),
            tmg_tsys::metrics::snapshot().to_json()
        );
        if let Some(latency) = latency {
            let _ = write!(out, "\"latency\": {latency}, ");
        }
        out.push_str("\"disk\": {");
        for (i, stage) in STAGES.iter().enumerate() {
            let s = self.disk_stage(*stage);
            let comma = if i + 1 < STAGES.len() { "," } else { "" };
            let _ = write!(
                out,
                " \"{}\": {{ \"hits\": {}, \"misses\": {}, \"stores\": {}, \"evictions\": {}, \"computes\": {}, \"quarantined\": {} }}{}",
                stage.name(),
                s.hits,
                s.misses,
                s.stores,
                s.evictions,
                s.computes,
                s.quarantined,
                comma
            );
        }
        out.push_str(" } }");
        out
    }
}

/// One file of the disk index.
struct FileEntry {
    size: u64,
    /// Logical last-touch order (monotonic per cache instance).
    touched: u64,
}

struct DiskIndex {
    files: FxHashMap<(u8, u64), FileEntry>,
    total_bytes: u64,
    tick: u64,
}

/// The on-disk frame cache.  All operations are infallible from the caller's
/// perspective: I/O errors degrade to misses (loads) or dropped writes
/// (stores) — the analysis itself never depends on the disk succeeding.
struct DiskCache {
    root: PathBuf,
    budget: u64,
    /// Lazily built: a fresh process serving a warm cache is read-only on
    /// the hot path, and scanning six stage directories before the first
    /// answer used to cost as much as the answer itself.  The scan runs on
    /// the first operation that actually needs byte accounting (a store, a
    /// discard, or a stats snapshot); loads before that simply skip the LRU
    /// touch (the scan seeds recency from file mtimes, so the order such
    /// loads would have established is approximated anyway).
    index: Mutex<Option<DiskIndex>>,
    /// Armed by tests / the CLI via `TMG_FAULT_PLAN`; inert in production.
    faults: FaultPlan,
    /// Uniquifies temp-file names so concurrent same-key writers (and
    /// writers from a previous crashed process) never collide mid-write.
    tmp_seq: AtomicU64,
    hits: [AtomicU64; 6],
    misses: [AtomicU64; 6],
    stores: [AtomicU64; 6],
    evictions: [AtomicU64; 6],
    quarantined: [AtomicU64; 6],
}

impl DiskCache {
    fn open(root: &Path, budget: u64, faults: FaultPlan) -> io::Result<DiskCache> {
        // The stage directories and the file index are built lazily, but an
        // unusable root must still fail *here* — operators rely on `open`
        // surfacing a typo'd or read-only cache path instead of silently
        // running with persistence disabled.
        fs::create_dir_all(root)?;
        Ok(DiskCache {
            root: root.to_path_buf(),
            budget,
            index: Mutex::new(None),
            faults,
            tmp_seq: AtomicU64::new(0),
            hits: Default::default(),
            misses: Default::default(),
            stores: Default::default(),
            evictions: Default::default(),
            quarantined: Default::default(),
        })
    }

    /// Builds the index from the directory (creating the stage directories
    /// on first use); modification time seeds the LRU order so a reopened
    /// cache evicts oldest-first.  I/O failures degrade to an empty index —
    /// the cache then simply stops accounting until writes succeed.
    fn scan(&self) -> DiskIndex {
        let mut files = FxHashMap::default();
        let mut total_bytes = 0u64;
        let mut found: Vec<((u8, u64), u64, std::time::SystemTime)> = Vec::new();
        for stage in STAGES {
            let dir = self.root.join(stage.name());
            if fs::create_dir_all(&dir).is_err() {
                continue;
            }
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                let ext = path.extension().and_then(|e| e.to_str());
                if ext == Some("tmp") {
                    // Torn write from a crashed process: the temp file was
                    // never renamed into place and is invisible to the byte
                    // budget — reclaim it now.
                    let _ = fs::remove_file(&path);
                    continue;
                }
                let stem_key = ext
                    .filter(|e| *e == ARTIFACT_EXT)
                    .and_then(|_| path.file_stem()?.to_str())
                    .and_then(|stem| u64::from_str_radix(stem, 16).ok());
                let Some(key) = stem_key else { continue };
                let Ok(meta) = entry.metadata() else { continue };
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                found.push(((stage.index() as u8, key), meta.len(), mtime));
            }
        }
        found.sort_by_key(|(_, _, mtime)| *mtime);
        let mut tick = 0u64;
        for (id, size, _) in found {
            tick += 1;
            total_bytes += size;
            files.insert(
                id,
                FileEntry {
                    size,
                    touched: tick,
                },
            );
        }
        DiskIndex {
            files,
            total_bytes,
            tick,
        }
    }

    /// Runs `f` over the (lazily built) index.
    fn with_index<R>(&self, f: impl FnOnce(&mut DiskIndex) -> R) -> R {
        let mut guard = self.index.lock().expect("disk index");
        if guard.is_none() {
            *guard = Some(self.scan());
        }
        f(guard.as_mut().expect("just built"))
    }

    fn path_of(&self, stage: Stage, key: u64) -> PathBuf {
        self.root
            .join(stage.name())
            .join(format!("{}.{ARTIFACT_EXT}", key_hex(key)))
    }

    /// Reads the raw frame for `(stage, key)`, touching its LRU slot.
    /// Hit/miss accounting happens in [`PersistentStore::fetch_disk`], after
    /// the frame has passed verification — a file that exists but fails to
    /// decode is a miss, not a hit.
    fn load(&self, stage: Stage, key: u64) -> Option<Vec<u8>> {
        let mut bytes = fs::read(self.path_of(stage, key)).ok();
        if let Some(buf) = bytes.as_mut() {
            for kind in [FaultKind::ShortRead, FaultKind::BitFlip] {
                if self.faults.take(kind) {
                    *buf = fault::damage(kind, buf);
                }
            }
        }
        if bytes.is_some() {
            // Touch the LRU slot, but never *build* the index for a read:
            // pre-scan loads are already ordered by the mtime seeding.
            let mut guard = self.index.lock().expect("disk index");
            if let Some(index) = guard.as_mut() {
                index.tick += 1;
                let tick = index.tick;
                if let Some(entry) = index.files.get_mut(&(stage.index() as u8, key)) {
                    entry.touched = tick;
                }
            }
        }
        bytes
    }

    fn record(&self, stage: Stage, hit: bool) {
        let counters = if hit { &self.hits } else { &self.misses };
        counters[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Deletes a frame that failed verification (and logs why); the slot
    /// becomes a clean miss for every later request.
    fn discard(&self, stage: Stage, key: u64, error: &CodecError) {
        let path = self.path_of(stage, key);
        eprintln!(
            "tmg-service: discarding unusable cache frame {} ({error})",
            path.display()
        );
        let _ = fs::remove_file(&path);
        self.with_index(|index| {
            if let Some(entry) = index.files.remove(&(stage.index() as u8, key)) {
                index.total_bytes = index.total_bytes.saturating_sub(entry.size);
            }
        });
    }

    /// Path of a uniquely named temp file next to `(stage, key)`'s final
    /// path.  The `.tmp` extension is what the index scan and the recovery
    /// scan reclaim; the pid + sequence infix keeps concurrent same-key
    /// writers (and leftovers of a crashed process) from colliding.
    fn tmp_path_of(&self, stage: Stage, key: u64) -> PathBuf {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        self.root.join(stage.name()).join(format!(
            "{}.{}-{seq}.tmp",
            key_hex(key),
            std::process::id()
        ))
    }

    /// Durable atomic publish: write the frame to a uniquely named temp
    /// file, fsync it, rename it over the final path, then (best-effort)
    /// fsync the directory so the rename itself survives a crash.  Returns
    /// `false` when nothing was published — no reader can ever observe a
    /// partially written frame at the final path.
    fn publish(&self, tmp: &Path, path: &Path, bytes: &[u8]) -> bool {
        let write = |dest: &Path| -> io::Result<()> {
            let mut file = fs::File::create(dest)?;
            file.write_all(bytes)?;
            file.sync_all()
        };
        if write(tmp).is_err() {
            let _ = fs::remove_file(tmp);
            return false;
        }
        if self.faults.take(FaultKind::CrashBeforePublish) {
            // Simulated crash between the data fsync and the rename: the
            // artifact was never published; the synced orphan `.tmp` stays
            // behind for the recovery scan to reclaim.
            return false;
        }
        if fs::rename(tmp, path).is_err() {
            let _ = fs::remove_file(tmp);
            return false;
        }
        if let Some(dir) = path.parent() {
            if let Ok(dir) = fs::File::open(dir) {
                let _ = dir.sync_all();
            }
        }
        true
    }

    /// Writes a frame (atomically, see [`DiskCache::publish`]) and evicts
    /// least-recently-used frames until the byte budget holds.  Failures are
    /// swallowed: a cache that cannot write simply stops accelerating.
    fn store(&self, stage: Stage, key: u64, bytes: &[u8]) {
        // Building the index creates the stage directories, so it must
        // happen before the write; cold runs pay the one-time scan here.
        self.with_index(|_| ());
        let path = self.path_of(stage, key);
        if self.faults.take(FaultKind::TornWrite) {
            // The legacy non-atomic write dying mid-frame: half a frame
            // lands directly on the final path, exactly what the atomic
            // publish exists to prevent.  No accounting — the "crashed"
            // writer would not have updated anything either.
            let _ = fs::write(&path, fault::damage(FaultKind::TornWrite, bytes));
            return;
        }
        if !self.publish(&self.tmp_path_of(stage, key), &path, bytes) {
            return;
        }
        if self.faults.take(FaultKind::CrashAfterPublish) {
            // Simulated crash right after the rename: the frame is durable
            // and valid, only this (dead) process's counters and LRU
            // accounting are lost.  A fresh process must serve it warm.
            return;
        }
        self.stores[stage.index()].fetch_add(1, Ordering::Relaxed);
        let evict: Vec<(u8, u64)> = self.with_index(|index| {
            index.tick += 1;
            let tick = index.tick;
            let id = (stage.index() as u8, key);
            let size = bytes.len() as u64;
            if let Some(old) = index.files.insert(
                id,
                FileEntry {
                    size,
                    touched: tick,
                },
            ) {
                index.total_bytes = index.total_bytes.saturating_sub(old.size);
            }
            index.total_bytes += size;
            let mut evict = Vec::new();
            while index.total_bytes > self.budget {
                let Some(victim) = index
                    .files
                    .iter()
                    .filter(|(other, _)| **other != id)
                    .min_by_key(|(_, entry)| entry.touched)
                    .map(|(other, _)| *other)
                else {
                    break; // only the fresh frame remains
                };
                let entry = index.files.remove(&victim).expect("victim indexed");
                index.total_bytes = index.total_bytes.saturating_sub(entry.size);
                evict.push(victim);
            }
            evict
        });
        for (stage_idx, victim_key) in evict {
            let stage = STAGES[stage_idx as usize];
            let _ = fs::remove_file(self.path_of(stage, victim_key));
            self.evictions[stage.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self, computes: &[AtomicU64; 6]) -> ([DiskStageStats; 6], u64) {
        let mut out = [DiskStageStats::default(); 6];
        for stage in STAGES {
            let i = stage.index();
            out[i] = DiskStageStats {
                hits: self.hits[i].load(Ordering::Relaxed),
                misses: self.misses[i].load(Ordering::Relaxed),
                stores: self.stores[i].load(Ordering::Relaxed),
                evictions: self.evictions[i].load(Ordering::Relaxed),
                computes: computes[i].load(Ordering::Relaxed),
                quarantined: self.quarantined[i].load(Ordering::Relaxed),
            };
        }
        let bytes = self.with_index(|index| index.total_bytes);
        (out, bytes)
    }

    /// Best-effort durability flush: fsyncs every stage directory so all
    /// published renames are on stable storage.  Run by the server's
    /// graceful drain before it reports a clean shutdown.
    fn flush(&self) {
        for stage in STAGES {
            if let Ok(dir) = fs::File::open(self.root.join(stage.name())) {
                let _ = dir.sync_all();
            }
        }
    }

    /// Crash-recovery pass over the cache directory: reclaims orphaned
    /// `.tmp` files and verifies every `.tmga` frame's header and digest
    /// ([`codec::verify_frame`]), deleting — *quarantining* — any that fail
    /// so later requests see a clean miss instead of paying a runtime
    /// discard.  Deliberately not part of `open`: the scan reads every
    /// frame, and the warm read path must stay scan-free ([`DiskCache`]'s
    /// lazy index); servers run it once at startup.
    fn recovery_scan(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        for stage in STAGES {
            let dir = self.root.join(stage.name());
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                let ext = path.extension().and_then(|e| e.to_str());
                if ext == Some("tmp") {
                    let _ = fs::remove_file(&path);
                    report.reclaimed_tmp += 1;
                    continue;
                }
                if ext != Some(ARTIFACT_EXT) {
                    continue;
                }
                report.scanned += 1;
                let key = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| u64::from_str_radix(s, 16).ok());
                let verdict = match key {
                    None => Err(CodecError::Malformed("filename is not a frame key")),
                    Some(key) => fs::read(&path)
                        .map_err(|_| CodecError::Malformed("unreadable frame"))
                        .and_then(|bytes| codec::verify_frame(&bytes, stage, key)),
                };
                if let Err(error) = verdict {
                    eprintln!(
                        "tmg-service: quarantining unverifiable cache frame {} ({error})",
                        path.display()
                    );
                    let _ = fs::remove_file(&path);
                    self.quarantined[stage.index()].fetch_add(1, Ordering::Relaxed);
                    report.quarantined += 1;
                }
            }
        }
        // Quarantine deletions invalidate any previously built byte
        // accounting; the next write/stats rebuilds it.
        if report.quarantined > 0 || report.reclaimed_tmp > 0 {
            *self.index.lock().expect("disk index") = None;
        }
        report
    }
}

/// What a [`PersistentStore::recovery_scan`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// `.tmga` frames examined.
    pub scanned: u64,
    /// Frames that failed verification and were deleted (now clean misses).
    pub quarantined: u64,
    /// Orphaned `.tmp` files reclaimed (crashed mid-write, never published).
    pub reclaimed_tmp: u64,
}

/// Configuration of a [`PersistentStore`].
#[derive(Debug, Clone)]
pub struct PersistentStoreConfig {
    /// Cache directory root (created if absent).
    pub root: PathBuf,
    /// Disk byte budget ([`DEFAULT_DISK_BUDGET`] by default).
    pub disk_budget: u64,
    /// In-memory entries per stage map
    /// ([`pipeline::DEFAULT_STAGE_CAPACITY`] by default).
    pub memory_capacity: usize,
    /// Fault-injection plan ([`FaultPlan::none`] by default; the CLI entry
    /// points arm it from `TMG_FAULT_PLAN`).
    pub fault_plan: FaultPlan,
}

impl PersistentStoreConfig {
    /// Default configuration rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> PersistentStoreConfig {
        PersistentStoreConfig {
            root: root.into(),
            disk_budget: DEFAULT_DISK_BUDGET,
            memory_capacity: pipeline::DEFAULT_STAGE_CAPACITY,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Overrides the disk byte budget.
    pub fn with_disk_budget(mut self, budget: u64) -> PersistentStoreConfig {
        self.disk_budget = budget;
        self
    }

    /// Overrides the in-memory per-stage entry cap.
    pub fn with_memory_capacity(mut self, capacity: usize) -> PersistentStoreConfig {
        self.memory_capacity = capacity;
        self
    }

    /// Arms a fault-injection plan for the disk tier.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> PersistentStoreConfig {
        self.fault_plan = plan;
        self
    }
}

/// The two-tier artifact store: in-memory [`ArtifactStore`] over an on-disk
/// frame cache.
pub struct PersistentStore {
    memory: ArtifactStore,
    disk: DiskCache,
    computes: [AtomicU64; 6],
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentStore")
            .field("root", &self.disk.root)
            .field("memory", &self.memory)
            .finish()
    }
}

impl PersistentStore {
    /// Opens (or creates) a cache rooted at `root` with default budgets.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directories cannot be created or
    /// scanned.
    pub fn open(root: impl AsRef<Path>) -> io::Result<PersistentStore> {
        PersistentStore::with_config(PersistentStoreConfig::new(root.as_ref()))
    }

    /// Opens a cache with explicit budgets.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directories cannot be created or
    /// scanned.
    pub fn with_config(config: PersistentStoreConfig) -> io::Result<PersistentStore> {
        Ok(PersistentStore {
            memory: ArtifactStore::with_capacity(config.memory_capacity),
            disk: DiskCache::open(&config.root, config.disk_budget, config.fault_plan)?,
            computes: Default::default(),
        })
    }

    /// Cache directory root.
    pub fn root(&self) -> &Path {
        &self.disk.root
    }

    /// Runs the crash-recovery pass: reclaims orphaned `.tmp` files and
    /// quarantines (deletes and counts) every `.tmga` frame that fails
    /// integrity verification, so later requests get a clean miss instead
    /// of a runtime discard.  Servers call this once at startup; it is not
    /// part of [`PersistentStore::open`] because it reads every frame and
    /// the warm read path is deliberately scan-free.
    pub fn recovery_scan(&self) -> RecoveryReport {
        self.disk.recovery_scan()
    }

    /// Flushes the disk tier (fsyncs the stage directories); part of the
    /// server's graceful drain.
    pub fn flush(&self) {
        self.disk.flush();
    }

    /// Total injected-fault shots that have fired against this store (0 when
    /// no [`FaultPlan`] was armed).  Tests and the fault-injection smoke use
    /// this to prove a plan actually exercised the I/O path.
    pub fn fault_shots_fired(&self) -> u64 {
        self.disk.faults.total_fired()
    }

    /// Combined counter snapshot of both tiers.
    pub fn stats(&self) -> TierStats {
        let (disk, disk_bytes) = self.disk.stats(&self.computes);
        TierStats {
            memory: self.memory.store_stats(),
            disk,
            disk_bytes,
            disk_budget: self.disk.budget,
        }
    }

    fn record_compute(&self, stage: Stage) {
        self.computes[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Probes the disk tier for `(stage, key)` and decodes through `decode`;
    /// undecodable frames are discarded and reported as a miss.
    fn fetch_disk<T>(
        &self,
        stage: Stage,
        key: u64,
        decode: impl FnOnce(&[u8]) -> Result<T, CodecError>,
    ) -> Option<T> {
        let decoded = self
            .disk
            .load(stage, key)
            .map(|bytes| decode(&bytes))
            .and_then(|result| match result {
                Ok(artifact) => Some(artifact),
                Err(error) => {
                    self.disk.discard(stage, key, &error);
                    None
                }
            });
        self.disk.record(stage, decoded.is_some());
        decoded
    }
}

impl TieredStore for PersistentStore {
    fn memory(&self) -> &ArtifactStore {
        &self.memory
    }

    fn lowered_keyed(&self, function: &Function, key: u64) -> Arc<LoweredArtifact> {
        if let Some(hit) = self.memory.lookup_lowered(key) {
            return hit;
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Lower, key, |b| codec::decode_lowered(b, key))
        {
            return self.memory.insert_lowered(key, artifact);
        }
        self.record_compute(Stage::Lower);
        let artifact = pipeline::compute_lowered(function, key);
        self.disk
            .store(Stage::Lower, key, &codec::encode_lowered(&artifact));
        self.memory.insert_lowered(key, artifact)
    }

    fn partition(&self, lowered: &LoweredArtifact, path_bound: u128) -> Arc<PartitionArtifact> {
        let key = pipeline::partition_key(lowered.function_key, path_bound);
        if let Some(hit) = self.memory.lookup_partition(key) {
            return hit;
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Partition, key, |b| codec::decode_partition(b, key))
        {
            return self.memory.insert_partition(key, artifact);
        }
        self.record_compute(Stage::Partition);
        let artifact = pipeline::compute_partition(lowered, path_bound, key);
        self.disk
            .store(Stage::Partition, key, &codec::encode_partition(&artifact));
        self.memory.insert_partition(key, artifact)
    }

    fn prepared_model(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        checker: &ModelChecker,
    ) -> Arc<PreparedModelArtifact> {
        let key = pipeline::prepared_model_key(lowered.function_key, checker);
        if let Some(hit) = self.memory.lookup_prepared_model(key) {
            return hit;
        }
        if let Some(artifact) = self.fetch_disk(Stage::PrepareModel, key, |b| {
            codec::decode_prepared_model(b, key)
        }) {
            return self.memory.insert_prepared_model(key, artifact);
        }
        self.record_compute(Stage::PrepareModel);
        let artifact = pipeline::compute_prepared_model(function, lowered, checker, key);
        self.disk.store(
            Stage::PrepareModel,
            key,
            &codec::encode_prepared_model(&artifact),
        );
        self.memory.insert_prepared_model(key, artifact)
    }

    fn suite(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        generator: &HybridGenerator,
    ) -> Arc<SuiteArtifact> {
        let key = pipeline::suite_key(partition.key, generator);
        if let Some(hit) = self.memory.lookup_suite(key) {
            return hit;
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Testgen, key, |b| codec::decode_suite(b, key))
        {
            return self.memory.insert_suite(key, artifact);
        }
        self.record_compute(Stage::Testgen);
        let artifact = pipeline::compute_suite(self, function, lowered, partition, generator, key);
        self.disk
            .store(Stage::Testgen, key, &codec::encode_suite(&artifact));
        self.memory.insert_suite(key, artifact)
    }

    fn campaign(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        suite: &SuiteArtifact,
        cost_model: &CostModel,
    ) -> Result<Arc<CampaignArtifact>, AnalysisError> {
        let key = pipeline::campaign_key(suite.key, cost_model);
        if let Some(hit) = self.memory.lookup_campaign(key) {
            return Ok(hit);
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Measure, key, |b| codec::decode_campaign(b, key))
        {
            return Ok(self.memory.insert_campaign(key, artifact));
        }
        self.record_compute(Stage::Measure);
        let artifact =
            pipeline::compute_campaign(function, lowered, partition, suite, cost_model, key)?;
        self.disk
            .store(Stage::Measure, key, &codec::encode_campaign(&artifact));
        Ok(self.memory.insert_campaign(key, artifact))
    }

    fn bound(&self, key: u64) -> Option<Arc<BoundArtifact>> {
        if let Some(hit) = self.memory.lookup_bound(key) {
            return Some(hit);
        }
        let artifact = self.fetch_disk(Stage::Bound, key, |b| codec::decode_bound(b, key))?;
        Some(self.memory.insert_bound(key, artifact))
    }

    fn put_bound(&self, key: u64, report: AnalysisReport) -> Arc<BoundArtifact> {
        self.record_compute(Stage::Bound);
        let artifact = BoundArtifact { key, report };
        self.disk
            .store(Stage::Bound, key, &codec::encode_bound(&artifact));
        self.memory.insert_bound(key, artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_stats_render_as_json() {
        let stats = TierStats {
            memory: ArtifactStore::new().store_stats(),
            disk: [DiskStageStats::default(); 6],
            disk_bytes: 0,
            disk_budget: DEFAULT_DISK_BUDGET,
        };
        let json = stats.to_json();
        assert!(json.contains("\"schema\": \"tmg-tier-stats/v1\""));
        assert!(json.contains("\"schema\": \"tmg-store-stats/v1\""));
        assert!(json.contains("\"bound\": { \"hits\": 0, \"misses\": 0, \"stores\": 0, \"evictions\": 0, \"computes\": 0, \"quarantined\": 0 }"));
        assert!(!json.contains("\"latency\""), "no histograms unless given");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let with_latency = stats.to_json_with(Some("{ \"analyse\": { \"count\": 0 } }"));
        assert!(with_latency.contains("\"latency\": { \"analyse\""));
        assert_eq!(
            with_latency.matches('{').count(),
            with_latency.matches('}').count()
        );
    }
}
