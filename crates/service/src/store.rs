//! The persistent artifact tier: a segment-log disk cache layered under the
//! in-memory [`ArtifactStore`].
//!
//! [`PersistentStore`] implements [`TieredStore`], so
//! `WcetAnalysis::with_store` accepts it wherever the in-memory store works.
//! Every stage request probes the tiers in order:
//!
//! 1. **memory** — the process-local [`ArtifactStore`] (hit/miss/eviction
//!    counters as before);
//! 2. **disk** — the append-only [`SegmentLog`] ([`crate::segment`]): the
//!    frame bytes are `pread` from their segment into an arena buffer and
//!    verified/decoded exactly once; a record that fails verification is
//!    dropped from the index and treated as a miss — never a panic, never a
//!    wrong artifact;
//! 3. **compute** — the stage function itself; the result is appended to
//!    the log and inserted into memory.
//!
//! The disk tier is bounded by a byte budget with segment-granular eviction
//! and live-ratio compaction; durability is group commit (see the segment
//! module docs).  The bound fast path decodes through the borrowed
//! [`codec::BoundView`], so a warm `bound` hit never materializes an owned
//! AST — only the one-string report.
//!
//! Measurement faults are never cached, matching the in-memory tier.

use crate::codec::{self, CodecError};
use crate::fault::FaultPlan;
use crate::segment::{
    SegmentLog, SegmentLogOptions, SegmentStats, DEFAULT_GROUP_COMMIT_WINDOW_MS,
    DEFAULT_SEGMENT_BYTES,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tmg_core::pipeline::{
    self, ArtifactStore, BoundArtifact, CampaignArtifact, LoweredArtifact, PartitionArtifact,
    PreparedModelArtifact, Stage, SuiteArtifact, TieredStore, STAGES,
};
use tmg_core::{AnalysisError, AnalysisReport, HybridGenerator, StoreStats};
use tmg_minic::ast::Function;
use tmg_target::CostModel;
use tmg_tsys::ModelChecker;

pub use crate::segment::RecoveryReport;

/// Default disk budget: 256 MiB of artifact frames.
pub const DEFAULT_DISK_BUDGET: u64 = 256 * 1024 * 1024;

/// Per-stage counters of the disk tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStageStats {
    /// Frames served from disk (verified and decoded).
    pub hits: u64,
    /// Probes that found no usable frame (absent, corrupt or foreign).
    pub misses: u64,
    /// Frames appended to the log.
    pub stores: u64,
    /// Frames dropped by segment-granular eviction.
    pub evictions: u64,
    /// Stage computations actually executed (neither tier had the artifact).
    pub computes: u64,
    /// Frames rejected by verification (recovery scan, compaction or a
    /// damaged read).  Each becomes a clean miss on its next request.
    pub quarantined: u64,
}

/// Counter + occupancy snapshot of a [`PersistentStore`], combining both
/// tiers; rendered to hand-written JSON for the service `stats` request.
#[derive(Debug, Clone, PartialEq)]
pub struct TierStats {
    /// In-memory tier snapshot.
    pub memory: StoreStats,
    /// Per-stage disk counters, indexed by [`Stage::index`].
    pub disk: [DiskStageStats; 6],
    /// Bytes currently accounted on disk (segment headers included).
    pub disk_bytes: u64,
    /// Disk byte budget.
    pub disk_budget: u64,
    /// Segment-tier counters (segments, live/dead bytes, compactions,
    /// group-commit batches, zero-copy vs decoded hits).
    pub segment: SegmentStats,
}

impl TierStats {
    /// Disk counters of one stage.
    pub fn disk_stage(&self, stage: Stage) -> DiskStageStats {
        self.disk[stage.index()]
    }

    /// Total stage computations across all stages (0 on a fully warm run).
    pub fn total_computes(&self) -> u64 {
        self.disk.iter().map(|s| s.computes).sum()
    }

    /// Total disk hits across all stages.
    pub fn total_disk_hits(&self) -> u64 {
        self.disk.iter().map(|s| s.hits).sum()
    }

    /// Renders the snapshot as one JSON object (hand-written; schema
    /// `tmg-obs-stats/v1`), embedding the memory tier's
    /// [`StoreStats::to_json`] output, the unified metrics registry's
    /// `checker` and `module` groups and the segment-tier counters, so
    /// perf work on both the checker and the storage engine stays
    /// observable through the service `stats` op.  Every top-level key of
    /// the predecessor `tmg-tier-stats/v1` schema is preserved (asserted
    /// by the schema-stability tests); only the `schema` value moved.
    pub fn to_json(&self) -> String {
        self.to_json_with(None)
    }

    /// Like [`TierStats::to_json`], with an optional pre-rendered JSON
    /// object of per-op latency histograms (the server's request-level
    /// p50/p95/p99 view) embedded under `"latency"`.
    pub fn to_json_with(&self, latency: Option<&str>) -> String {
        self.to_json_with_sections(latency, None)
    }

    /// Like [`TierStats::to_json_with`], additionally embedding an optional
    /// pre-rendered JSON object of resilience counters (shed/quota/cost
    /// shedding, dropped-on-disconnect responses and wire faults fired)
    /// under `"resilience"`.
    pub fn to_json_with_sections(&self, latency: Option<&str>, resilience: Option<&str>) -> String {
        use std::fmt::Write as _;
        // The process-wide counter sets render through the registry (one
        // source for the `stats` op, the registry snapshot and any future
        // exporter).  Registration is idempotent and happens on first use,
        // but snapshotting before anything bumped a counter must still
        // render the groups — so make sure they are registered.
        tmg_tsys::metrics::register();
        tmg_core::module::metrics::register();
        let registry = tmg_obs::registry();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{ \"schema\": \"tmg-obs-stats/v1\", \"computes\": {}, \"disk_bytes\": {}, \"disk_budget\": {}, \"memory\": {}, \"checker\": {}, \"module\": {}, ",
            self.total_computes(),
            self.disk_bytes,
            self.disk_budget,
            self.memory.to_json(),
            registry.group_json("checker").expect("checker registered"),
            registry.group_json("module").expect("module registered")
        );
        let s = &self.segment;
        let _ = write!(
            out,
            "\"segments\": {{ \"count\": {}, \"live_bytes\": {}, \"dead_bytes\": {}, \"compactions\": {}, \"compacted_frames\": {}, \"group_commit_batches\": {}, \"group_commit_window_ms\": {}, \"zero_copy_hits\": {}, \"decoded_hits\": {}, \"index_publishes\": {}, \"index_rebuilds\": {} }}, ",
            s.segments,
            s.live_bytes,
            s.dead_bytes,
            s.compactions,
            s.compacted_frames,
            s.group_commit_batches,
            s.group_commit_window_ms,
            s.zero_copy_hits,
            s.decoded_hits,
            s.index_publishes,
            s.index_rebuilds,
        );
        if let Some(latency) = latency {
            let _ = write!(out, "\"latency\": {latency}, ");
        }
        if let Some(resilience) = resilience {
            let _ = write!(out, "\"resilience\": {resilience}, ");
        }
        out.push_str("\"disk\": {");
        for (i, stage) in STAGES.iter().enumerate() {
            let s = self.disk_stage(*stage);
            let comma = if i + 1 < STAGES.len() { "," } else { "" };
            let _ = write!(
                out,
                " \"{}\": {{ \"hits\": {}, \"misses\": {}, \"stores\": {}, \"evictions\": {}, \"computes\": {}, \"quarantined\": {} }}{}",
                stage.name(),
                s.hits,
                s.misses,
                s.stores,
                s.evictions,
                s.computes,
                s.quarantined,
                comma
            );
        }
        out.push_str(" } }");
        out
    }
}

/// Configuration of a [`PersistentStore`].
#[derive(Debug, Clone)]
pub struct PersistentStoreConfig {
    /// Cache directory root (created if absent).
    pub root: PathBuf,
    /// Disk byte budget ([`DEFAULT_DISK_BUDGET`] by default).
    pub disk_budget: u64,
    /// Active-segment rotation threshold
    /// ([`DEFAULT_SEGMENT_BYTES`] by default).
    pub segment_bytes: u64,
    /// Group-commit latency window in milliseconds
    /// ([`DEFAULT_GROUP_COMMIT_WINDOW_MS`] by default).
    pub group_commit_window_ms: u64,
    /// In-memory entries per stage map
    /// ([`pipeline::DEFAULT_STAGE_CAPACITY`] by default).
    pub memory_capacity: usize,
    /// Fault-injection plan ([`FaultPlan::none`] by default; the CLI entry
    /// points arm it from `TMG_FAULT_PLAN`).
    pub fault_plan: FaultPlan,
}

impl PersistentStoreConfig {
    /// Default configuration rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> PersistentStoreConfig {
        PersistentStoreConfig {
            root: root.into(),
            disk_budget: DEFAULT_DISK_BUDGET,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            group_commit_window_ms: DEFAULT_GROUP_COMMIT_WINDOW_MS,
            memory_capacity: pipeline::DEFAULT_STAGE_CAPACITY,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Overrides the disk byte budget.
    pub fn with_disk_budget(mut self, budget: u64) -> PersistentStoreConfig {
        self.disk_budget = budget;
        self
    }

    /// Overrides the active-segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> PersistentStoreConfig {
        self.segment_bytes = bytes;
        self
    }

    /// Overrides the group-commit latency window.
    pub fn with_group_commit_window_ms(mut self, ms: u64) -> PersistentStoreConfig {
        self.group_commit_window_ms = ms;
        self
    }

    /// Overrides the in-memory per-stage entry cap.
    pub fn with_memory_capacity(mut self, capacity: usize) -> PersistentStoreConfig {
        self.memory_capacity = capacity;
        self
    }

    /// Arms a fault-injection plan for the disk tier.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> PersistentStoreConfig {
        self.fault_plan = plan;
        self
    }
}

/// The two-tier artifact store: in-memory [`ArtifactStore`] over the
/// append-only segment log.
pub struct PersistentStore {
    memory: ArtifactStore,
    log: SegmentLog,
    computes: [AtomicU64; 6],
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentStore")
            .field("root", &self.log.root())
            .field("memory", &self.memory)
            .finish()
    }
}

impl PersistentStore {
    /// Opens (or creates) a cache rooted at `root` with default budgets.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directories cannot be created.
    pub fn open(root: impl AsRef<Path>) -> io::Result<PersistentStore> {
        PersistentStore::with_config(PersistentStoreConfig::new(root.as_ref()))
    }

    /// Opens a cache with explicit budgets.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directories cannot be created.
    pub fn with_config(config: PersistentStoreConfig) -> io::Result<PersistentStore> {
        Ok(PersistentStore {
            memory: ArtifactStore::with_capacity(config.memory_capacity),
            log: SegmentLog::open(SegmentLogOptions {
                root: config.root,
                budget: config.disk_budget,
                segment_bytes: config.segment_bytes,
                group_commit_window_ms: config.group_commit_window_ms,
                faults: config.fault_plan,
            })?,
            computes: Default::default(),
        })
    }

    /// Cache directory root.
    pub fn root(&self) -> &Path {
        self.log.root()
    }

    /// Runs the crash-recovery pass: reclaims orphaned index `.tmp` files,
    /// re-verifies every record of every segment, truncates torn tails and
    /// publishes a fresh index snapshot.  Servers call this once at
    /// startup; it is not part of [`PersistentStore::open`] because it
    /// reads every frame and the warm read path is deliberately scan-free.
    pub fn recovery_scan(&self) -> RecoveryReport {
        self.log.recovery_scan()
    }

    /// Flushes the disk tier (syncs the active segment, publishes the
    /// index snapshot); part of the server's graceful drain.
    pub fn flush(&self) {
        self.log.flush();
    }

    /// Forces a compaction pass over every sealed segment holding dead
    /// bytes; benchmarks and tests use this for deterministic reclamation
    /// (production compaction triggers on the live-ratio threshold).
    pub fn compact(&self) {
        self.log.force_compact();
    }

    /// Total injected-fault shots that have fired against this store (0 when
    /// no [`FaultPlan`] was armed).  Tests and the fault-injection smoke use
    /// this to prove a plan actually exercised the I/O path.
    pub fn fault_shots_fired(&self) -> u64 {
        self.log.faults.total_fired()
    }

    /// Combined counter snapshot of both tiers.
    pub fn stats(&self) -> TierStats {
        let mut disk = [DiskStageStats::default(); 6];
        for stage in STAGES {
            let i = stage.index();
            disk[i] = DiskStageStats {
                hits: self.log.hits[i].load(Ordering::Relaxed),
                misses: self.log.misses[i].load(Ordering::Relaxed),
                stores: self.log.stores[i].load(Ordering::Relaxed),
                evictions: self.log.evictions[i].load(Ordering::Relaxed),
                computes: self.computes[i].load(Ordering::Relaxed),
                quarantined: self.log.quarantined[i].load(Ordering::Relaxed),
            };
        }
        TierStats {
            memory: self.memory.store_stats(),
            disk,
            disk_bytes: self.log.total_bytes(),
            disk_budget: self.log.budget(),
            segment: self.log.snapshot(),
        }
    }

    fn record_compute(&self, stage: Stage) {
        self.computes[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Serves the bound frame for `key` as a borrowed [`codec::BoundView`]
    /// without touching the in-memory tier or materializing an owned
    /// artifact — the "serve bytes back out" route.  `f` runs with `None`
    /// on a miss.
    pub fn with_bound_view<R>(
        &self,
        key: u64,
        f: impl FnOnce(Option<&codec::BoundView<'_>>) -> R,
    ) -> R {
        let Some(buf) = self.log.read(Stage::Bound, key) else {
            self.log.record(Stage::Bound, false);
            return f(None);
        };
        match codec::decode_frame(buf.frame(), Stage::Bound, key).and_then(codec::decode_bound_view)
        {
            Ok(view) => {
                self.log.record(Stage::Bound, true);
                self.log.note_zero_copy_hit();
                f(Some(&view))
            }
            Err(error) => {
                self.log.discard(Stage::Bound, key, &error);
                self.log.record(Stage::Bound, false);
                f(None)
            }
        }
    }

    /// Probes the disk tier for `(stage, key)` and decodes through `decode`
    /// (the single verification pass); undecodable records are discarded
    /// and reported as a miss.
    fn fetch_disk<T>(
        &self,
        stage: Stage,
        key: u64,
        decode: impl FnOnce(&[u8]) -> Result<T, CodecError>,
    ) -> Option<T> {
        let buf = self.log.read(stage, key);
        let decoded = buf.and_then(|buf| match decode(buf.frame()) {
            Ok(artifact) => Some(artifact),
            Err(error) => {
                self.log.discard(stage, key, &error);
                None
            }
        });
        self.log.record(stage, decoded.is_some());
        if decoded.is_some() {
            self.log.note_decoded_hit();
        }
        decoded
    }
}

impl TieredStore for PersistentStore {
    fn memory(&self) -> &ArtifactStore {
        &self.memory
    }

    fn lowered_keyed(&self, function: &Function, key: u64) -> Arc<LoweredArtifact> {
        if let Some(hit) = self.memory.lookup_lowered(key) {
            return hit;
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Lower, key, |b| codec::decode_lowered(b, key))
        {
            return self.memory.insert_lowered(key, artifact);
        }
        self.record_compute(Stage::Lower);
        let artifact = pipeline::compute_lowered(function, key);
        self.log
            .append(Stage::Lower, key, &codec::encode_lowered(&artifact));
        self.memory.insert_lowered(key, artifact)
    }

    fn partition(&self, lowered: &LoweredArtifact, path_bound: u128) -> Arc<PartitionArtifact> {
        let key = pipeline::partition_key(lowered.function_key, path_bound);
        if let Some(hit) = self.memory.lookup_partition(key) {
            return hit;
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Partition, key, |b| codec::decode_partition(b, key))
        {
            return self.memory.insert_partition(key, artifact);
        }
        self.record_compute(Stage::Partition);
        let artifact = pipeline::compute_partition(lowered, path_bound, key);
        self.log
            .append(Stage::Partition, key, &codec::encode_partition(&artifact));
        self.memory.insert_partition(key, artifact)
    }

    fn prepared_model(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        checker: &ModelChecker,
    ) -> Arc<PreparedModelArtifact> {
        let key = pipeline::prepared_model_key(lowered.function_key, checker);
        if let Some(hit) = self.memory.lookup_prepared_model(key) {
            return hit;
        }
        if let Some(artifact) = self.fetch_disk(Stage::PrepareModel, key, |b| {
            codec::decode_prepared_model(b, key)
        }) {
            return self.memory.insert_prepared_model(key, artifact);
        }
        self.record_compute(Stage::PrepareModel);
        let artifact = pipeline::compute_prepared_model(function, lowered, checker, key);
        self.log.append(
            Stage::PrepareModel,
            key,
            &codec::encode_prepared_model(&artifact),
        );
        self.memory.insert_prepared_model(key, artifact)
    }

    fn suite(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        generator: &HybridGenerator,
    ) -> Arc<SuiteArtifact> {
        let key = pipeline::suite_key(partition.key, generator);
        if let Some(hit) = self.memory.lookup_suite(key) {
            return hit;
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Testgen, key, |b| codec::decode_suite(b, key))
        {
            return self.memory.insert_suite(key, artifact);
        }
        self.record_compute(Stage::Testgen);
        let artifact = pipeline::compute_suite(self, function, lowered, partition, generator, key);
        self.log
            .append(Stage::Testgen, key, &codec::encode_suite(&artifact));
        self.memory.insert_suite(key, artifact)
    }

    fn campaign(
        &self,
        function: &Function,
        lowered: &LoweredArtifact,
        partition: &PartitionArtifact,
        suite: &SuiteArtifact,
        cost_model: &CostModel,
    ) -> Result<Arc<CampaignArtifact>, AnalysisError> {
        let key = pipeline::campaign_key(suite.key, cost_model);
        if let Some(hit) = self.memory.lookup_campaign(key) {
            return Ok(hit);
        }
        if let Some(artifact) =
            self.fetch_disk(Stage::Measure, key, |b| codec::decode_campaign(b, key))
        {
            return Ok(self.memory.insert_campaign(key, artifact));
        }
        self.record_compute(Stage::Measure);
        let artifact =
            pipeline::compute_campaign(function, lowered, partition, suite, cost_model, key)?;
        self.log
            .append(Stage::Measure, key, &codec::encode_campaign(&artifact));
        Ok(self.memory.insert_campaign(key, artifact))
    }

    fn bound(&self, key: u64) -> Option<Arc<BoundArtifact>> {
        if let Some(hit) = self.memory.lookup_bound(key) {
            return Some(hit);
        }
        // The bound fast path decodes through the borrowed view: one
        // verification pass, no owned AST — only the report's name string
        // is materialized for the memory tier.
        let buf = self.log.read(Stage::Bound, key);
        let report = buf.and_then(|buf| {
            match codec::decode_frame(buf.frame(), Stage::Bound, key)
                .and_then(codec::decode_bound_view)
            {
                Ok(view) => Some(view.to_report()),
                Err(error) => {
                    self.log.discard(Stage::Bound, key, &error);
                    None
                }
            }
        });
        self.log.record(Stage::Bound, report.is_some());
        let report = report?;
        self.log.note_zero_copy_hit();
        Some(self.memory.insert_bound(key, BoundArtifact { key, report }))
    }

    fn put_bound(&self, key: u64, report: AnalysisReport) -> Arc<BoundArtifact> {
        self.record_compute(Stage::Bound);
        let artifact = BoundArtifact { key, report };
        self.log
            .append(Stage::Bound, key, &codec::encode_bound(&artifact));
        self.memory.insert_bound(key, artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_stats_render_as_json() {
        let stats = TierStats {
            memory: ArtifactStore::new().store_stats(),
            disk: [DiskStageStats::default(); 6],
            disk_bytes: 0,
            disk_budget: DEFAULT_DISK_BUDGET,
            segment: SegmentStats::default(),
        };
        let json = stats.to_json();
        assert!(json.contains("\"schema\": \"tmg-obs-stats/v1\""));
        assert!(json.contains("\"schema\": \"tmg-store-stats/v1\""));
        assert!(json.contains("\"segments\": { \"count\": 0, \"live_bytes\": 0, \"dead_bytes\": 0, \"compactions\": 0"));
        assert!(json.contains("\"group_commit_batches\": 0"));
        assert!(json.contains("\"zero_copy_hits\": 0, \"decoded_hits\": 0"));
        assert!(json.contains("\"bound\": { \"hits\": 0, \"misses\": 0, \"stores\": 0, \"evictions\": 0, \"computes\": 0, \"quarantined\": 0 }"));
        assert!(!json.contains("\"latency\""), "no histograms unless given");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let with_latency = stats.to_json_with(Some("{ \"analyse\": { \"count\": 0 } }"));
        assert!(with_latency.contains("\"latency\": { \"analyse\""));
        assert_eq!(
            with_latency.matches('{').count(),
            with_latency.matches('}').count()
        );
    }
}
