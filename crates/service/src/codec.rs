//! Hand-rolled versioned binary codec for the pipeline artifacts.
//!
//! Every artifact of `tmg_core::pipeline` — [`LoweredArtifact`] through
//! [`BoundArtifact`] — round-trips through a self-describing binary frame so
//! the on-disk cache of [`crate::store`] can serve a *different process's*
//! artifacts.  The build environment has no crates.io access, so the format
//! is written by hand against the vendored-shim reality: fixed-width
//! little-endian integers, length-prefixed strings, explicit enum tags.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "TMGA"
//! 4       2     codec version (currently 1), little-endian
//! 6       1     artifact kind tag (Stage::index of the producing stage)
//! 7       1     reserved (0)
//! 8       8     content key (the store key, = filename stem)
//! 16      8     payload length
//! 24      n     payload (artifact-specific, see the `encode_*` functions)
//! 24+n    8     FNV-1a digest of bytes [0, 24+n)
//! ```
//!
//! The trailing digest (computed with the same [`StableHasher`] that derives
//! the content keys) makes torn writes and bit rot detectable: a frame that
//! fails *any* header or digest check decodes to [`CodecError`], which the
//! cache treats as a clean miss — never a panic, never a wrong artifact.  A
//! version bump invalidates every stored frame the same way.
//!
//! # Payload conventions
//!
//! Collections are length-prefixed.  `HashMap`/`HashSet` payloads are sorted
//! by key before writing so encoding is a pure function of the artifact
//! value — the proptest suite asserts `encode(decode(encode(x))) ==
//! encode(x)` byte for byte.  Two artifact kinds store *derived* fields by
//! recomputation instead of bytes: a lowering artifact stores only the CFG
//! and region tree (path counts and the branch-statement union are cheap
//! pure functions of those), and a prepared-model artifact stores the
//! optimised encoded [`Model`] (the arena preparation is re-derived by
//! [`SharedCheckModel::from_parts`]).  Both re-derivations are deterministic,
//! so the decoded artifact is indistinguishable from the original.

use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::hash::Hasher as _;
use std::sync::Arc;
use tmg_cfg::{
    BasicBlock, BlockId, BlockKind, Cfg, LoweredFunction, PathCounts, PathSpec, Region, RegionId,
    RegionKind, RegionTree, StableHasher, Terminator,
};
use tmg_core::pipeline::{
    decision_statements, BoundArtifact, CampaignArtifact, LoweredArtifact, PartitionArtifact,
    PreparedModelArtifact, Stage, SuiteArtifact, STAGES,
};
use tmg_core::{
    AnalysisReport, CoverageGoal, CoverageStatus, GeneratorKind, GoalKind, MeasurementCampaign,
    PartitionPlan, Segment, SegmentId, SegmentKind, SegmentTiming, TestSuite,
};
use tmg_minic::ast::{BinOp, Expr, Stmt, UnOp};
use tmg_minic::interp::BranchChoice;
use tmg_minic::types::Ty;
use tmg_minic::value::InputVector;
use tmg_minic::StmtId;
use tmg_tsys::{LocId, Model, OptReport, SharedCheckModel, StateVar, Transition, VarRole};

/// Current frame format version.  Bumping it turns every previously written
/// cache file into a clean miss.
pub const CODEC_VERSION: u16 = 1;

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"TMGA";

const HEADER_LEN: usize = 24;
const DIGEST_LEN: usize = 8;

/// Why a frame failed to decode.  Every variant degrades to a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame was written by a different codec version.
    VersionMismatch {
        /// Version found in the frame header.
        found: u16,
    },
    /// The frame holds a different artifact kind than requested.
    KindMismatch {
        /// Stage tag found in the frame header.
        found: u8,
    },
    /// The frame's content key differs from the requested key.
    KeyMismatch,
    /// The trailing digest does not match the frame bytes.
    ChecksumMismatch,
    /// The payload ended early or contains an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::VersionMismatch { found } => {
                write!(f, "codec version {found} (expected {CODEC_VERSION})")
            }
            CodecError::KindMismatch { found } => write!(f, "unexpected artifact kind {found}"),
            CodecError::KeyMismatch => write!(f, "frame key differs from requested key"),
            CodecError::ChecksumMismatch => write!(f, "frame digest mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Append-only byte sink with fixed-width little-endian primitives.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
    fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Enc, &T)) {
        match v {
            None => self.bool(false),
            Some(inner) => {
                self.bool(true);
                f(self, inner);
            }
        }
    }
}

/// Bounds-checked cursor over a payload; every read returns `Err` instead of
/// panicking on truncated or impossible data.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CodecError::Malformed("unexpected end of payload"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Malformed("length overflows usize"))
    }
    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("boolean out of range")),
        }
    }
    fn str(&mut self) -> Result<String> {
        Ok(self.str_ref()?.to_owned())
    }
    /// Borrowed string read: validates UTF-8 in place, allocates nothing.
    fn str_ref(&mut self) -> Result<&'a str> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Malformed("invalid utf-8"))
    }
    fn opt<T>(&mut self, mut f: impl FnMut(&mut Dec<'a>) -> Result<T>) -> Result<Option<T>> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }
    /// Guards length prefixes against nonsense values: every element of a
    /// sequence occupies at least one byte, so a claimed length beyond the
    /// remaining payload is malformed (prevents huge pre-allocations).
    fn seq_len(&mut self) -> Result<usize> {
        let len = self.usize()?;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(CodecError::Malformed("sequence length exceeds payload"));
        }
        Ok(len)
    }
    fn finish(self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------------

fn digest(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// Wraps a payload into a checksummed frame for `stage` under `key`.
pub fn encode_frame(stage: Stage, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + DIGEST_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    out.push(stage.index() as u8);
    out.push(0);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let digest = digest(&out);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// A verified frame borrowed from its raw bytes: header fields plus the
/// payload slice.  Produced by [`parse_frame`]; nothing is copied and no
/// payload structure is decoded — this is the zero-copy half of the segment
/// log's warm read path (verify up front, materialize lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// Stage the frame was written for.
    pub stage: Stage,
    /// Content key the frame was written under.
    pub key: u64,
    /// The still-encoded artifact payload.
    pub payload: &'a [u8],
}

/// Verifies a frame's magic, version, length and digest *without* an
/// expected stage/key (the segment scan discovers both from the header) and
/// returns a borrowed [`FrameView`].  A frame this accepts is exactly one
/// [`decode_frame`] would accept for its own `(stage, key)`.
pub fn parse_frame(bytes: &[u8]) -> Result<FrameView<'_>> {
    if bytes.len() < HEADER_LEN + DIGEST_LEN {
        return Err(CodecError::Malformed("frame shorter than header"));
    }
    if bytes[0..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != CODEC_VERSION {
        return Err(CodecError::VersionMismatch { found: version });
    }
    let kind = bytes[6];
    let stage = *STAGES
        .get(kind as usize)
        .ok_or(CodecError::KindMismatch { found: kind })?;
    let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let expected_len = (bytes.len() - HEADER_LEN - DIGEST_LEN) as u64;
    if payload_len != expected_len {
        return Err(CodecError::Malformed("payload length disagrees with frame"));
    }
    let body_end = bytes.len() - DIGEST_LEN;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if digest(&bytes[..body_end]) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(FrameView {
        stage,
        key,
        payload: &bytes[HEADER_LEN..body_end],
    })
}

/// Verifies a frame's magic, version, kind, key and digest, returning the
/// payload slice.
pub fn decode_frame(bytes: &[u8], stage: Stage, key: u64) -> Result<&[u8]> {
    let view = parse_frame(bytes)?;
    if view.stage != stage {
        return Err(CodecError::KindMismatch {
            found: view.stage.index() as u8,
        });
    }
    if view.key != key {
        return Err(CodecError::KeyMismatch);
    }
    Ok(view.payload)
}

/// Integrity check of a raw frame without decoding the payload: magic,
/// version, kind tag, content key, declared length and the trailing digest.
/// This is what the startup recovery scan runs over every `.tmga` file —
/// any frame it rejects would also fail [`decode_frame`] on the read path,
/// so quarantining it early turns a would-be runtime discard into a clean
/// startup miss.  (Payload *structure* is still validated by the typed
/// decoder on first use; the digest makes a structurally-bad-but-verified
/// frame require a writer bug, not disk corruption.)
///
/// # Errors
///
/// Returns the same [`CodecError`] the read path would report.
pub fn verify_frame(bytes: &[u8], stage: Stage, key: u64) -> Result<()> {
    decode_frame(bytes, stage, key).map(|_| ())
}

// ---------------------------------------------------------------------------
// mini-C fragments (expressions, statements) — embedded in CFG terminators,
// block bodies and the prepared model's guards/effects.
// ---------------------------------------------------------------------------

fn enc_un_op(e: &mut Enc, op: UnOp) {
    e.u8(match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::BitNot => 2,
    });
}

fn dec_un_op(d: &mut Dec<'_>) -> Result<UnOp> {
    Ok(match d.u8()? {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::BitNot,
        _ => return Err(CodecError::Malformed("unary operator tag")),
    })
}

fn enc_bin_op(e: &mut Enc, op: BinOp) {
    e.u8(match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Lt => 5,
        BinOp::Le => 6,
        BinOp::Gt => 7,
        BinOp::Ge => 8,
        BinOp::Eq => 9,
        BinOp::Ne => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
        BinOp::BitAnd => 13,
        BinOp::BitOr => 14,
        BinOp::BitXor => 15,
        BinOp::Shl => 16,
        BinOp::Shr => 17,
    });
}

fn dec_bin_op(d: &mut Dec<'_>) -> Result<BinOp> {
    Ok(match d.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Lt,
        6 => BinOp::Le,
        7 => BinOp::Gt,
        8 => BinOp::Ge,
        9 => BinOp::Eq,
        10 => BinOp::Ne,
        11 => BinOp::And,
        12 => BinOp::Or,
        13 => BinOp::BitAnd,
        14 => BinOp::BitOr,
        15 => BinOp::BitXor,
        16 => BinOp::Shl,
        17 => BinOp::Shr,
        _ => return Err(CodecError::Malformed("binary operator tag")),
    })
}

fn enc_expr(e: &mut Enc, expr: &Expr) {
    match expr {
        Expr::Int(v) => {
            e.u8(0);
            e.i64(*v);
        }
        Expr::Var(name) => {
            e.u8(1);
            e.str(name);
        }
        Expr::Unary { op, operand } => {
            e.u8(2);
            enc_un_op(e, *op);
            enc_expr(e, operand);
        }
        Expr::Binary { op, lhs, rhs } => {
            e.u8(3);
            enc_bin_op(e, *op);
            enc_expr(e, lhs);
            enc_expr(e, rhs);
        }
    }
}

fn dec_expr(d: &mut Dec<'_>) -> Result<Expr> {
    Ok(match d.u8()? {
        0 => Expr::Int(d.i64()?),
        1 => Expr::Var(d.str()?),
        2 => {
            let op = dec_un_op(d)?;
            Expr::unary(op, dec_expr(d)?)
        }
        3 => {
            let op = dec_bin_op(d)?;
            let lhs = dec_expr(d)?;
            let rhs = dec_expr(d)?;
            Expr::binary(op, lhs, rhs)
        }
        _ => return Err(CodecError::Malformed("expression tag")),
    })
}

fn enc_stmt(e: &mut Enc, stmt: &Stmt) {
    match stmt {
        Stmt::Assign {
            id,
            line,
            target,
            value,
        } => {
            e.u8(0);
            e.u32(id.0);
            e.u32(*line);
            e.str(target);
            enc_expr(e, value);
        }
        Stmt::Call {
            id,
            line,
            callee,
            args,
        } => {
            e.u8(1);
            e.u32(id.0);
            e.u32(*line);
            e.str(callee);
            e.usize(args.len());
            for a in args {
                enc_expr(e, a);
            }
        }
        Stmt::Return { id, line, value } => {
            e.u8(2);
            e.u32(id.0);
            e.u32(*line);
            e.opt(value, enc_expr);
        }
        // Branching statements never appear in a basic block's body (their
        // conditions live in terminators), but the codec handles the full
        // statement type so it has no partial-domain surprises.
        Stmt::If { .. } | Stmt::Switch { .. } | Stmt::While { .. } => {
            unreachable!("branching statements are encoded through terminators")
        }
    }
}

fn dec_stmt(d: &mut Dec<'_>) -> Result<Stmt> {
    Ok(match d.u8()? {
        0 => {
            let id = StmtId(d.u32()?);
            let line = d.u32()?;
            let target = d.str()?;
            let value = dec_expr(d)?;
            Stmt::Assign {
                id,
                line,
                target,
                value,
            }
        }
        1 => {
            let id = StmtId(d.u32()?);
            let line = d.u32()?;
            let callee = d.str()?;
            let n = d.seq_len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(dec_expr(d)?);
            }
            Stmt::Call {
                id,
                line,
                callee,
                args,
            }
        }
        2 => {
            let id = StmtId(d.u32()?);
            let line = d.u32()?;
            let value = d.opt(dec_expr)?;
            Stmt::Return { id, line, value }
        }
        _ => return Err(CodecError::Malformed("statement tag")),
    })
}

fn enc_branch_choice(e: &mut Enc, choice: BranchChoice) {
    match choice {
        BranchChoice::Then => e.u8(0),
        BranchChoice::Else => e.u8(1),
        BranchChoice::Case(v) => {
            e.u8(2);
            e.i64(v);
        }
        BranchChoice::Default => e.u8(3),
        BranchChoice::LoopIterate => e.u8(4),
        BranchChoice::LoopExit => e.u8(5),
    }
}

fn dec_branch_choice(d: &mut Dec<'_>) -> Result<BranchChoice> {
    Ok(match d.u8()? {
        0 => BranchChoice::Then,
        1 => BranchChoice::Else,
        2 => BranchChoice::Case(d.i64()?),
        3 => BranchChoice::Default,
        4 => BranchChoice::LoopIterate,
        5 => BranchChoice::LoopExit,
        _ => return Err(CodecError::Malformed("branch choice tag")),
    })
}

// ---------------------------------------------------------------------------
// CFG + region tree (the Lower payload)
// ---------------------------------------------------------------------------

fn enc_terminator(e: &mut Enc, t: &Terminator) {
    match t {
        Terminator::Jump(dest) => {
            e.u8(0);
            e.u32(dest.0);
        }
        Terminator::Branch {
            stmt,
            cond,
            then_dest,
            else_dest,
        } => {
            e.u8(1);
            e.u32(stmt.0);
            enc_expr(e, cond);
            e.u32(then_dest.0);
            e.u32(else_dest.0);
        }
        Terminator::Switch {
            stmt,
            selector,
            arms,
            default_dest,
        } => {
            e.u8(2);
            e.u32(stmt.0);
            enc_expr(e, selector);
            e.usize(arms.len());
            for (value, dest) in arms {
                e.i64(*value);
                e.u32(dest.0);
            }
            e.u32(default_dest.0);
        }
        Terminator::Return { exit } => {
            e.u8(3);
            e.u32(exit.0);
        }
        Terminator::Halt => e.u8(4),
    }
}

fn dec_terminator(d: &mut Dec<'_>) -> Result<Terminator> {
    Ok(match d.u8()? {
        0 => Terminator::Jump(BlockId(d.u32()?)),
        1 => {
            let stmt = StmtId(d.u32()?);
            let cond = dec_expr(d)?;
            let then_dest = BlockId(d.u32()?);
            let else_dest = BlockId(d.u32()?);
            Terminator::Branch {
                stmt,
                cond,
                then_dest,
                else_dest,
            }
        }
        2 => {
            let stmt = StmtId(d.u32()?);
            let selector = dec_expr(d)?;
            let n = d.seq_len()?;
            let mut arms = Vec::with_capacity(n);
            for _ in 0..n {
                let value = d.i64()?;
                let dest = BlockId(d.u32()?);
                arms.push((value, dest));
            }
            let default_dest = BlockId(d.u32()?);
            Terminator::Switch {
                stmt,
                selector,
                arms,
                default_dest,
            }
        }
        3 => Terminator::Return {
            exit: BlockId(d.u32()?),
        },
        4 => Terminator::Halt,
        _ => return Err(CodecError::Malformed("terminator tag")),
    })
}

fn enc_block_kind(e: &mut Enc, kind: BlockKind) {
    e.u8(match kind {
        BlockKind::Entry => 0,
        BlockKind::Exit => 1,
        BlockKind::Code => 2,
        BlockKind::Join => 3,
        BlockKind::LoopHeader => 4,
        BlockKind::CaseArm => 5,
    });
}

fn dec_block_kind(d: &mut Dec<'_>) -> Result<BlockKind> {
    Ok(match d.u8()? {
        0 => BlockKind::Entry,
        1 => BlockKind::Exit,
        2 => BlockKind::Code,
        3 => BlockKind::Join,
        4 => BlockKind::LoopHeader,
        5 => BlockKind::CaseArm,
        _ => return Err(CodecError::Malformed("block kind tag")),
    })
}

fn enc_basic_block(e: &mut Enc, b: &BasicBlock) {
    e.u32(b.id.0);
    enc_block_kind(e, b.kind);
    e.usize(b.stmts.len());
    for s in &b.stmts {
        enc_stmt(e, s);
    }
    enc_terminator(e, &b.terminator);
    e.u32(b.line);
}

fn dec_basic_block(d: &mut Dec<'_>) -> Result<BasicBlock> {
    let id = BlockId(d.u32()?);
    let kind = dec_block_kind(d)?;
    let n = d.seq_len()?;
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        stmts.push(dec_stmt(d)?);
    }
    let terminator = dec_terminator(d)?;
    let line = d.u32()?;
    Ok(BasicBlock {
        id,
        kind,
        stmts,
        terminator,
        line,
    })
}

fn enc_cfg(e: &mut Enc, cfg: &Cfg) {
    e.str(&cfg.function);
    e.usize(cfg.blocks().len());
    for b in cfg.blocks() {
        enc_basic_block(e, b);
    }
    e.u32(cfg.entry().0);
    e.u32(cfg.exit().0);
    // Deterministic bytes: the loop-bound map is sorted by statement id.
    let mut bounds: Vec<(StmtId, u32)> = cfg.loop_bounds().iter().map(|(s, b)| (*s, *b)).collect();
    bounds.sort_unstable();
    e.usize(bounds.len());
    for (stmt, bound) in bounds {
        e.u32(stmt.0);
        e.u32(bound);
    }
}

fn dec_cfg(d: &mut Dec<'_>) -> Result<Cfg> {
    let function = d.str()?;
    let n = d.seq_len()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(dec_basic_block(d)?);
    }
    let entry = BlockId(d.u32()?);
    let exit = BlockId(d.u32()?);
    let bounds_n = d.seq_len()?;
    let mut loop_bounds = FxHashMap::default();
    for _ in 0..bounds_n {
        let stmt = StmtId(d.u32()?);
        let bound = d.u32()?;
        loop_bounds.insert(stmt, bound);
    }
    if entry.index() >= blocks.len() || exit.index() >= blocks.len() {
        return Err(CodecError::Malformed("entry/exit out of range"));
    }
    for (i, b) in blocks.iter().enumerate() {
        if b.id.index() != i {
            return Err(CodecError::Malformed("block table not dense"));
        }
        for succ in b.terminator.successors() {
            if succ.index() >= blocks.len() {
                return Err(CodecError::Malformed("successor out of range"));
            }
        }
    }
    Ok(Cfg::from_parts(function, blocks, entry, exit, loop_bounds))
}

fn enc_region_kind(e: &mut Enc, kind: RegionKind) {
    match kind {
        RegionKind::FunctionBody => e.u8(0),
        RegionKind::Then(s) => {
            e.u8(1);
            e.u32(s.0);
        }
        RegionKind::Else(s) => {
            e.u8(2);
            e.u32(s.0);
        }
        RegionKind::Case(s, v) => {
            e.u8(3);
            e.u32(s.0);
            e.i64(v);
        }
        RegionKind::Default(s) => {
            e.u8(4);
            e.u32(s.0);
        }
        RegionKind::LoopBody(s) => {
            e.u8(5);
            e.u32(s.0);
        }
    }
}

fn dec_region_kind(d: &mut Dec<'_>) -> Result<RegionKind> {
    Ok(match d.u8()? {
        0 => RegionKind::FunctionBody,
        1 => RegionKind::Then(StmtId(d.u32()?)),
        2 => RegionKind::Else(StmtId(d.u32()?)),
        3 => {
            let stmt = StmtId(d.u32()?);
            let value = d.i64()?;
            RegionKind::Case(stmt, value)
        }
        4 => RegionKind::Default(StmtId(d.u32()?)),
        5 => RegionKind::LoopBody(StmtId(d.u32()?)),
        _ => return Err(CodecError::Malformed("region kind tag")),
    })
}

fn enc_region(e: &mut Enc, r: &Region) {
    e.u32(r.id.0);
    enc_region_kind(e, r.kind);
    e.opt(&r.parent, |e, p| e.u32(p.0));
    e.usize(r.children.len());
    for c in &r.children {
        e.u32(c.0);
    }
    e.usize(r.blocks.len());
    for b in &r.blocks {
        e.u32(b.0);
    }
    e.u32(r.entry_block.0);
    e.u128(r.path_count);
}

fn dec_region(d: &mut Dec<'_>) -> Result<Region> {
    let id = RegionId(d.u32()?);
    let kind = dec_region_kind(d)?;
    let parent = d.opt(|d| Ok(RegionId(d.u32()?)))?;
    let n = d.seq_len()?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        children.push(RegionId(d.u32()?));
    }
    let n = d.seq_len()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(BlockId(d.u32()?));
    }
    let entry_block = BlockId(d.u32()?);
    let path_count = d.u128()?;
    Ok(Region {
        id,
        kind,
        parent,
        children,
        blocks,
        entry_block,
        path_count,
    })
}

fn enc_region_tree(e: &mut Enc, tree: &RegionTree) {
    e.usize(tree.regions().len());
    for r in tree.regions() {
        enc_region(e, r);
    }
    e.u32(tree.root_id().0);
}

fn dec_region_tree(d: &mut Dec<'_>) -> Result<RegionTree> {
    let n = d.seq_len()?;
    let mut regions = Vec::with_capacity(n);
    for _ in 0..n {
        regions.push(dec_region(d)?);
    }
    let root = RegionId(d.u32()?);
    if root.index() >= regions.len() {
        return Err(CodecError::Malformed("region root out of range"));
    }
    for (i, r) in regions.iter().enumerate() {
        if r.id.index() != i {
            return Err(CodecError::Malformed("region table not dense"));
        }
        for c in &r.children {
            if c.index() >= regions.len() {
                return Err(CodecError::Malformed("region child out of range"));
            }
        }
    }
    Ok(RegionTree::from_parts(regions, root))
}

/// Encodes a lowering artifact.  Only the CFG and region tree are stored;
/// the path counts and the branch-statement union are pure derived data and
/// are recomputed on decode.
pub fn encode_lowered(artifact: &LoweredArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    enc_cfg(&mut e, &artifact.lowered.cfg);
    enc_region_tree(&mut e, &artifact.lowered.regions);
    encode_frame(Stage::Lower, artifact.function_key, &e.buf)
}

/// Decodes a lowering artifact, validating CFG and region-tree structure.
pub fn decode_lowered(bytes: &[u8], key: u64) -> Result<LoweredArtifact> {
    let payload = decode_frame(bytes, Stage::Lower, key)?;
    let mut d = Dec::new(payload);
    let cfg = dec_cfg(&mut d)?;
    let regions = dec_region_tree(&mut d)?;
    d.finish()?;
    cfg.validate()
        .map_err(|_| CodecError::Malformed("inconsistent CFG"))?;
    regions
        .validate(&cfg)
        .map_err(|_| CodecError::Malformed("inconsistent region tree"))?;
    let lowered = LoweredFunction { cfg, regions };
    let counts = PathCounts::compute(&lowered);
    let decision_stmts = decision_statements(&lowered);
    Ok(LoweredArtifact {
        function_key: key,
        lowered,
        counts,
        decision_stmts,
    })
}

// ---------------------------------------------------------------------------
// Partition plan
// ---------------------------------------------------------------------------

fn enc_segment(e: &mut Enc, s: &Segment) {
    e.u32(s.id.0);
    match s.kind {
        SegmentKind::Region(r) => {
            e.u8(0);
            e.u32(r.0);
        }
        SegmentKind::Block(b) => {
            e.u8(1);
            e.u32(b.0);
        }
    }
    e.usize(s.blocks.len());
    for b in &s.blocks {
        e.u32(b.0);
    }
    e.u128(s.paths);
}

fn dec_segment(d: &mut Dec<'_>) -> Result<Segment> {
    let id = SegmentId(d.u32()?);
    let kind = match d.u8()? {
        0 => SegmentKind::Region(RegionId(d.u32()?)),
        1 => SegmentKind::Block(BlockId(d.u32()?)),
        _ => return Err(CodecError::Malformed("segment kind tag")),
    };
    let n = d.seq_len()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(BlockId(d.u32()?));
    }
    let paths = d.u128()?;
    Ok(Segment {
        id,
        kind,
        blocks,
        paths,
    })
}

/// Encodes a partition artifact.
pub fn encode_partition(artifact: &PartitionArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    e.u128(artifact.plan.path_bound);
    e.usize(artifact.plan.indexed_blocks());
    e.usize(artifact.plan.segments.len());
    for s in &artifact.plan.segments {
        enc_segment(&mut e, s);
    }
    encode_frame(Stage::Partition, artifact.key, &e.buf)
}

/// Decodes a partition artifact.
pub fn decode_partition(bytes: &[u8], key: u64) -> Result<PartitionArtifact> {
    let payload = decode_frame(bytes, Stage::Partition, key)?;
    let mut d = Dec::new(payload);
    let path_bound = d.u128()?;
    let block_count = d.usize()?;
    let n = d.seq_len()?;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        segments.push(dec_segment(&mut d)?);
    }
    d.finish()?;
    for s in &segments {
        if s.blocks.iter().any(|b| b.index() >= block_count) {
            return Err(CodecError::Malformed("segment block out of range"));
        }
    }
    Ok(PartitionArtifact {
        key,
        plan: PartitionPlan::from_parts(path_bound, segments, block_count),
    })
}

// ---------------------------------------------------------------------------
// Prepared checker model
// ---------------------------------------------------------------------------

fn enc_ty(e: &mut Enc, ty: Ty) {
    e.u8(match ty {
        Ty::Bool => 0,
        Ty::I8 => 1,
        Ty::U8 => 2,
        Ty::I16 => 3,
        Ty::U16 => 4,
        Ty::I32 => 5,
    });
}

fn dec_ty(d: &mut Dec<'_>) -> Result<Ty> {
    Ok(match d.u8()? {
        0 => Ty::Bool,
        1 => Ty::I8,
        2 => Ty::U8,
        3 => Ty::I16,
        4 => Ty::U16,
        5 => Ty::I32,
        _ => return Err(CodecError::Malformed("type tag")),
    })
}

fn enc_state_var(e: &mut Enc, v: &StateVar) {
    e.str(&v.name);
    enc_ty(e, v.ty);
    e.i64(v.domain.0);
    e.i64(v.domain.1);
    e.opt(&v.init, |e, i| e.i64(*i));
    e.u8(match v.role {
        VarRole::Input => 0,
        VarRole::Local => 1,
    });
}

fn dec_state_var(d: &mut Dec<'_>) -> Result<StateVar> {
    let name = d.str()?;
    let ty = dec_ty(d)?;
    let domain = (d.i64()?, d.i64()?);
    let init = d.opt(|d| d.i64())?;
    let role = match d.u8()? {
        0 => VarRole::Input,
        1 => VarRole::Local,
        _ => return Err(CodecError::Malformed("variable role tag")),
    };
    Ok(StateVar {
        name,
        ty,
        domain,
        init,
        role,
    })
}

fn enc_transition(e: &mut Enc, t: &Transition) {
    e.u32(t.from.0);
    e.u32(t.to.0);
    e.opt(&t.guard, enc_expr);
    e.usize(t.effect.len());
    for (target, expr) in &t.effect {
        e.str(target);
        enc_expr(e, expr);
    }
    e.opt(&t.decision, |e, (stmt, choice)| {
        e.u32(stmt.0);
        enc_branch_choice(e, *choice);
    });
}

fn dec_transition(d: &mut Dec<'_>) -> Result<Transition> {
    let from = LocId(d.u32()?);
    let to = LocId(d.u32()?);
    let guard = d.opt(dec_expr)?;
    let n = d.seq_len()?;
    let mut effect = Vec::with_capacity(n);
    for _ in 0..n {
        let target = d.str()?;
        let expr = dec_expr(d)?;
        effect.push((target, expr));
    }
    let decision = d.opt(|d| {
        let stmt = StmtId(d.u32()?);
        let choice = dec_branch_choice(d)?;
        Ok((stmt, choice))
    })?;
    Ok(Transition {
        from,
        guard,
        effect,
        to,
        decision,
    })
}

fn enc_model(e: &mut Enc, m: &Model) {
    e.str(&m.name);
    e.usize(m.vars.len());
    for v in &m.vars {
        enc_state_var(e, v);
    }
    e.u32(m.locations);
    e.u32(m.initial.0);
    e.u32(m.final_loc.0);
    e.usize(m.transitions.len());
    for t in &m.transitions {
        enc_transition(e, t);
    }
}

fn dec_model(d: &mut Dec<'_>) -> Result<Model> {
    let name = d.str()?;
    let n = d.seq_len()?;
    let mut vars = Vec::with_capacity(n);
    for _ in 0..n {
        vars.push(dec_state_var(d)?);
    }
    let locations = d.u32()?;
    let initial = LocId(d.u32()?);
    let final_loc = LocId(d.u32()?);
    let n = d.seq_len()?;
    let mut transitions = Vec::with_capacity(n);
    for _ in 0..n {
        transitions.push(dec_transition(d)?);
    }
    if initial.index() >= locations as usize || final_loc.index() >= locations as usize {
        return Err(CodecError::Malformed("model location out of range"));
    }
    for t in &transitions {
        if t.from.index() >= locations as usize || t.to.index() >= locations as usize {
            return Err(CodecError::Malformed("transition location out of range"));
        }
    }
    Ok(Model {
        name,
        vars,
        locations,
        initial,
        final_loc,
        transitions,
    })
}

fn enc_opt_report(e: &mut Enc, r: &OptReport) {
    let strings = |e: &mut Enc, v: &[String]| {
        e.usize(v.len());
        for s in v {
            e.str(s);
        }
    };
    strings(e, &r.substituted_temps);
    strings(e, &r.removed_vars);
    e.usize(r.merged_vars.len());
    for (kept, merged) in &r.merged_vars {
        e.str(kept);
        e.str(merged);
    }
    strings(e, &r.initialised_vars);
    e.usize(r.removed_stmts);
}

fn dec_opt_report(d: &mut Dec<'_>) -> Result<OptReport> {
    let strings = |d: &mut Dec<'_>| -> Result<Vec<String>> {
        let n = d.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(d.str()?);
        }
        Ok(out)
    };
    let substituted_temps = strings(d)?;
    let removed_vars = strings(d)?;
    let n = d.seq_len()?;
    let mut merged_vars = Vec::with_capacity(n);
    for _ in 0..n {
        let kept = d.str()?;
        let merged = d.str()?;
        merged_vars.push((kept, merged));
    }
    let initialised_vars = strings(d)?;
    let removed_stmts = d.usize()?;
    Ok(OptReport {
        substituted_temps,
        removed_vars,
        merged_vars,
        initialised_vars,
        removed_stmts,
    })
}

/// Encodes a prepared-model artifact: the optimised encoded model, its
/// optimisation report and the preserve-set union (`None` models — "no
/// shared model is provably equivalent" — are stored too, so the negative
/// verification is not repeated in a warm process).
pub fn encode_prepared_model(artifact: &PreparedModelArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    match &artifact.shared {
        None => e.bool(false),
        Some(shared) => {
            e.bool(true);
            enc_model(&mut e, shared.model());
            enc_opt_report(&mut e, shared.opt_report());
            let mut union: Vec<StmtId> = shared.union().iter().copied().collect();
            union.sort_unstable();
            e.usize(union.len());
            for s in union {
                e.u32(s.0);
            }
        }
    }
    encode_frame(Stage::PrepareModel, artifact.key, &e.buf)
}

/// Decodes a prepared-model artifact, re-deriving the arena preparation.
pub fn decode_prepared_model(bytes: &[u8], key: u64) -> Result<PreparedModelArtifact> {
    let payload = decode_frame(bytes, Stage::PrepareModel, key)?;
    let mut d = Dec::new(payload);
    let shared = if d.bool()? {
        let model = dec_model(&mut d)?;
        let report = dec_opt_report(&mut d)?;
        let n = d.seq_len()?;
        let mut union = HashSet::with_capacity(n);
        for _ in 0..n {
            union.insert(StmtId(d.u32()?));
        }
        Some(Arc::new(SharedCheckModel::from_parts(model, report, union)))
    } else {
        None
    };
    d.finish()?;
    Ok(PreparedModelArtifact { key, shared })
}

// ---------------------------------------------------------------------------
// Test suite
// ---------------------------------------------------------------------------

fn enc_input_vector(e: &mut Enc, v: &InputVector) {
    e.usize(v.len());
    for (name, value) in v.iter() {
        e.str(name);
        e.i64(value);
    }
}

fn dec_input_vector(d: &mut Dec<'_>) -> Result<InputVector> {
    let n = d.seq_len()?;
    let mut out = InputVector::new();
    for _ in 0..n {
        let name = d.str()?;
        let value = d.i64()?;
        out.set(name, value);
    }
    Ok(out)
}

fn enc_path_spec(e: &mut Enc, p: &PathSpec) {
    e.usize(p.decisions.len());
    for (stmt, choice) in &p.decisions {
        e.u32(stmt.0);
        enc_branch_choice(e, *choice);
    }
}

fn dec_path_spec(d: &mut Dec<'_>) -> Result<PathSpec> {
    let n = d.seq_len()?;
    let mut decisions = Vec::with_capacity(n);
    for _ in 0..n {
        let stmt = StmtId(d.u32()?);
        let choice = dec_branch_choice(d)?;
        decisions.push((stmt, choice));
    }
    Ok(PathSpec { decisions })
}

fn enc_goal(e: &mut Enc, g: &CoverageGoal) {
    e.u32(g.segment.0);
    match &g.kind {
        GoalKind::RegionPath(path) => {
            e.u8(0);
            enc_path_spec(e, path);
        }
        GoalKind::BlockExecution(block) => {
            e.u8(1);
            e.u32(block.0);
        }
    }
}

fn dec_goal(d: &mut Dec<'_>) -> Result<CoverageGoal> {
    let segment = SegmentId(d.u32()?);
    let kind = match d.u8()? {
        0 => GoalKind::RegionPath(dec_path_spec(d)?),
        1 => GoalKind::BlockExecution(BlockId(d.u32()?)),
        _ => return Err(CodecError::Malformed("goal kind tag")),
    };
    Ok(CoverageGoal { segment, kind })
}

fn enc_status(e: &mut Enc, s: &CoverageStatus) {
    match s {
        CoverageStatus::Covered { vector, by } => {
            e.u8(0);
            enc_input_vector(e, vector);
            e.u8(match by {
                GeneratorKind::Heuristic => 0,
                GeneratorKind::ModelChecker => 1,
            });
        }
        CoverageStatus::Infeasible => e.u8(1),
        CoverageStatus::Unknown => e.u8(2),
    }
}

fn dec_status(d: &mut Dec<'_>) -> Result<CoverageStatus> {
    Ok(match d.u8()? {
        0 => {
            let vector = dec_input_vector(d)?;
            let by = match d.u8()? {
                0 => GeneratorKind::Heuristic,
                1 => GeneratorKind::ModelChecker,
                _ => return Err(CodecError::Malformed("generator kind tag")),
            };
            CoverageStatus::Covered { vector, by }
        }
        1 => CoverageStatus::Infeasible,
        2 => CoverageStatus::Unknown,
        _ => return Err(CodecError::Malformed("coverage status tag")),
    })
}

/// Encodes a test-suite artifact.
pub fn encode_suite(artifact: &SuiteArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(artifact.suite.goals.len());
    for (goal, status) in &artifact.suite.goals {
        enc_goal(&mut e, goal);
        enc_status(&mut e, status);
    }
    encode_frame(Stage::Testgen, artifact.key, &e.buf)
}

/// Decodes a test-suite artifact.
pub fn decode_suite(bytes: &[u8], key: u64) -> Result<SuiteArtifact> {
    let payload = decode_frame(bytes, Stage::Testgen, key)?;
    let mut d = Dec::new(payload);
    let n = d.seq_len()?;
    let mut goals = Vec::with_capacity(n);
    for _ in 0..n {
        let goal = dec_goal(&mut d)?;
        let status = dec_status(&mut d)?;
        goals.push((goal, status));
    }
    d.finish()?;
    Ok(SuiteArtifact {
        key,
        suite: TestSuite { goals },
    })
}

// ---------------------------------------------------------------------------
// Measurement campaign
// ---------------------------------------------------------------------------

fn enc_timing(e: &mut Enc, t: &SegmentTiming) {
    e.u32(t.segment.0);
    e.usize(t.samples.len());
    for s in &t.samples {
        e.u64(*s);
    }
    e.u64(t.max_observed);
    e.u64(t.static_estimate);
}

fn dec_timing(d: &mut Dec<'_>) -> Result<SegmentTiming> {
    let segment = SegmentId(d.u32()?);
    let n = d.seq_len()?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(d.u64()?);
    }
    let max_observed = d.u64()?;
    let static_estimate = d.u64()?;
    Ok(SegmentTiming {
        segment,
        samples,
        max_observed,
        static_estimate,
    })
}

/// Encodes a measurement-campaign artifact.
pub fn encode_campaign(artifact: &CampaignArtifact) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(artifact.campaign.timings.len());
    for t in &artifact.campaign.timings {
        enc_timing(&mut e, t);
    }
    e.usize(artifact.campaign.runs);
    encode_frame(Stage::Measure, artifact.key, &e.buf)
}

/// Decodes a measurement-campaign artifact.
pub fn decode_campaign(bytes: &[u8], key: u64) -> Result<CampaignArtifact> {
    let payload = decode_frame(bytes, Stage::Measure, key)?;
    let mut d = Dec::new(payload);
    let n = d.seq_len()?;
    let mut timings = Vec::with_capacity(n);
    for _ in 0..n {
        timings.push(dec_timing(&mut d)?);
    }
    let runs = d.usize()?;
    d.finish()?;
    Ok(CampaignArtifact {
        key,
        campaign: MeasurementCampaign { timings, runs },
    })
}

// ---------------------------------------------------------------------------
// Analysis report (the bound artifact)
// ---------------------------------------------------------------------------

/// Encodes a bound artifact.
pub fn encode_bound(artifact: &BoundArtifact) -> Vec<u8> {
    let r = &artifact.report;
    let mut e = Enc::default();
    e.str(&r.function);
    e.u128(r.path_bound);
    e.usize(r.segments);
    e.usize(r.instrumentation_points);
    e.u128(r.measurements);
    e.usize(r.goals);
    e.usize(r.heuristic_covered);
    e.usize(r.checker_covered);
    e.usize(r.infeasible);
    e.usize(r.unknown);
    e.usize(r.measurement_runs);
    e.u64(r.wcet_bound);
    e.opt(&r.exhaustive_max, |e, v| e.u64(*v));
    encode_frame(Stage::Bound, artifact.key, &e.buf)
}

/// A bound artifact decoded without allocation: every field is a scalar and
/// the function name borrows the payload bytes.  This is the zero-copy view
/// the segment log's bound fast-path validates against before deciding
/// whether an owned [`BoundArtifact`] is needed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundView<'a> {
    /// Function name, borrowed from the frame payload.
    pub function: &'a str,
    /// Path bound the analysis ran under.
    pub path_bound: u128,
    /// Partition segment count.
    pub segments: usize,
    /// Instrumentation points placed.
    pub instrumentation_points: usize,
    /// Total measurements taken.
    pub measurements: u128,
    /// Coverage goals issued.
    pub goals: usize,
    /// Goals covered heuristically.
    pub heuristic_covered: usize,
    /// Goals covered by the model checker.
    pub checker_covered: usize,
    /// Goals proved infeasible.
    pub infeasible: usize,
    /// Goals left unknown.
    pub unknown: usize,
    /// Measurement campaign runs.
    pub measurement_runs: usize,
    /// The WCET bound.
    pub wcet_bound: u64,
    /// Exhaustive-simulation maximum, when one was computed.
    pub exhaustive_max: Option<u64>,
}

impl BoundView<'_> {
    /// Materializes the owned report (the only allocation: the name).
    pub fn to_report(&self) -> AnalysisReport {
        AnalysisReport {
            function: self.function.to_owned(),
            path_bound: self.path_bound,
            segments: self.segments,
            instrumentation_points: self.instrumentation_points,
            measurements: self.measurements,
            goals: self.goals,
            heuristic_covered: self.heuristic_covered,
            checker_covered: self.checker_covered,
            infeasible: self.infeasible,
            unknown: self.unknown,
            measurement_runs: self.measurement_runs,
            wcet_bound: self.wcet_bound,
            exhaustive_max: self.exhaustive_max,
        }
    }
}

/// Decodes a bound payload (as returned by [`decode_frame`] /
/// [`parse_frame`]) into a borrowed [`BoundView`] without allocating.
pub fn decode_bound_view(payload: &[u8]) -> Result<BoundView<'_>> {
    let mut d = Dec::new(payload);
    let view = BoundView {
        function: d.str_ref()?,
        path_bound: d.u128()?,
        segments: d.usize()?,
        instrumentation_points: d.usize()?,
        measurements: d.u128()?,
        goals: d.usize()?,
        heuristic_covered: d.usize()?,
        checker_covered: d.usize()?,
        infeasible: d.usize()?,
        unknown: d.usize()?,
        measurement_runs: d.usize()?,
        wcet_bound: d.u64()?,
        exhaustive_max: d.opt(|d| d.u64())?,
    };
    d.finish()?;
    Ok(view)
}

/// Decodes a bound artifact.
pub fn decode_bound(bytes: &[u8], key: u64) -> Result<BoundArtifact> {
    let payload = decode_frame(bytes, Stage::Bound, key)?;
    let report = decode_bound_view(payload)?.to_report();
    Ok(BoundArtifact { key, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_core::pipeline::{self, ArtifactStore, TieredStore};
    use tmg_core::{HybridGenerator, WcetAnalysis};
    use tmg_minic::parse_function;

    fn artifacts() -> (ArtifactStore, tmg_minic::Function) {
        let f = parse_function(
            r#"
            void ctl(char a __range(0, 4), char b __range(0, 3)) {
                char i = 0;
                if (a > 2) { x(); }
                if (a < 1) { y(); }
                while (i < b) __bound(3) { i = i + 1; }
                switch (b) { case 0: z0(); break; default: zd(); break; }
            }
            "#,
        )
        .expect("parse");
        (ArtifactStore::new(), f)
    }

    #[test]
    fn lowered_round_trips() {
        let (store, f) = artifacts();
        let lowered = store.lowered(&f);
        let bytes = encode_lowered(&lowered);
        let back = decode_lowered(&bytes, lowered.function_key).expect("decode");
        assert_eq!(back.lowered.cfg, lowered.lowered.cfg);
        assert_eq!(back.lowered.regions, lowered.lowered.regions);
        assert_eq!(back.counts, lowered.counts);
        assert_eq!(back.decision_stmts, lowered.decision_stmts);
        assert_eq!(
            encode_lowered(&back),
            bytes,
            "re-encode must be bit-identical"
        );
    }

    #[test]
    fn partition_suite_campaign_bound_round_trip() {
        let (store, f) = artifacts();
        let analysis = WcetAnalysis::new(3);
        let staged =
            pipeline::analyse_staged_detailed(&store, &analysis, &f, None).expect("analysis");
        let p = encode_partition(&staged.partition);
        let p_back = decode_partition(&p, staged.partition.key).expect("partition");
        assert_eq!(p_back.plan, staged.partition.plan);
        assert_eq!(encode_partition(&p_back), p);

        let s = encode_suite(&staged.suite);
        let s_back = decode_suite(&s, staged.suite.key).expect("suite");
        assert_eq!(s_back.suite, staged.suite.suite);
        assert_eq!(encode_suite(&s_back), s);

        let c = encode_campaign(&staged.campaign);
        let c_back = decode_campaign(&c, staged.campaign.key).expect("campaign");
        assert_eq!(c_back.campaign, staged.campaign.campaign);
        assert_eq!(encode_campaign(&c_back), c);

        let key = pipeline::bound_key(&analysis, tmg_cfg::function_fingerprint(&f), None);
        let bound = tmg_core::pipeline::BoundArtifact {
            key,
            report: staged.report.clone(),
        };
        let b = encode_bound(&bound);
        let b_back = decode_bound(&b, key).expect("bound");
        assert_eq!(b_back.report, staged.report);
        assert_eq!(encode_bound(&b_back), b);
    }

    #[test]
    fn prepared_model_round_trips_including_the_negative_case() {
        let (store, f) = artifacts();
        let lowered = store.lowered(&f);
        let checker = tmg_tsys::ModelChecker::new();
        let artifact = store.prepared_model(&f, &lowered, &checker);
        let bytes = encode_prepared_model(&artifact);
        let back = decode_prepared_model(&bytes, artifact.key).expect("decode");
        match (&artifact.shared, &back.shared) {
            (Some(a), Some(b)) => {
                assert_eq!(a.model(), b.model());
                assert_eq!(a.opt_report(), b.opt_report());
                assert_eq!(a.union(), b.union());
            }
            (None, None) => {}
            _ => panic!("shared-model presence must round-trip"),
        }
        assert_eq!(encode_prepared_model(&back), bytes);

        let negative = tmg_core::pipeline::PreparedModelArtifact {
            key: 42,
            shared: None,
        };
        let bytes = encode_prepared_model(&negative);
        let back = decode_prepared_model(&bytes, 42).expect("decode");
        assert!(back.shared.is_none());
    }

    #[test]
    fn decoded_suite_feeds_an_identical_downstream_pipeline() {
        // The acceptance property behind the round-trip: a campaign measured
        // from a *decoded* suite equals one measured from the original.
        let (store, f) = artifacts();
        let lowered = store.lowered(&f);
        let partition = store.partition(&lowered, 3);
        let suite = store.suite(&f, &lowered, &partition, &HybridGenerator::new());
        let decoded = decode_suite(&encode_suite(&suite), suite.key).expect("suite");
        let original = pipeline::compute_campaign(
            &f,
            &lowered,
            &partition,
            &suite,
            &tmg_target::CostModel::hcs12(),
            0,
        )
        .expect("campaign");
        let replayed = pipeline::compute_campaign(
            &f,
            &lowered,
            &partition,
            &decoded,
            &tmg_target::CostModel::hcs12(),
            0,
        )
        .expect("campaign");
        assert_eq!(original.campaign, replayed.campaign);
    }

    #[test]
    fn header_checks_reject_foreign_and_damaged_frames() {
        let (store, f) = artifacts();
        let lowered = store.lowered(&f);
        let good = encode_lowered(&lowered);
        let key = lowered.function_key;

        // Magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_lowered(&bad, key).err(), Some(CodecError::BadMagic));
        // Version.
        let mut bad = good.clone();
        bad[4] = CODEC_VERSION as u8 + 1;
        assert!(matches!(
            decode_lowered(&bad, key),
            Err(CodecError::VersionMismatch { .. })
        ));
        // Kind.
        assert!(matches!(
            decode_partition(&good, key),
            Err(CodecError::KindMismatch { .. })
        ));
        // Key.
        assert_eq!(
            decode_lowered(&good, key ^ 1).err(),
            Some(CodecError::KeyMismatch)
        );
        // Payload corruption: flip one byte in the middle.
        let mut bad = good.clone();
        let mid = HEADER_LEN + (bad.len() - HEADER_LEN - DIGEST_LEN) / 2;
        bad[mid] ^= 0xFF;
        assert_eq!(
            decode_lowered(&bad, key).err(),
            Some(CodecError::ChecksumMismatch)
        );
        // Truncation.
        assert!(decode_lowered(&good[..good.len() - 3], key).is_err());
        assert!(decode_lowered(&good[..10], key).is_err());
        // The original still decodes.
        assert!(decode_lowered(&good, key).is_ok());
    }

    #[test]
    fn parse_frame_discovers_stage_and_key_and_rejects_what_decode_rejects() {
        let (store, f) = artifacts();
        let lowered = store.lowered(&f);
        let good = encode_lowered(&lowered);
        let view = parse_frame(&good).expect("parse");
        assert_eq!(view.stage, Stage::Lower);
        assert_eq!(view.key, lowered.function_key);
        assert_eq!(
            view.payload,
            decode_frame(&good, Stage::Lower, lowered.function_key).expect("decode")
        );

        // An impossible stage tag is a kind mismatch, not a panic.
        let mut bad = good.clone();
        bad[6] = 6;
        assert_eq!(
            parse_frame(&bad).err(),
            Some(CodecError::KindMismatch { found: 6 })
        );
        // Same rejection surface as the typed path.
        let mut torn = good.clone();
        torn.truncate(torn.len() / 2);
        assert!(parse_frame(&torn).is_err());
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            parse_frame(&flipped).err(),
            Some(CodecError::ChecksumMismatch)
        );
    }

    #[test]
    fn bound_view_borrows_the_payload_and_matches_the_owned_decode() {
        let report = AnalysisReport {
            function: "wiper".to_owned(),
            path_bound: 10,
            segments: 4,
            instrumentation_points: 7,
            measurements: 120,
            goals: 9,
            heuristic_covered: 5,
            checker_covered: 3,
            infeasible: 1,
            unknown: 0,
            measurement_runs: 12,
            wcet_bound: 4242,
            exhaustive_max: Some(4100),
        };
        let artifact = BoundArtifact { key: 77, report };
        let bytes = encode_bound(&artifact);
        let payload = decode_frame(&bytes, Stage::Bound, 77).expect("frame");
        let view = decode_bound_view(payload).expect("view");
        assert_eq!(view.function, "wiper");
        assert_eq!(view.to_report(), artifact.report);
        assert_eq!(
            decode_bound(&bytes, 77).expect("owned").report,
            artifact.report
        );
    }
}
