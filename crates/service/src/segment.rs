//! The append-only segment log behind the disk tier.
//!
//! Artifact frames ([`crate::codec`]) are appended to bounded *segment
//! files* (`<root>/segments/seg-<id>.tmgs`); an in-memory
//! `key → (segment, offset, len)` index locates them, and an on-disk,
//! atomically published snapshot of that index (`<root>/index.tmgi`) lets a
//! fresh process start warm without re-scanning artifact data.  The design
//! in one paragraph:
//!
//! * **Appends** go to a per-process *active segment*, claimed by creating a
//!   `seg-<id>.lock` file with `O_EXCL` (the advisory lock: the pid inside
//!   marks the owner; `/proc/<pid>` liveness detects stale locks).  N
//!   processes sharing one cache directory therefore never contend on a
//!   write path — each appends to its own segment.
//! * **Durability is group commit**: appends are acknowledged immediately
//!   and fsync'd in batches (bounded by a latency window and a byte
//!   threshold).  Correctness never depends on the fsync — every frame is
//!   digest-verified on read, so a lost tail is a clean miss + recompute,
//!   never a wrong artifact.
//! * **Reads** are `pread`s of the exact record bytes into a reused arena
//!   buffer; verification is borrowed ([`codec::parse_frame`]) and payloads
//!   decode lazily, so the warm path never scans a directory and the bound
//!   fast path never builds an owned AST.
//! * **The index snapshot is an accelerator, not an authority**: it stores a
//!   per-segment *watermark* (bytes accounted); a fresh process tail-scans
//!   any segment bytes beyond the watermark, so records appended by writers
//!   that died before publishing (or by still-running peers) are recovered.
//!   A torn or missing snapshot degrades to a full scan rebuild.
//! * **Eviction is segment-granular** (oldest sealed segment first) and a
//!   **compaction** pass rewrites the live frames of mostly-dead segments —
//!   as verified raw bytes, no payload decode — into the active segment,
//!   then deletes the victims.  Crash-mid-compaction leaves bit-identical
//!   duplicates, which are reconciled (last wins) by the next scan.
//!
//! Fault-plan sites ([`crate::fault`]): `torn_append` and
//! `crash_after_publish` abandon the active segment mid-append,
//! `crash_mid_compaction` dies between the copy and the delete,
//! `torn_write`/`crash_before_publish` hit the index snapshot publish, and
//! `short_read`/`bit_flip` damage the `pread` bytes in flight.

use crate::codec::{self, CodecError};
use crate::fault::{self, FaultKind, FaultPlan};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::os::unix::fs::FileExt as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tmg_cfg::StableHasher;
use tmg_core::pipeline::{Stage, STAGES};

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"TMGS";

/// Index snapshot magic.
pub const INDEX_MAGIC: [u8; 4] = *b"TMGI";

/// On-disk format version shared by segments and the index snapshot.
pub const SEGMENT_VERSION: u16 = 1;

/// File extension of segment files.
pub const SEGMENT_EXT: &str = "tmgs";

/// Name of the published index snapshot under the cache root.
pub const INDEX_FILE: &str = "index.tmgi";

/// Segment header: magic (4) + version (2) + reserved (2) + segment id (8).
const SEGMENT_HEADER_LEN: u64 = 16;

/// Every record is a `u32` frame length followed by the frame bytes.
const RECORD_PREFIX_LEN: u64 = 4;

/// Default rotation threshold for the active segment.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Default group-commit latency window: the longest an acknowledged append
/// stays unsynced while later appends keep arriving.
pub const DEFAULT_GROUP_COMMIT_WINDOW_MS: u64 = 4;

/// Byte threshold that forces a group commit before the window elapses.
const GROUP_COMMIT_BYTES: u64 = 1024 * 1024;

/// Compaction trigger: a sealed segment whose live bytes are below this
/// fraction of its record bytes is rewritten.
pub const COMPACT_LIVE_RATIO: f64 = 0.5;

/// Arena buffers kept for reuse by the read path.
const ARENA_POOL_CAP: usize = 8;

/// Where one live frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    seg: u64,
    off: u64,
    len: u32,
}

/// Accounting for one segment file.
#[derive(Debug, Clone, Copy, Default)]
struct SegmentInfo {
    /// Accounted byte length (the *watermark*): every record below this
    /// offset is indexed live or counted dead.  The physical file may be
    /// longer when a writer died mid-append; scans cover the gap.
    len: u64,
    /// Bytes of records the index still points at (prefix included).
    live: u64,
    /// Bytes of overwritten, discarded or abandoned records.
    dead: u64,
    /// Sealed segments take no more appends from this process.
    sealed: bool,
}

struct ActiveSegment {
    id: u64,
    file: Arc<File>,
    /// Group-commit state: bytes and appends acknowledged but not fsync'd,
    /// and when the oldest of them was written.
    unsynced: u64,
    first_unsynced: Option<Instant>,
}

#[derive(Default)]
struct LogState {
    index: FxHashMap<(u8, u64), Loc>,
    /// Ascending id = oldest first, which is the eviction order.
    segments: BTreeMap<u64, SegmentInfo>,
    readers: FxHashMap<u64, Arc<File>>,
    active: Option<ActiveSegment>,
    total_bytes: u64,
}

impl LogState {
    fn mark_dead(&mut self, loc: &Loc) {
        if let Some(info) = self.segments.get_mut(&loc.seg) {
            let n = RECORD_PREFIX_LEN + u64::from(loc.len);
            info.live = info.live.saturating_sub(n);
            info.dead += n;
        }
    }
}

/// What a recovery pass found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Records examined (valid frames plus rejected ones).
    pub scanned: u64,
    /// Records that failed verification and were quarantined: torn tails
    /// are truncated away, mid-segment corruption ends the segment's
    /// scannable prefix.  Each becomes a clean miss on its next request.
    pub quarantined: u64,
    /// Orphaned index `.tmp` files reclaimed (crashed mid-publish).
    pub reclaimed_tmp: u64,
}

/// Counter snapshot of the segment tier, rendered into `tmg-tier-stats/v1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Segment files currently accounted.
    pub segments: u64,
    /// Bytes of live (indexed) records.
    pub live_bytes: u64,
    /// Bytes of dead records awaiting compaction or eviction.
    pub dead_bytes: u64,
    /// Compaction passes completed (victim segment deleted).
    pub compactions: u64,
    /// Live frames rewritten by compaction (raw verified bytes, no decode).
    pub compacted_frames: u64,
    /// Batched fsyncs issued by group commit.
    pub group_commit_batches: u64,
    /// The configured group-commit latency window, in milliseconds.
    pub group_commit_window_ms: u64,
    /// Warm hits served without materializing an owned artifact payload
    /// (borrowed verify + lazy decode; the bound fast path).
    pub zero_copy_hits: u64,
    /// Warm hits that materialized an owned artifact (AST-bearing stages).
    pub decoded_hits: u64,
    /// Index snapshots atomically published.
    pub index_publishes: u64,
    /// Opens that found no usable snapshot and rebuilt by scanning.
    pub index_rebuilds: u64,
}

/// A frame read into an arena buffer; hands the buffer back to the pool on
/// drop.  [`FrameBuf::frame`] is the raw (still-encoded, still-unverified)
/// frame bytes — verification happens exactly once, in the caller's decode.
pub struct FrameBuf {
    buf: Vec<u8>,
    pool: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl FrameBuf {
    /// The frame bytes (record minus its length prefix).
    pub fn frame(&self) -> &[u8] {
        &self.buf[RECORD_PREFIX_LEN as usize..]
    }
}

impl Drop for FrameBuf {
    fn drop(&mut self) {
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < ARENA_POOL_CAP {
                pool.push(std::mem::take(&mut self.buf));
            }
        }
    }
}

/// Construction options for a [`SegmentLog`].
#[derive(Debug, Clone)]
pub struct SegmentLogOptions {
    /// Cache root; segments live under `<root>/segments/`.
    pub root: PathBuf,
    /// Byte budget across all accounted segments.
    pub budget: u64,
    /// Active-segment rotation threshold.
    pub segment_bytes: u64,
    /// Group-commit latency window in milliseconds.
    pub group_commit_window_ms: u64,
    /// Fault-injection plan.
    pub faults: FaultPlan,
}

/// The append-only segment log.  All operations are infallible from the
/// caller's perspective: I/O errors degrade to misses (reads) or dropped
/// appends (writes) — the analysis never depends on the disk succeeding.
pub struct SegmentLog {
    root: PathBuf,
    seg_dir: PathBuf,
    budget: u64,
    segment_bytes: u64,
    window: Duration,
    window_ms: u64,
    pub(crate) faults: FaultPlan,
    state: Mutex<Option<LogState>>,
    arena: Arc<Mutex<Vec<Vec<u8>>>>,
    tmp_seq: AtomicU64,
    pub(crate) hits: [AtomicU64; 6],
    pub(crate) misses: [AtomicU64; 6],
    pub(crate) stores: [AtomicU64; 6],
    pub(crate) evictions: [AtomicU64; 6],
    pub(crate) quarantined: [AtomicU64; 6],
    zero_copy_hits: AtomicU64,
    decoded_hits: AtomicU64,
    compactions: AtomicU64,
    compacted_frames: AtomicU64,
    group_commit_batches: AtomicU64,
    index_publishes: AtomicU64,
    index_rebuilds: AtomicU64,
}

impl SegmentLog {
    /// Opens (or creates) the log.  Like the store, this is lazy: no
    /// directory scan and no index read happens until the first operation —
    /// an unusable root must still fail here so operators see a typo'd
    /// cache path instead of silently losing persistence.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directories cannot be created.
    pub fn open(options: SegmentLogOptions) -> io::Result<SegmentLog> {
        let seg_dir = options.root.join("segments");
        fs::create_dir_all(&seg_dir)?;
        Ok(SegmentLog {
            seg_dir,
            budget: options.budget,
            segment_bytes: options.segment_bytes.max(SEGMENT_HEADER_LEN + 64),
            window: Duration::from_millis(options.group_commit_window_ms),
            window_ms: options.group_commit_window_ms,
            faults: options.faults,
            root: options.root,
            state: Mutex::new(None),
            arena: Arc::new(Mutex::new(Vec::new())),
            tmp_seq: AtomicU64::new(0),
            hits: Default::default(),
            misses: Default::default(),
            stores: Default::default(),
            evictions: Default::default(),
            quarantined: Default::default(),
            zero_copy_hits: AtomicU64::new(0),
            decoded_hits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compacted_frames: AtomicU64::new(0),
            group_commit_batches: AtomicU64::new(0),
            index_publishes: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
        })
    }

    /// Cache root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.seg_dir.join(format!("seg-{id:016x}.{SEGMENT_EXT}"))
    }

    fn lock_path(&self, id: u64) -> PathBuf {
        self.seg_dir.join(format!("seg-{id:016x}.lock"))
    }

    fn state_guard(&self) -> MutexGuard<'_, Option<LogState>> {
        let mut guard = self.state.lock().expect("segment log state");
        if guard.is_none() {
            *guard = Some(self.load_state());
        }
        guard
    }

    // -- counters ----------------------------------------------------------

    /// Records a warm probe outcome for `stage`.
    pub(crate) fn record(&self, stage: Stage, hit: bool) {
        let counters = if hit { &self.hits } else { &self.misses };
        counters[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hit served without materializing an owned payload.
    pub(crate) fn note_zero_copy_hit(&self) {
        self.zero_copy_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hit that decoded an owned artifact.
    pub(crate) fn note_decoded_hit(&self) {
        self.decoded_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently accounted across all segments.
    pub(crate) fn total_bytes(&self) -> u64 {
        self.state_guard().as_ref().expect("loaded").total_bytes
    }

    /// The configured byte budget.
    pub(crate) fn budget(&self) -> u64 {
        self.budget
    }

    /// Segment-tier counter snapshot.
    pub fn snapshot(&self) -> SegmentStats {
        let (segments, live, dead) = {
            let guard = self.state_guard();
            let state = guard.as_ref().expect("loaded");
            let live = state.segments.values().map(|s| s.live).sum();
            let dead = state.segments.values().map(|s| s.dead).sum();
            (state.segments.len() as u64, live, dead)
        };
        SegmentStats {
            segments,
            live_bytes: live,
            dead_bytes: dead,
            compactions: self.compactions.load(Ordering::Relaxed),
            compacted_frames: self.compacted_frames.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_window_ms: self.window_ms,
            zero_copy_hits: self.zero_copy_hits.load(Ordering::Relaxed),
            decoded_hits: self.decoded_hits.load(Ordering::Relaxed),
            index_publishes: self.index_publishes.load(Ordering::Relaxed),
            index_rebuilds: self.index_rebuilds.load(Ordering::Relaxed),
        }
    }

    // -- append ------------------------------------------------------------

    /// Appends a frame for `(stage, key)`.  Returns `true` when the record
    /// was written and indexed (counted as a store by the caller).
    pub(crate) fn append(&self, stage: Stage, key: u64, frame: &[u8]) -> bool {
        let _span = tmg_obs::span("segment:append");
        let mut guard = self.state_guard();
        let state = guard.as_mut().expect("loaded");
        if self.append_frame_locked(state, stage, key, frame, true) {
            self.stores[stage.index()].fetch_add(1, Ordering::Relaxed);
            self.evict_locked(state);
            self.maybe_compact_locked(state);
            true
        } else {
            false
        }
    }

    /// The shared append path.  `with_faults` is set only for caller appends
    /// (compaction rewrites must stay deterministic under a fault plan).
    fn append_frame_locked(
        &self,
        state: &mut LogState,
        stage: Stage,
        key: u64,
        frame: &[u8],
        with_faults: bool,
    ) -> bool {
        let rec_len = RECORD_PREFIX_LEN + frame.len() as u64;
        if let Some(active) = &state.active {
            let cur = state.segments[&active.id].len;
            if cur + rec_len > self.segment_bytes && cur > SEGMENT_HEADER_LEN {
                self.seal_active_locked(state, true);
            }
        }
        if !self.ensure_active_locked(state) {
            return false;
        }
        let active_id = state.active.as_ref().expect("active").id;
        let file = state.active.as_ref().expect("active").file.clone();
        let off = state.segments[&active_id].len;
        let mut record = Vec::with_capacity(rec_len as usize);
        record.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        record.extend_from_slice(frame);

        if with_faults && self.faults.take(FaultKind::TornAppend) {
            // The writer dies half a record in.  The watermark stays at
            // `off`, so a scan hits the torn bytes and stops cleanly; this
            // process abandons the segment as a real crash would.
            let _ = file.write_all_at(&fault::damage(FaultKind::TornAppend, &record), off);
            self.abandon_active_locked(state);
            return false;
        }
        if file.write_all_at(&record, off).is_err() {
            return false;
        }
        if with_faults && self.faults.take(FaultKind::CrashAfterPublish) {
            // Durable but unaccounted: the writer dies right after the
            // append, before touching its in-memory index — and before ever
            // publishing a snapshot covering the record, so a fresh process
            // must recover it by tail-scanning past the watermark.
            let _ = file.sync_data();
            self.abandon_active_locked(state);
            return false;
        }

        let info = state.segments.get_mut(&active_id).expect("active info");
        info.len += rec_len;
        info.live += rec_len;
        state.total_bytes += rec_len;
        let loc = Loc {
            seg: active_id,
            off,
            len: frame.len() as u32,
        };
        if let Some(old) = state.index.insert((stage.index() as u8, key), loc) {
            state.mark_dead(&old);
        }

        // Group commit: acknowledge now, fsync when the window elapses or
        // enough bytes pile up.  Every seal/flush/drop syncs the remainder.
        let active = state.active.as_mut().expect("active");
        active.unsynced += rec_len;
        let now = Instant::now();
        let due = active.unsynced >= GROUP_COMMIT_BYTES
            || active
                .first_unsynced
                .is_some_and(|t| now.duration_since(t) >= self.window);
        if active.first_unsynced.is_none() {
            active.first_unsynced = Some(now);
        }
        if due {
            active.unsynced = 0;
            active.first_unsynced = None;
            let file = active.file.clone();
            let _span = tmg_obs::span("segment:fsync");
            let _ = file.sync_data();
            self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Claims a fresh active segment: `O_EXCL` creation of the lock file
    /// arbitrates ids between processes.
    fn ensure_active_locked(&self, state: &mut LogState) -> bool {
        if state.active.is_some() {
            return true;
        }
        let mut id = state.segments.keys().max().copied().unwrap_or(0) + 1;
        let file = loop {
            let lock = self.lock_path(id);
            match OpenOptions::new().write(true).create_new(true).open(&lock) {
                Ok(mut lock_file) => {
                    if self.segment_path(id).exists() {
                        // A segment this process never loaded already owns
                        // the id (concurrent writer or leftover): skip it
                        // rather than truncate someone's data.
                        let _ = fs::remove_file(&lock);
                        id += 1;
                        continue;
                    }
                    let _ = lock_file.write_all(std::process::id().to_string().as_bytes());
                    let _ = lock_file.sync_all();
                    match OpenOptions::new()
                        .read(true)
                        .write(true)
                        .create(true)
                        .truncate(true)
                        .open(self.segment_path(id))
                    {
                        Ok(file) => break file,
                        Err(_) => {
                            let _ = fs::remove_file(&lock);
                            return false;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    id += 1;
                }
                Err(_) => return false,
            }
        };
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&id.to_le_bytes());
        if file.write_all_at(&header, 0).is_err() {
            let _ = fs::remove_file(self.lock_path(id));
            let _ = fs::remove_file(self.segment_path(id));
            return false;
        }
        state.segments.insert(
            id,
            SegmentInfo {
                len: SEGMENT_HEADER_LEN,
                live: 0,
                dead: 0,
                sealed: false,
            },
        );
        state.total_bytes += SEGMENT_HEADER_LEN;
        let file = Arc::new(file);
        state.readers.insert(id, file.clone());
        state.active = Some(ActiveSegment {
            id,
            file,
            unsynced: 0,
            first_unsynced: None,
        });
        true
    }

    /// Seals the active segment: syncs the tail, releases the lock and
    /// (optionally) publishes the index snapshot.
    fn seal_active_locked(&self, state: &mut LogState, publish: bool) {
        if let Some(active) = state.active.take() {
            let _ = active.file.sync_data();
            if active.unsynced > 0 {
                self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(info) = state.segments.get_mut(&active.id) {
                info.sealed = true;
            }
            let _ = fs::remove_file(self.lock_path(active.id));
            if publish {
                self.publish_index_locked(state);
            }
        }
    }

    /// Abandons the active segment as a crashed writer would: sealed in our
    /// accounting at the pre-crash watermark, lock released, nothing
    /// published.
    fn abandon_active_locked(&self, state: &mut LogState) {
        if let Some(active) = state.active.take() {
            if let Some(info) = state.segments.get_mut(&active.id) {
                info.sealed = true;
            }
            let _ = fs::remove_file(self.lock_path(active.id));
        }
    }

    // -- read --------------------------------------------------------------

    /// `pread`s the raw record for `(stage, key)` into an arena buffer.
    /// Returns the still-unverified frame bytes — the caller's decode is
    /// the single verification pass; on failure it must call
    /// [`SegmentLog::discard`].
    pub(crate) fn read(&self, stage: Stage, key: u64) -> Option<FrameBuf> {
        let (loc, file) = {
            let mut guard = self.state_guard();
            let state = guard.as_mut().expect("loaded");
            let loc = *state.index.get(&(stage.index() as u8, key))?;
            match self.reader_locked(state, loc.seg) {
                Some(file) => (loc, file),
                None => {
                    // The segment vanished (evicted or truncated by a peer):
                    // every entry pointing at it is now a clean miss.
                    self.drop_segment_locked(state, loc.seg, false);
                    return None;
                }
            }
        };
        let len = (RECORD_PREFIX_LEN + u64::from(loc.len)) as usize;
        let mut buf = {
            let mut pool = self.arena.lock().expect("arena");
            pool.pop().unwrap_or_default()
        };
        buf.clear();
        buf.resize(len, 0);
        if file.read_exact_at(&mut buf, loc.off).is_err() {
            self.discard(stage, key, &CodecError::Malformed("unreadable record"));
            return None;
        }
        for kind in [FaultKind::ShortRead, FaultKind::BitFlip] {
            if self.faults.take(kind) {
                let damaged = fault::damage(kind, &buf);
                buf.clear();
                buf.extend_from_slice(&damaged);
            }
        }
        if buf.len() < RECORD_PREFIX_LEN as usize
            || u32::from_le_bytes(buf[..4].try_into().expect("prefix")) != loc.len
        {
            self.discard(stage, key, &CodecError::Malformed("record prefix mismatch"));
            return None;
        }
        Some(FrameBuf {
            buf,
            pool: self.arena.clone(),
        })
    }

    fn reader_locked(&self, state: &mut LogState, seg: u64) -> Option<Arc<File>> {
        if let Some(file) = state.readers.get(&seg) {
            return Some(file.clone());
        }
        let file = Arc::new(File::open(self.segment_path(seg)).ok()?);
        state.readers.insert(seg, file.clone());
        Some(file)
    }

    /// Drops a frame that failed verification; the slot becomes a clean
    /// miss and the bytes count as dead until compaction reclaims them.
    pub(crate) fn discard(&self, stage: Stage, key: u64, error: &CodecError) {
        eprintln!(
            "tmg-service: discarding unusable cache record {}/{key:016x} ({error})",
            stage.name()
        );
        let mut guard = self.state_guard();
        let state = guard.as_mut().expect("loaded");
        if let Some(old) = state.index.remove(&(stage.index() as u8, key)) {
            state.mark_dead(&old);
        }
    }

    // -- eviction & compaction ---------------------------------------------

    /// Whether a lock file names a live foreign owner; stale locks are
    /// reclaimed on the way.
    fn lock_alive(&self, id: u64) -> bool {
        let path = self.lock_path(id);
        let Ok(text) = fs::read_to_string(&path) else {
            return false;
        };
        let Ok(pid) = text.trim().parse::<u32>() else {
            let _ = fs::remove_file(&path);
            return false;
        };
        if pid == std::process::id() {
            return true;
        }
        if Path::new("/proc").join(pid.to_string()).exists() {
            return true;
        }
        let _ = fs::remove_file(&path);
        false
    }

    /// Deletes whole segments, oldest first, until the byte budget holds.
    /// The active segment and live peers' segments are never victims.
    fn evict_locked(&self, state: &mut LogState) {
        while state.total_bytes > self.budget {
            let active_id = state.active.as_ref().map(|a| a.id);
            let victim = state
                .segments
                .iter()
                .filter(|(id, info)| Some(**id) != active_id && info.sealed)
                .map(|(id, _)| *id)
                .find(|id| !self.lock_alive(*id));
            let Some(victim) = victim else { break };
            self.drop_segment_locked(state, victim, true);
        }
    }

    /// Removes a segment and every index entry into it.
    fn drop_segment_locked(&self, state: &mut LogState, id: u64, count_evictions: bool) {
        let doomed: Vec<(u8, u64)> = state
            .index
            .iter()
            .filter(|(_, loc)| loc.seg == id)
            .map(|(k, _)| *k)
            .collect();
        for key in doomed {
            state.index.remove(&key);
            if count_evictions {
                self.evictions[key.0 as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(info) = state.segments.remove(&id) {
            state.total_bytes = state.total_bytes.saturating_sub(info.len);
        }
        state.readers.remove(&id);
        let _ = fs::remove_file(self.segment_path(id));
        let _ = fs::remove_file(self.lock_path(id));
    }

    /// Whether the on-disk file holds nothing beyond the accounted
    /// watermark.  A longer file means an unreconciled tail — a torn append
    /// or a crashed writer's durable-but-unindexed record — which only a
    /// scan (fresh load or recovery) may judge; compaction must not delete
    /// it.
    fn physical_matches_accounting(&self, id: u64, info: &SegmentInfo) -> bool {
        fs::metadata(self.segment_path(id)).map_or(true, |m| m.len() <= info.len)
    }

    /// Compacts sealed segments whose live ratio fell under
    /// [`COMPACT_LIVE_RATIO`]; empty sealed segments are simply dropped.
    fn maybe_compact_locked(&self, state: &mut LogState) {
        loop {
            let active_id = state.active.as_ref().map(|a| a.id);
            let victim = state
                .segments
                .iter()
                .filter(|(id, info)| Some(**id) != active_id && info.sealed)
                .filter(|(_, info)| {
                    let records = info.len.saturating_sub(SEGMENT_HEADER_LEN);
                    records == 0
                        || (info.dead > 0
                            && (info.live as f64) < COMPACT_LIVE_RATIO * records as f64)
                })
                .filter(|(id, info)| self.physical_matches_accounting(**id, info))
                .map(|(id, _)| *id)
                .find(|id| !self.lock_alive(*id));
            let Some(victim) = victim else { return };
            if !self.compact_segment_locked(state, victim) {
                return;
            }
        }
    }

    /// Forces a compaction pass over every sealed segment that holds any
    /// dead bytes, regardless of the live-ratio trigger.  Benchmarks and
    /// tests use this for deterministic reclamation.
    pub fn force_compact(&self) {
        let mut guard = self.state_guard();
        let state = guard.as_mut().expect("loaded");
        loop {
            let active_id = state.active.as_ref().map(|a| a.id);
            let victim = state
                .segments
                .iter()
                .filter(|(id, info)| Some(**id) != active_id && info.sealed)
                .filter(|(_, info)| info.dead > 0 || info.len <= SEGMENT_HEADER_LEN)
                .filter(|(id, info)| self.physical_matches_accounting(**id, info))
                .map(|(id, _)| *id)
                .find(|id| !self.lock_alive(*id));
            let Some(victim) = victim else { return };
            if !self.compact_segment_locked(state, victim) {
                return;
            }
        }
    }

    /// Rewrites the victim's live frames (verified raw bytes, no payload
    /// decode) into the active segment, then deletes the victim.  Returns
    /// `false` when an injected crash or an append failure stopped the pass
    /// — the victim stays, already-copied frames exist twice bit-identically.
    fn compact_segment_locked(&self, state: &mut LogState, victim: u64) -> bool {
        let _span = tmg_obs::span("segment:compaction");
        let mut entries: Vec<((u8, u64), Loc)> = state
            .index
            .iter()
            .filter(|(_, loc)| loc.seg == victim)
            .map(|(k, loc)| (*k, *loc))
            .collect();
        entries.sort_by_key(|(_, loc)| loc.off);
        if !entries.is_empty() {
            let Some(reader) = self.reader_locked(state, victim) else {
                self.drop_segment_locked(state, victim, false);
                return true;
            };
            for (key, loc) in entries {
                let mut buf = vec![0u8; (RECORD_PREFIX_LEN + u64::from(loc.len)) as usize];
                if reader.read_exact_at(&mut buf, loc.off).is_err()
                    || codec::parse_frame(&buf[RECORD_PREFIX_LEN as usize..]).is_err()
                {
                    // Unreadable under compaction = unreadable to a reader:
                    // quarantine it instead of copying rot forward.
                    state.index.remove(&key);
                    state.mark_dead(&loc);
                    self.quarantined[key.0 as usize].fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let stage = STAGES[key.0 as usize];
                if !self.append_frame_locked(
                    state,
                    stage,
                    key.1,
                    &buf[RECORD_PREFIX_LEN as usize..],
                    false,
                ) {
                    return false;
                }
                self.compacted_frames.fetch_add(1, Ordering::Relaxed);
                if self.faults.take(FaultKind::CrashMidCompaction) {
                    // Died after copying: the copied frames are indexed at
                    // their new home, the victim (with bit-identical
                    // duplicates) survives for the next scan to reconcile.
                    return false;
                }
            }
        }
        self.drop_segment_locked(state, victim, false);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.publish_index_locked(state);
        true
    }

    // -- index snapshot ----------------------------------------------------

    fn serialize_index(state: &LogState) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(state.segments.len() as u32).to_le_bytes());
        for (id, info) in &state.segments {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&info.len.to_le_bytes());
            out.push(u8::from(info.sealed));
        }
        out.extend_from_slice(&(state.index.len() as u64).to_le_bytes());
        for ((stage, key), loc) in &state.index {
            out.push(*stage);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&loc.seg.to_le_bytes());
            out.extend_from_slice(&loc.off.to_le_bytes());
            out.extend_from_slice(&loc.len.to_le_bytes());
        }
        let mut hasher = StableHasher::new();
        std::hash::Hasher::write(&mut hasher, &out);
        let digest = std::hash::Hasher::finish(&hasher);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Parses an index snapshot; `None` means torn/foreign/corrupt, which
    /// degrades to a scan rebuild.
    #[allow(clippy::type_complexity)]
    fn parse_index(bytes: &[u8]) -> Option<(Vec<(u64, u64, bool)>, Vec<((u8, u64), Loc)>)> {
        if bytes.len() < 8 + 8 || bytes[0..4] != INDEX_MAGIC {
            return None;
        }
        if u16::from_le_bytes(bytes[4..6].try_into().ok()?) != SEGMENT_VERSION {
            return None;
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().ok()?);
        let mut hasher = StableHasher::new();
        std::hash::Hasher::write(&mut hasher, &bytes[..body_end]);
        if std::hash::Hasher::finish(&hasher) != stored {
            return None;
        }
        let mut pos = 8usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let end = pos.checked_add(n)?;
            if end > body_end {
                return None;
            }
            let slice = &bytes[*pos..end];
            *pos = end;
            Some(slice)
        };
        let n_segments = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let mut segments = Vec::with_capacity(n_segments as usize);
        for _ in 0..n_segments {
            let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let sealed = take(&mut pos, 1)?[0] != 0;
            segments.push((id, len, sealed));
        }
        let n_entries = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let mut entries = Vec::new();
        for _ in 0..n_entries {
            let stage = take(&mut pos, 1)?[0];
            if stage as usize >= STAGES.len() {
                return None;
            }
            let key = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let seg = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let off = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            entries.push(((stage, key), Loc { seg, off, len }));
        }
        if pos != body_end {
            return None;
        }
        Some((segments, entries))
    }

    /// Atomically publishes the index snapshot: unique tmp, fsync, rename,
    /// directory fsync.  Concurrent publishers race last-writer-wins, which
    /// is safe because the snapshot is only an accelerator — watermarks make
    /// a stale snapshot recoverable by tail scan.
    fn publish_index_locked(&self, state: &LogState) {
        let bytes = Self::serialize_index(state);
        let final_path = self.root.join(INDEX_FILE);
        if self.faults.take(FaultKind::TornWrite) {
            // The legacy non-atomic write dying mid-file: half a snapshot
            // lands on the final path.  The digest check rejects it and the
            // next open rebuilds by scanning.
            let _ = fs::write(&final_path, fault::damage(FaultKind::TornWrite, &bytes));
            return;
        }
        let tmp = self.root.join(format!(
            "index.{}-{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = |dest: &Path| -> io::Result<()> {
            let mut file = File::create(dest)?;
            file.write_all(&bytes)?;
            file.sync_all()
        };
        if write(&tmp).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if self.faults.take(FaultKind::CrashBeforePublish) {
            // Crashed between the tmp fsync and the rename: the snapshot is
            // never published, the orphan .tmp stays for recovery to
            // reclaim.  Nothing is lost — the segments hold the data.
            return;
        }
        if fs::rename(&tmp, &final_path).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
        self.index_publishes.fetch_add(1, Ordering::Relaxed);
    }

    // -- load / scan / recovery --------------------------------------------

    /// Segment files on disk, as `(id, physical_len)`.
    fn list_segments(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.seg_dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SEGMENT_EXT) {
                continue;
            }
            let Some(id) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("seg-"))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            out.push((id, meta.len()));
        }
        out.sort_unstable();
        out
    }

    /// Scans records in `[from, to)`; returns the valid frames, the end of
    /// the valid prefix, and whether a torn/corrupt record stopped the scan.
    #[allow(clippy::type_complexity)]
    fn scan_records(file: &File, from: u64, to: u64) -> (Vec<(Stage, u64, u64, u32)>, u64, bool) {
        let mut found = Vec::new();
        let mut pos = from;
        while pos + RECORD_PREFIX_LEN <= to {
            let mut prefix = [0u8; 4];
            if file.read_exact_at(&mut prefix, pos).is_err() {
                return (found, pos, true);
            }
            let len = u64::from(u32::from_le_bytes(prefix));
            if pos + RECORD_PREFIX_LEN + len > to {
                return (found, pos, true);
            }
            let mut frame = vec![0u8; len as usize];
            if file
                .read_exact_at(&mut frame, pos + RECORD_PREFIX_LEN)
                .is_err()
            {
                return (found, pos, true);
            }
            match codec::parse_frame(&frame) {
                Ok(view) => {
                    found.push((view.stage, view.key, pos, len as u32));
                    pos += RECORD_PREFIX_LEN + len;
                }
                Err(_) => return (found, pos, true),
            }
        }
        (found, pos, pos != to)
    }

    /// Builds the in-memory state: read the snapshot, list the segments,
    /// tail-scan everything past the watermarks.  The warm path therefore
    /// costs one small file read plus one `read_dir` of the segments
    /// directory — never a scan over artifact data.
    fn load_state(&self) -> LogState {
        let mut state = LogState::default();
        let _ = fs::create_dir_all(&self.seg_dir);
        let mut watermarks: FxHashMap<u64, u64> = FxHashMap::default();
        if let Ok(bytes) = fs::read(self.root.join(INDEX_FILE)) {
            match Self::parse_index(&bytes) {
                Some((segments, entries)) => {
                    for (id, len, _) in segments {
                        watermarks.insert(id, len);
                    }
                    for (key, loc) in entries {
                        state.index.insert(key, loc);
                    }
                }
                None => {
                    self.index_rebuilds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let on_disk = self.list_segments();
        for (id, file_len) in &on_disk {
            if *file_len < SEGMENT_HEADER_LEN {
                // Died creating the segment; nothing to account.
                continue;
            }
            let watermark = watermarks
                .get(id)
                .copied()
                .unwrap_or(SEGMENT_HEADER_LEN)
                .clamp(SEGMENT_HEADER_LEN, *file_len);
            let mut accounted = watermark;
            if *file_len > watermark {
                if let Ok(file) = File::open(self.segment_path(*id)) {
                    let (found, valid_end, _) = Self::scan_records(&file, watermark, *file_len);
                    for (stage, key, off, len) in found {
                        let loc = Loc { seg: *id, off, len };
                        state.index.insert((stage.index() as u8, key), loc);
                    }
                    accounted = valid_end;
                }
            }
            state.segments.insert(
                *id,
                SegmentInfo {
                    len: accounted,
                    live: 0,
                    dead: 0,
                    sealed: true,
                },
            );
        }
        Self::settle_accounting(&mut state);
        state
    }

    /// Recomputes live/dead bytes and drops entries that point outside
    /// their segment's accounted range (truncated or vanished segments).
    fn settle_accounting(state: &mut LogState) {
        let segments = std::mem::take(&mut state.segments);
        state.index.retain(|_, loc| {
            segments
                .get(&loc.seg)
                .is_some_and(|info| loc.off + RECORD_PREFIX_LEN + u64::from(loc.len) <= info.len)
        });
        state.segments = segments;
        for info in state.segments.values_mut() {
            info.live = 0;
        }
        for loc in state.index.values() {
            if let Some(info) = state.segments.get_mut(&loc.seg) {
                info.live += RECORD_PREFIX_LEN + u64::from(loc.len);
            }
        }
        state.total_bytes = 0;
        for info in state.segments.values_mut() {
            info.dead = info.len.saturating_sub(SEGMENT_HEADER_LEN + info.live);
            state.total_bytes += info.len;
        }
    }

    /// Full-verification recovery pass: every record of every segment is
    /// re-verified (not just past the watermarks), torn tails are truncated
    /// away, orphaned index tmps are reclaimed, and a fresh snapshot is
    /// published.  Servers run this once at startup; it reads every frame,
    /// which is exactly what the lazy warm path avoids.
    pub fn recovery_scan(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let mut guard = self.state.lock().expect("segment log state");
        if let Some(state) = guard.as_mut() {
            self.seal_active_locked(state, false);
        }
        let _ = fs::create_dir_all(&self.seg_dir);
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let path = entry.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name.starts_with("index.") && name.ends_with(".tmp") {
                    let _ = fs::remove_file(&path);
                    report.reclaimed_tmp += 1;
                }
            }
        }
        let mut state = LogState::default();
        for (id, file_len) in self.list_segments() {
            let path = self.segment_path(id);
            let locked = self.lock_alive(id);
            if file_len < SEGMENT_HEADER_LEN || !self.header_ok(&path, id) {
                // Died during creation, or rot in the header itself: the
                // whole segment is unusable.
                report.quarantined += 1;
                if !locked {
                    let _ = fs::remove_file(&path);
                }
                continue;
            }
            let Ok(file) = OpenOptions::new().read(true).write(true).open(&path) else {
                continue;
            };
            let (found, valid_end, torn) = Self::scan_records(&file, SEGMENT_HEADER_LEN, file_len);
            report.scanned += found.len() as u64;
            if torn {
                report.scanned += 1;
                report.quarantined += 1;
                self.count_quarantined_stage(&file, valid_end, file_len);
                if !locked {
                    let _ = file.set_len(valid_end);
                    let _ = file.sync_data();
                }
            }
            for (stage, key, off, len) in found {
                let loc = Loc { seg: id, off, len };
                state.index.insert((stage.index() as u8, key), loc);
            }
            state.segments.insert(
                id,
                SegmentInfo {
                    len: valid_end,
                    live: 0,
                    dead: 0,
                    sealed: true,
                },
            );
        }
        Self::settle_accounting(&mut state);
        self.publish_index_locked(&state);
        *guard = Some(state);
        report
    }

    /// Best-effort per-stage attribution of a quarantined record: the stage
    /// tag sits 6 bytes into the frame (10 into the record) and may itself
    /// be unreadable, in which case only the report total counts it.
    fn count_quarantined_stage(&self, file: &File, record_at: u64, file_len: u64) {
        let tag_at = record_at + RECORD_PREFIX_LEN + 6;
        if tag_at < file_len {
            let mut tag = [0u8; 1];
            if file.read_exact_at(&mut tag, tag_at).is_ok() && (tag[0] as usize) < STAGES.len() {
                self.quarantined[tag[0] as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn header_ok(&self, path: &Path, id: u64) -> bool {
        let Ok(file) = File::open(path) else {
            return false;
        };
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        if file.read_exact_at(&mut header, 0).is_err() {
            return false;
        }
        header[0..4] == SEGMENT_MAGIC
            && u16::from_le_bytes(header[4..6].try_into().expect("version")) == SEGMENT_VERSION
            && u64::from_le_bytes(header[8..16].try_into().expect("id")) == id
    }

    /// Syncs the active segment's unsynced tail and publishes the index
    /// snapshot.  Part of the server's graceful drain.
    pub fn flush(&self) {
        let mut guard = self.state_guard();
        let state = guard.as_mut().expect("loaded");
        if let Some(active) = state.active.as_mut() {
            if active.unsynced > 0 {
                active.unsynced = 0;
                active.first_unsynced = None;
                let _span = tmg_obs::span("segment:fsync");
                let _ = active.file.sync_data();
                self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.publish_index_locked(state);
    }
}

impl Drop for SegmentLog {
    fn drop(&mut self) {
        // A clean exit seals the active segment (releasing the advisory
        // lock) and publishes the snapshot so the next process starts warm
        // without any tail scanning.  Crashed processes skip this — that is
        // what the watermark scan recovers from.
        let Ok(mut guard) = self.state.lock() else {
            return;
        };
        if let Some(state) = guard.as_mut() {
            self.seal_active_locked(state, true);
        }
    }
}

impl std::fmt::Debug for SegmentLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentLog")
            .field("root", &self.root)
            .field("budget", &self.budget)
            .field("segment_bytes", &self.segment_bytes)
            .finish()
    }
}
