//! The `tmg-service/v1` request server: JSON-lines over any
//! reader/writer pair (stdin/stdout in production), driven by a concurrent
//! scheduler with in-flight request deduplication.
//!
//! # Protocol
//!
//! One JSON object per line.  Every request carries a caller-chosen `id`
//! that is echoed in the response; responses to concurrent requests may
//! arrive in any order, so callers match on `id`.
//!
//! | op         | request fields                                        | response |
//! |------------|-------------------------------------------------------|----------|
//! | `analyse`  | `source` (mini-C module), `path_bound`, optional `function` filter | `reports`: one object per analysed function |
//! | `sweep`    | `source`, optional `max_bound` (default 10⁶)          | `points`: the Figure-2/3 tradeoff curve |
//! | `stats`    | —                                                     | `stats`: the two-tier cache counter snapshot |
//! | `shutdown` | —                                                     | ack, then the server drains and exits |
//!
//! Failures are per-request: `{"id":N,"ok":false,"error":"..."}`.
//!
//! # Scheduling
//!
//! `analyse` and `sweep` requests are enqueued and picked up by a pool of
//! scheduler threads; *identical* in-flight requests (same op, source,
//! bound, filter) are deduplicated at enqueue time — a duplicate of a
//! queued or running job registers as a waiter on that job instead of
//! being scheduled again, and the one computation answers every waiter
//! (the `deduplicated` counter in [`ServeSummary`] counts them).
//! Within one `analyse` of a multi-function module, the functions fan out
//! across the rayon worker pool via `WcetAnalysis::analyse_all`, and every
//! worker shares the same [`PersistentStore`] tiers.  `stats` and
//! `shutdown` are barriers: they wait for all in-flight work so their
//! answers are deterministic (a scripted cold-run/warm-run/stats batch
//! observes the counters *after* the runs it scripted).

use crate::json::{self, Value};
use crate::store::PersistentStore;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tmg_core::tradeoff::{log_spaced_bounds, sweep_with_counts};
use tmg_core::{AnalysisReport, TieredStore, WcetAnalysis};
use tmg_minic::parse_program;

/// Protocol identifier echoed by every response.
pub const PROTOCOL: &str = "tmg-service/v1";

/// What one serve session did (used by the CI smoke and the bench burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Request lines parsed.
    pub requests: u64,
    /// Responses written.
    pub responses: u64,
    /// Requests answered by piggy-backing on an identical in-flight one.
    pub deduplicated: u64,
    /// Whether the session ended with an explicit `shutdown` (vs EOF).
    pub clean_shutdown: bool,
}

/// The request server.
pub struct Server {
    store: Arc<PersistentStore>,
    workers: usize,
}

/// A parsed, schedulable request.
#[derive(Debug, Clone)]
enum Job {
    Analyse {
        id: u64,
        source: String,
        path_bound: u128,
        function: Option<String>,
    },
    Sweep {
        id: u64,
        source: String,
        max_bound: u128,
    },
}

impl Job {
    fn id(&self) -> u64 {
        match self {
            Job::Analyse { id, .. } | Job::Sweep { id, .. } => *id,
        }
    }

    /// Content key for in-flight deduplication: everything that determines
    /// the response body except the caller's `id`.  The full string (not a
    /// hash of it) keys the in-flight map, so two distinct requests can
    /// never share a computation by collision.
    fn dedup_key(&self) -> String {
        match self {
            Job::Analyse {
                source,
                path_bound,
                function,
                ..
            } => format!("analyse\u{0}{source}\u{0}{path_bound}\u{0}{function:?}"),
            Job::Sweep {
                source, max_bound, ..
            } => format!("sweep\u{0}{source}\u{0}{max_bound}"),
        }
    }
}

/// Shared queue state, all under one lock: the pending jobs, whether the
/// session is still accepting, and the number of parked-and-unclaimed
/// workers.  The idle count is *claimed* by the enqueuer at notify time —
/// checking it after the notify (as a separate atomic would) races against
/// the worker still waking up and would under-spawn a burst of distinct
/// jobs onto one thread.
struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
    idle: usize,
}

/// How the scheduler accepted a request.
enum Enqueued {
    /// Attached as a waiter to an identical in-flight job.
    Duplicate,
    /// Scheduled and handed to an already-parked worker.
    Claimed,
    /// Scheduled with no parked worker available — the serve loop should
    /// spawn one if the cap allows.
    NeedsWorker,
}

struct Scheduler {
    queue: Mutex<QueueState>,
    queued: Condvar,
    /// Requests accepted but not yet responded to (barrier condition).
    outstanding: Mutex<usize>,
    drained: Condvar,
    /// Dedup key of every queued-or-running job → ids of the duplicate
    /// requests waiting for the same response body.
    in_flight: Mutex<FxHashMap<String, Vec<u64>>>,
    dedup_hits: AtomicU64,
    responses: AtomicU64,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
                idle: 0,
            }),
            queued: Condvar::new(),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            in_flight: Mutex::new(FxHashMap::default()),
            dedup_hits: AtomicU64::new(0),
            responses: AtomicU64::new(0),
        }
    }

    /// Accepts a job: schedules it, or — when an identical job is already
    /// queued or running — registers the request as a waiter on that job
    /// (without waking or warranting any worker).  A scheduled job claims a
    /// parked worker under the queue lock, so the caller's spawn decision
    /// cannot race the worker's wake-up.
    fn enqueue_or_attach(&self, job: Job) -> Enqueued {
        *self.outstanding.lock().expect("outstanding") += 1;
        let key = job.dedup_key();
        {
            let mut in_flight = self.in_flight.lock().expect("in-flight map");
            if let Some(waiters) = in_flight.get_mut(&key) {
                waiters.push(job.id());
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Enqueued::Duplicate;
            }
            in_flight.insert(key, Vec::new());
        }
        let mut queue = self.queue.lock().expect("queue");
        queue.jobs.push_back(job);
        if queue.idle > 0 {
            queue.idle -= 1;
            self.queued.notify_one();
            Enqueued::Claimed
        } else {
            Enqueued::NeedsWorker
        }
    }

    fn close(&self) {
        self.queue.lock().expect("queue").open = false;
        self.queued.notify_all();
    }

    fn next(&self) -> Option<Job> {
        let mut guard = self.queue.lock().expect("queue");
        // Whether this worker is currently counted in `idle`.  A claim
        // decrements the count at enqueue time; if a *different* worker
        // steals the job first, our stale park slot merely under-counts
        // idle workers, which at worst spawns an extra (cap-bounded)
        // thread — never the reverse.
        let mut parked = false;
        loop {
            if let Some(job) = guard.jobs.pop_front() {
                return Some(job);
            }
            if !guard.open {
                if parked {
                    guard.idle = guard.idle.saturating_sub(1);
                }
                return None;
            }
            if !parked {
                guard.idle += 1;
                parked = true;
            }
            guard = self.queued.wait(guard).expect("queue wait");
        }
    }

    /// Blocks until every enqueued job has been responded to.
    fn barrier(&self) {
        let mut outstanding = self.outstanding.lock().expect("outstanding");
        while *outstanding > 0 {
            outstanding = self.drained.wait(outstanding).expect("drain wait");
        }
    }

    fn job_done(&self) {
        let mut outstanding = self.outstanding.lock().expect("outstanding");
        *outstanding -= 1;
        if *outstanding == 0 {
            self.drained.notify_all();
        }
    }
}

impl Server {
    /// A server over `store` with one scheduler thread per available core
    /// (capped at 8 — analyse jobs already fan out internally via rayon).
    pub fn new(store: Arc<PersistentStore>) -> Server {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8);
        Server { store, workers }
    }

    /// Overrides the scheduler thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Server {
        self.workers = workers.max(1);
        self
    }

    /// Serves JSON-lines requests from `reader` until `shutdown` or EOF.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error of the reader (writer errors on a single
    /// response line are reported on stderr and do not kill the session).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        writer: W,
    ) -> io::Result<ServeSummary> {
        let scheduler = Scheduler::new();
        let writer = Mutex::new(writer);
        let mut requests = 0u64;
        let mut clean_shutdown = false;

        std::thread::scope(|scope| -> io::Result<()> {
            // Workers are spawned on demand: a fresh (non-duplicate) job
            // only starts a new thread when no existing worker is parked on
            // the queue and the cap leaves room.  A duplicate-heavy burst
            // therefore costs as many threads as it has distinct
            // computations, not a full eagerly-spawned pool — and never more
            // threads than the host has cores, because scheduler workers are
            // CPU-bound (jobs fan out internally via rayon) and extra
            // threads on a saturated host only add switching overhead.
            let cap = self.workers.min(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            );
            let mut spawned = 0usize;
            for line in reader.lines() {
                let line = match line {
                    Ok(line) => line,
                    Err(e) => {
                        scheduler.close();
                        return Err(e);
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                requests += 1;
                match parse_request(&line) {
                    Ok(Request::Job(job)) => {
                        if matches!(scheduler.enqueue_or_attach(job), Enqueued::NeedsWorker)
                            && spawned < cap
                        {
                            spawned += 1;
                            scope.spawn(|| {
                                while let Some(job) = scheduler.next() {
                                    self.run_job(&scheduler, &writer, job);
                                }
                            });
                        }
                    }
                    Ok(Request::Stats { id }) => {
                        // Barrier: counters reflect every request scripted
                        // before this one.
                        scheduler.barrier();
                        let body = format!(
                            "\"op\": \"stats\", \"ok\": true, \"stats\": {}",
                            self.store.stats().to_json()
                        );
                        emit(&scheduler, &writer, id, &body);
                    }
                    Ok(Request::Shutdown { id }) => {
                        scheduler.barrier();
                        emit(
                            &scheduler,
                            &writer,
                            id,
                            "\"op\": \"shutdown\", \"ok\": true",
                        );
                        clean_shutdown = true;
                        break;
                    }
                    Err((id, message)) => {
                        let body =
                            format!("\"ok\": false, \"error\": \"{}\"", json::escape(&message));
                        emit(&scheduler, &writer, id.unwrap_or(0), &body);
                    }
                }
            }
            scheduler.barrier();
            scheduler.close();
            Ok(())
        })?;

        Ok(ServeSummary {
            requests,
            responses: scheduler.responses.load(Ordering::Relaxed),
            deduplicated: scheduler.dedup_hits.load(Ordering::Relaxed),
            clean_shutdown,
        })
    }

    /// Computes one job and answers it plus every waiter that attached to it
    /// while it was queued or running.
    fn run_job<W: Write>(&self, scheduler: &Scheduler, writer: &Mutex<W>, job: Job) {
        let id = job.id();
        let key = job.dedup_key();
        let body = catch_unwind(AssertUnwindSafe(|| self.handle(&job)))
            .unwrap_or_else(|_| "\"ok\": false, \"error\": \"internal error\"".to_owned());
        let waiters = scheduler
            .in_flight
            .lock()
            .expect("in-flight map")
            .remove(&key)
            .unwrap_or_default();
        emit(scheduler, writer, id, &body);
        scheduler.job_done();
        for waiter in waiters {
            emit(scheduler, writer, waiter, &body);
            scheduler.job_done();
        }
    }

    /// Produces the response body (everything after the `id` member).
    fn handle(&self, job: &Job) -> String {
        match job {
            Job::Analyse {
                source,
                path_bound,
                function,
                ..
            } => self.handle_analyse(source, *path_bound, function.as_deref()),
            Job::Sweep {
                source, max_bound, ..
            } => self.handle_sweep(source, *max_bound),
        }
    }

    fn handle_analyse(&self, source: &str, path_bound: u128, filter: Option<&str>) -> String {
        let program = match parse_program(source) {
            Ok(program) => program,
            Err(e) => {
                return format!(
                    "\"op\": \"analyse\", \"ok\": false, \"error\": \"{}\"",
                    json::escape(&e.to_string())
                )
            }
        };
        let functions: Vec<_> = program
            .functions
            .iter()
            .filter(|f| filter.is_none_or(|name| f.name == name))
            .cloned()
            .collect();
        if functions.is_empty() {
            return "\"op\": \"analyse\", \"ok\": false, \"error\": \"no matching function\""
                .to_owned();
        }
        let store: Arc<dyn TieredStore> = self.store.clone();
        let analysis = WcetAnalysis::new(path_bound).with_store(store);
        // Independent functions fan out across the rayon pool; the staged
        // pipeline behind the shared store deduplicates the artifacts.
        let results = analysis.analyse_all(&functions);
        for result in &results {
            if let Err(e) = result {
                return format!(
                    "\"op\": \"analyse\", \"ok\": false, \"error\": \"{}\"",
                    json::escape(&e.to_string())
                );
            }
        }
        let reports: Vec<String> = results
            .into_iter()
            .map(|r| report_json(&r.expect("checked above")))
            .collect();
        format!(
            "\"op\": \"analyse\", \"ok\": true, \"reports\": [{}]",
            reports.join(", ")
        )
    }

    fn handle_sweep(&self, source: &str, max_bound: u128) -> String {
        let program = match parse_program(source) {
            Ok(program) => program,
            Err(e) => {
                return format!(
                    "\"op\": \"sweep\", \"ok\": false, \"error\": \"{}\"",
                    json::escape(&e.to_string())
                )
            }
        };
        let Some(function) = program.functions.first() else {
            return "\"op\": \"sweep\", \"ok\": false, \"error\": \"empty module\"".to_owned();
        };
        // Lowering goes through the tiers, so a warm sweep of a known
        // function re-reads the cached CFG and path counts from disk.
        let lowered = self
            .store
            .lowered_keyed(function, tmg_cfg::function_fingerprint(function));
        let points = sweep_with_counts(&lowered.counts, &log_spaced_bounds(max_bound.max(1)));
        let rendered: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{ \"path_bound\": {}, \"instrumentation_points\": {}, \"measurements\": {}, \"segments\": {} }}",
                    p.path_bound, p.instrumentation_points, p.measurements, p.segments
                )
            })
            .collect();
        format!(
            "\"op\": \"sweep\", \"ok\": true, \"function\": \"{}\", \"points\": [{}]",
            json::escape(&function.name),
            rendered.join(", ")
        )
    }
}

/// Renders one [`AnalysisReport`] as a JSON object.
fn report_json(r: &AnalysisReport) -> String {
    let exhaustive = match r.exhaustive_max {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{ \"function\": \"{}\", \"path_bound\": {}, \"segments\": {}, \"instrumentation_points\": {}, \"measurements\": {}, \"goals\": {}, \"heuristic_covered\": {}, \"checker_covered\": {}, \"infeasible\": {}, \"unknown\": {}, \"measurement_runs\": {}, \"wcet_bound\": {}, \"exhaustive_max\": {} }}",
        json::escape(&r.function),
        r.path_bound,
        r.segments,
        r.instrumentation_points,
        r.measurements,
        r.goals,
        r.heuristic_covered,
        r.checker_covered,
        r.infeasible,
        r.unknown,
        r.measurement_runs,
        r.wcet_bound,
        exhaustive
    )
}

enum Request {
    Job(Job),
    Stats { id: u64 },
    Shutdown { id: u64 },
}

type RequestError = (Option<u64>, String);

fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|e| (None, format!("invalid request: {e}")))?;
    let id = value.get("id").and_then(Value::as_u64);
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or((id, "missing op".to_owned()))?;
    let id = id.ok_or((None, "missing id".to_owned()))?;
    match op {
        "analyse" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or((Some(id), "analyse needs a source".to_owned()))?
                .to_owned();
            let path_bound = match value.get("path_bound") {
                None => 1,
                Some(v) => v
                    .as_u128()
                    .filter(|b| *b >= 1)
                    .ok_or((Some(id), "path_bound must be a positive integer".to_owned()))?,
            };
            let function = value
                .get("function")
                .and_then(Value::as_str)
                .map(str::to_owned);
            Ok(Request::Job(Job::Analyse {
                id,
                source,
                path_bound,
                function,
            }))
        }
        "sweep" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or((Some(id), "sweep needs a source".to_owned()))?
                .to_owned();
            let max_bound = match value.get("max_bound") {
                None => 1_000_000,
                Some(v) => v
                    .as_u128()
                    .filter(|b| *b >= 1)
                    .ok_or((Some(id), "max_bound must be a positive integer".to_owned()))?,
            };
            Ok(Request::Job(Job::Sweep {
                id,
                source,
                max_bound,
            }))
        }
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err((Some(id), format!("unknown op `{other}`"))),
    }
}

/// Writes one response line `{"id":N,<body>}`.
fn emit<W: Write>(scheduler: &Scheduler, writer: &Mutex<W>, id: u64, body: &str) {
    let mut writer = writer.lock().expect("writer");
    let write = writeln!(writer, "{{\"id\": {id}, {body}}}").and_then(|()| writer.flush());
    if let Err(e) = write {
        eprintln!("tmg-service: dropping response for request {id}: {e}");
    }
    scheduler.responses.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PersistentStoreConfig;
    use std::io::Cursor;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tmg-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn serve_script(
        store: &Arc<PersistentStore>,
        workers: usize,
        script: &str,
    ) -> (ServeSummary, Vec<Value>) {
        let mut out = Vec::new();
        let summary = Server::new(Arc::clone(store))
            .with_workers(workers)
            .serve(Cursor::new(script.to_owned()), &mut out)
            .expect("serve");
        let text = String::from_utf8(out).expect("utf-8 responses");
        let mut responses: Vec<Value> = text
            .lines()
            .map(|line| json::parse(line).expect("response parses"))
            .collect();
        responses.sort_by_key(|v| v.get("id").and_then(Value::as_u64).unwrap_or(0));
        (summary, responses)
    }

    const SOURCE: &str = "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }";

    #[test]
    fn analyse_stats_and_shutdown_round_trip() {
        let root = temp_root("roundtrip");
        let store = Arc::new(
            PersistentStore::with_config(PersistentStoreConfig::new(&root)).expect("open"),
        );
        let script = format!(
            "{}\n{}\n{}\n",
            format_args!(
                "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
                json::escape(SOURCE)
            ),
            "{\"id\": 2, \"op\": \"stats\"}",
            "{\"id\": 3, \"op\": \"shutdown\"}"
        );
        let (summary, responses) = serve_script(&store, 2, &script);
        assert!(summary.clean_shutdown);
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.responses, 3);
        let analyse = &responses[0];
        assert_eq!(analyse.get("ok").and_then(Value::as_bool), Some(true));
        let reports = analyse
            .get("reports")
            .and_then(Value::as_array)
            .expect("reports");
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0]
                .get("wcet_bound")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
        let stats = &responses[1];
        assert_eq!(stats.get("ok").and_then(Value::as_bool), Some(true));
        assert!(stats.get("stats").is_some());
        assert_eq!(
            responses[2].get("op").and_then(Value::as_str),
            Some("shutdown")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn identical_concurrent_requests_are_deduplicated() {
        let root = temp_root("dedup");
        let store = Arc::new(
            PersistentStore::with_config(PersistentStoreConfig::new(&root)).expect("open"),
        );
        let request = format!(
            "{{\"id\": ID, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 4}}",
            json::escape(SOURCE)
        );
        let mut script = String::new();
        for id in 1..=6 {
            script.push_str(&request.replace("ID", &id.to_string()));
            script.push('\n');
        }
        script.push_str("{\"id\": 7, \"op\": \"shutdown\"}\n");
        let (summary, responses) = serve_script(&store, 4, &script);
        assert_eq!(summary.responses, 7);
        assert!(
            summary.deduplicated > 0,
            "six identical concurrent requests must share a computation"
        );
        // All six analyse responses are identical apart from the id.
        let bodies: Vec<&[Value]> = responses[..6]
            .iter()
            .map(|r| r.get("reports").and_then(Value::as_array).expect("reports"))
            .collect();
        for body in &bodies[1..] {
            assert_eq!(*body, bodies[0]);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn malformed_and_unknown_requests_fail_cleanly() {
        let root = temp_root("errors");
        let store = Arc::new(
            PersistentStore::with_config(PersistentStoreConfig::new(&root)).expect("open"),
        );
        let script = "this is not json\n\
                      {\"id\": 2, \"op\": \"frobnicate\"}\n\
                      {\"id\": 3, \"op\": \"analyse\", \"source\": \"void f( {\"}\n\
                      {\"id\": 4, \"op\": \"analyse\", \"source\": \"void f() { }\", \"path_bound\": 0}\n\
                      {\"id\": 5, \"op\": \"shutdown\"}\n";
        let (summary, responses) = serve_script(&store, 2, script);
        assert!(summary.clean_shutdown);
        assert_eq!(summary.responses, 5);
        for r in &responses[..4] {
            assert_eq!(
                r.get("ok").and_then(Value::as_bool),
                Some(false),
                "request {:?} should fail",
                r.get("id")
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sweep_returns_the_tradeoff_curve() {
        let root = temp_root("sweep");
        let store = Arc::new(
            PersistentStore::with_config(PersistentStoreConfig::new(&root)).expect("open"),
        );
        let script = format!(
            "{{\"id\": 1, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 100}}\n{{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let (_, responses) = serve_script(&store, 1, &script);
        let sweep = &responses[0];
        assert_eq!(sweep.get("ok").and_then(Value::as_bool), Some(true));
        let points = sweep
            .get("points")
            .and_then(Value::as_array)
            .expect("points");
        assert!(!points.is_empty());
        assert!(points[0].get("instrumentation_points").is_some());
        let _ = std::fs::remove_dir_all(&root);
    }
}
