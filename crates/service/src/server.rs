//! The `tmg-service/v1` request server: JSON-lines over any transport,
//! driven by a transport-independent concurrent scheduler with bounded
//! queues, per-request deadlines, and in-flight request deduplication.
//!
//! # Protocol
//!
//! One JSON object per line.  Every request carries a caller-chosen `id`
//! that is echoed in the response; responses to concurrent (or pipelined)
//! requests may arrive in any order, so callers match on `id`.
//!
//! Every well-formed request is additionally tagged with a `trace_id`
//! (caller-chosen via a `trace_id` field, otherwise assigned from a
//! process-unique counter) that is echoed in the response.  When span
//! tracing is enabled ([`tmg_obs::set_enabled`]), the `trace_id` keys the
//! request's recorded span tree for later `profile` queries.
//!
//! | op         | request fields                                        | response |
//! |------------|-------------------------------------------------------|----------|
//! | `analyse`  | `source` (mini-C module), `path_bound`, optional `function` filter, optional `deadline_ms` | `reports`: one object per analysed function |
//! | `analyse_module` | `source`, `path_bound`, optional `deadline_ms` | interprocedural composition: `roots` (composed bounds of the call-graph roots), per-function `summaries` and `reports`, differential reuse counters |
//! | `sweep`    | `source`, optional `max_bound` (default 10⁶), optional `deadline_ms` | `points`: the Figure-2/3 tradeoff curve |
//! | `stats`    | —                                                     | `stats`: the unified `tmg-obs-stats/v1` metrics snapshot (tier counters, checker/module groups, per-op latency histograms) |
//! | `profile`  | `trace_id` of a completed request                     | `profile`: the retained span tree (`tmg-obs-profile/v1`), or a typed `unknown_trace` error |
//! | `shutdown` | —                                                     | ack after the drain + disk flush, then the server exits |
//!
//! Failures are per-request and typed:
//! `{"id":N,"ok":false,"error_kind":"fault"|"cancelled"|"overloaded","error":"..."}`
//! — an `overloaded` response additionally carries `retry_after_ms`.  The
//! server's contract is *never a wrong answer, only declined or slow*: any
//! fault, expiry, or shed yields a typed error, never a partial result.
//!
//! # Scheduling, backpressure, deadlines
//!
//! `analyse` and `sweep` requests are enqueued into a bounded queue and
//! picked up by a pool of scheduler threads (spawned on demand).  When the
//! queue is full, the request is *shed* immediately with an `overloaded`
//! error whose `retry_after_ms` is derived from the measured *median*
//! latency of that op (the p50 bucket upper bound — robust against one
//! pathological request inflating the hint for everyone) — callers get
//! backpressure instead of unbounded memory.
//!
//! A request with `deadline_ms` is declined (typed `cancelled` error) when
//! the deadline expires before a worker picks it up, and the deadline is
//! propagated into the model checker as a cooperative cancellation token,
//! so an in-flight analysis stops at the next stage or shard boundary.
//! Stages are atomic with respect to cancellation: each completes fully
//! (and is then correct and safely cacheable) or unwinds with nothing
//! published — a deadline can never poison the cache.
//!
//! *Identical* in-flight requests **without deadlines** (same op, source,
//! bound, filter) are deduplicated at submit time — a duplicate registers
//! as a waiter on the in-flight job and the one computation answers every
//! waiter (the `deduplicated` counter in [`ServeSummary`]); waiters get
//! the leader's response body verbatim, including its `trace_id`, so a
//! deduplicated request profiles as the computation it rode.  Requests with
//! deadlines are never deduplicated: each must be able to expire
//! independently.  Within one `analyse` of a multi-function module, the
//! functions fan out across the rayon worker pool, and every worker shares
//! the same [`PersistentStore`] tiers.
//!
//! `stats` and `shutdown` are global barriers: they wait for all in-flight
//! work so their answers are deterministic.  `shutdown` additionally
//! flushes the disk tier (fsync) before acknowledging; EOF on a transport
//! performs the same drain + flush without the ack.
//!
//! # Per-request profiling
//!
//! With tracing enabled, every scheduled request runs under a root
//! `request:<op>` span; the queue wait (`service:admission`), the
//! computation (`service:compute`, under which the pipeline-stage and
//! checker-phase spans nest) and the response write (`service:respond`)
//! are children.  At respond time the trace is *retained* for later
//! `profile` queries when the request's end-to-end time reached the
//! configured slow-request threshold ([`Server::with_slow_threshold_ms`];
//! the default threshold of 0 retains every traced request), and dropped
//! otherwise — the retained set is the bounded slow-request log.
//!
//! # Transports
//!
//! [`Server::serve`] runs the protocol over any reader/writer pair
//! (stdin/stdout in production); [`Server::serve_tcp`] (see [`crate::tcp`])
//! runs it over a TCP listener with many concurrent connections, sharing
//! this scheduler.  Responses are byte-identical whichever transport or
//! worker count delivers them.

use crate::json::{self, Value};
use crate::latency::LatencySet;
use crate::store::PersistentStore;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tmg_core::tradeoff::{log_spaced_bounds, sweep_with_counts};
use tmg_core::{AnalysisReport, ModuleAnalysis, TieredStore, WcetAnalysis};
use tmg_minic::parse_program;
use tmg_tsys::CancelToken;

/// Protocol identifier echoed by every response.
pub const PROTOCOL: &str = "tmg-service/v1";

/// Queue slots before the scheduler sheds (see
/// [`Server::with_queue_capacity`]).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// What one serve session did (used by the CI smokes and the loadtest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Request lines parsed.
    pub requests: u64,
    /// Responses written.
    pub responses: u64,
    /// Requests answered by piggy-backing on an identical in-flight one.
    pub deduplicated: u64,
    /// Requests declined with a typed `overloaded` error (queue full).
    pub shed: u64,
    /// Requests declined with a typed `overloaded` error because their
    /// client's fair-queuing quota was exhausted.
    pub quota_shed: u64,
    /// Requests declined with a typed `overloaded` error by the cost-aware
    /// shedder (expensive op class while the queue is deep).
    pub cost_shed: u64,
    /// Requests declined with a typed `cancelled` error because their
    /// deadline expired before a worker picked them up.
    pub expired: u64,
    /// Responses dropped because the requesting connection had closed
    /// before (or while) the response was written.
    pub disconnected: u64,
    /// Whether the session drained in-flight work and flushed the disk
    /// tier before ending (true for both `shutdown` and EOF).
    pub flushed: bool,
    /// Whether the session ended with an explicit `shutdown` (vs EOF).
    pub clean_shutdown: bool,
}

/// The request server.  See the module docs for protocol and semantics.
pub struct Server {
    store: Arc<PersistentStore>,
    workers: usize,
    queue_capacity: usize,
    /// Traced requests at least this slow (end-to-end) keep their spans
    /// for `profile`; faster ones drop them at respond time.
    slow_threshold_ms: u64,
    latency: Arc<LatencySet>,
    /// Per-client cap on *queued* jobs (fair-queuing quota); defaults to
    /// half the queue capacity so no single client can monopolise the
    /// backlog.
    client_quota: Option<usize>,
    /// Wire-level fault shots consumed by the TCP transport on response
    /// writes (see [`crate::fault::FaultKind::WIRE`]).  Inert by default.
    wire_faults: crate::fault::FaultPlan,
}

/// A parsed, schedulable request.
#[derive(Debug, Clone)]
pub(crate) enum Job {
    Analyse {
        id: u64,
        source: String,
        path_bound: u128,
        function: Option<String>,
    },
    AnalyseModule {
        id: u64,
        source: String,
        path_bound: u128,
    },
    Sweep {
        id: u64,
        source: String,
        max_bound: u128,
    },
}

impl Job {
    fn id(&self) -> u64 {
        match self {
            Job::Analyse { id, .. } | Job::AnalyseModule { id, .. } | Job::Sweep { id, .. } => *id,
        }
    }

    fn op_name(&self) -> &'static str {
        match self {
            Job::Analyse { .. } => "analyse",
            Job::AnalyseModule { .. } => "analyse_module",
            Job::Sweep { .. } => "sweep",
        }
    }

    /// Content key for in-flight deduplication: everything that determines
    /// the response body except the caller's `id`.  The full string (not a
    /// hash of it) keys the in-flight map, so two distinct requests can
    /// never share a computation by collision.
    fn dedup_key(&self) -> String {
        match self {
            Job::Analyse {
                source,
                path_bound,
                function,
                ..
            } => format!("analyse\u{0}{source}\u{0}{path_bound}\u{0}{function:?}"),
            Job::AnalyseModule {
                source, path_bound, ..
            } => format!("analyse_module\u{0}{source}\u{0}{path_bound}"),
            Job::Sweep {
                source, max_bound, ..
            } => format!("sweep\u{0}{source}\u{0}{max_bound}"),
        }
    }
}

/// How a transport delivers one response line.  Each transport (or TCP
/// connection) supplies its own, so the scheduler can route a response to
/// whichever connection asked.
pub(crate) type Respond<'env> = Arc<dyn Fn(u64, &str) + Send + Sync + 'env>;

/// An accepted request waiting for (or holding) a worker.
pub(crate) struct Pending<'env> {
    job: Job,
    respond: Respond<'env>,
    deadline: Option<Instant>,
    accepted_at: Instant,
    /// The request's trace id (caller-chosen or assigned at dispatch),
    /// echoed in the response and keying the recorded span tree.
    trace: u64,
    /// Fair-queuing lane: the declared `tenant`, or the transport's
    /// connection label when none is declared.
    lane: String,
}

/// Shared queue state, all under one lock: the per-client lanes, whether
/// the session is still accepting, and the number of parked-and-unclaimed
/// workers.  The idle count is *claimed* by the enqueuer at notify time —
/// checking it after the notify (as a separate atomic would) races against
/// the worker still waking up and would under-spawn a burst of distinct
/// jobs onto one thread.
///
/// Jobs are queued into one FIFO lane per client and drained round-robin
/// across lanes, so a client flooding its own lane delays only itself —
/// every other client still gets one job dequeued per rotation.
struct QueueState<'env> {
    /// Per-client FIFO lanes.  Invariant: a lane in the map is non-empty.
    lanes: FxHashMap<String, VecDeque<Pending<'env>>>,
    /// Round-robin rotation; contains each non-empty lane exactly once.
    rotation: VecDeque<String>,
    /// Total queued jobs across all lanes.
    queued: usize,
    open: bool,
    idle: usize,
}

/// Why an admission was declined with a typed `overloaded` error.
enum ShedReason {
    /// The global bounded queue is full.
    QueueFull,
    /// The client's fair-queuing quota is exhausted.
    Quota,
    /// The cost-aware shedder declined an expensive op class while the
    /// queue was deep.
    Cost,
}

/// How the scheduler accepted (or declined) a request.
enum Submitted<'env> {
    /// Queued; `needs_worker` asks the transport to spawn a scheduler
    /// thread if the cap allows.
    Queued { needs_worker: bool },
    /// Attached as a waiter to an identical in-flight job.
    Attached,
    /// Declined (queue full, quota exhausted, or cost-shed).  The request
    /// is handed back so the caller can answer it with a typed
    /// `overloaded` error.
    Shed(Pending<'env>, ShedReason),
}

/// The transport-independent scheduler: bounded queue, dedup map, drain
/// barrier, and the session counters.  One instance serves a whole session
/// regardless of transport; every TCP connection and the stdin loop submit
/// into the same queue.
pub(crate) struct Scheduler<'env> {
    queue: Mutex<QueueState<'env>>,
    queued: Condvar,
    capacity: usize,
    /// Per-client cap on queued jobs (fair-queuing quota).
    quota: usize,
    /// Requests accepted but not yet responded to (barrier condition).
    outstanding: Mutex<usize>,
    drained: Condvar,
    /// Dedup key of every queued-or-running no-deadline job → the duplicate
    /// requests waiting for the same response body.
    in_flight: Mutex<FxHashMap<String, Vec<(u64, Respond<'env>)>>>,
    requests: AtomicU64,
    responses: AtomicU64,
    dedup_hits: AtomicU64,
    shed: AtomicU64,
    quota_shed: AtomicU64,
    cost_shed: AtomicU64,
    expired: AtomicU64,
    /// Responses dropped on dead connections.  Shared (`Arc`) so transport
    /// respond closures can own a handle without borrowing the scheduler.
    disconnected: Arc<AtomicU64>,
}

impl<'env> Scheduler<'env> {
    pub(crate) fn new(capacity: usize, quota: usize) -> Scheduler<'env> {
        Scheduler {
            queue: Mutex::new(QueueState {
                lanes: FxHashMap::default(),
                rotation: VecDeque::new(),
                queued: 0,
                open: true,
                idle: 0,
            }),
            queued: Condvar::new(),
            capacity,
            quota,
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            in_flight: Mutex::new(FxHashMap::default()),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quota_shed: AtomicU64::new(0),
            cost_shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            disconnected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A shared handle to the dropped-response counter, for transport
    /// respond closures outliving any borrow of the scheduler itself.
    pub(crate) fn disconnected_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.disconnected)
    }

    /// Writes one response through the transport's responder and counts it.
    fn respond(&self, respond: &Respond<'env>, id: u64, body: &str) {
        respond(id, body);
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Accepts a job: queues it into its client's lane, sheds it (bounded
    /// queue, per-client quota, or cost-aware shedding via `cost_veto`), or
    /// — when deduplicable and an identical job is already queued or
    /// running — registers the request as a waiter on that job (a waiter
    /// consumes no queue slot, so duplicates are never quota- or
    /// cost-shed).  A queued job claims a parked worker under the queue
    /// lock, so the caller's spawn decision cannot race the worker's
    /// wake-up.  Lock order: `in_flight` before `queue`.
    fn try_submit(
        &self,
        pending: Pending<'env>,
        dedup: bool,
        cost_veto: &dyn Fn(usize) -> bool,
    ) -> Submitted<'env> {
        let mut in_flight = if dedup {
            let mut in_flight = self.in_flight.lock().expect("in-flight map");
            if let Some(waiters) = in_flight.get_mut(&pending.job.dedup_key()) {
                waiters.push((pending.job.id(), Arc::clone(&pending.respond)));
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                *self.outstanding.lock().expect("outstanding") += 1;
                return Submitted::Attached;
            }
            Some(in_flight)
        } else {
            None
        };
        let mut queue = self.queue.lock().expect("queue");
        if queue.queued >= self.capacity {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed(pending, ShedReason::QueueFull);
        }
        let lane_depth = queue.lanes.get(&pending.lane).map_or(0, VecDeque::len);
        if lane_depth >= self.quota {
            self.quota_shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed(pending, ShedReason::Quota);
        }
        if cost_veto(queue.queued) {
            self.cost_shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed(pending, ShedReason::Cost);
        }
        if let Some(map) = in_flight.as_mut() {
            map.insert(pending.job.dedup_key(), Vec::new());
        }
        *self.outstanding.lock().expect("outstanding") += 1;
        if lane_depth == 0 {
            queue.rotation.push_back(pending.lane.clone());
        }
        let lane = pending.lane.clone();
        queue.lanes.entry(lane).or_default().push_back(pending);
        queue.queued += 1;
        let needs_worker = if queue.idle > 0 {
            queue.idle -= 1;
            self.queued.notify_one();
            false
        } else {
            true
        };
        Submitted::Queued { needs_worker }
    }

    pub(crate) fn close(&self) {
        self.queue.lock().expect("queue").open = false;
        self.queued.notify_all();
    }

    pub(crate) fn next(&self) -> Option<Pending<'env>> {
        let mut guard = self.queue.lock().expect("queue");
        // Whether this worker is currently counted in `idle`.  A claim
        // decrements the count at enqueue time; if a *different* worker
        // steals the job first, our stale park slot merely under-counts
        // idle workers, which at worst spawns an extra (cap-bounded)
        // thread — never the reverse.
        let mut parked = false;
        loop {
            // Round-robin across client lanes: take the front lane's
            // oldest job, then rotate the lane to the back (dropping it
            // from the rotation once empty).
            if let Some(lane_name) = guard.rotation.pop_front() {
                let lane = guard.lanes.get_mut(&lane_name).expect("non-empty lane");
                let job = lane.pop_front().expect("non-empty lane");
                if lane.is_empty() {
                    guard.lanes.remove(&lane_name);
                } else {
                    guard.rotation.push_back(lane_name);
                }
                guard.queued -= 1;
                return Some(job);
            }
            if !guard.open {
                if parked {
                    guard.idle = guard.idle.saturating_sub(1);
                }
                return None;
            }
            if !parked {
                guard.idle += 1;
                parked = true;
            }
            guard = self.queued.wait(guard).expect("queue wait");
        }
    }

    /// Blocks until every accepted job has been responded to.  Returns the
    /// number of jobs that were still outstanding when the barrier was
    /// entered — the `drained` count a `shutdown` ack reports.
    pub(crate) fn barrier(&self) -> usize {
        let mut outstanding = self.outstanding.lock().expect("outstanding");
        let waited_for = *outstanding;
        while *outstanding > 0 {
            outstanding = self.drained.wait(outstanding).expect("drain wait");
        }
        waited_for
    }

    fn job_done(&self) {
        let mut outstanding = self.outstanding.lock().expect("outstanding");
        *outstanding -= 1;
        if *outstanding == 0 {
            self.drained.notify_all();
        }
    }

    pub(crate) fn summary(&self, clean_shutdown: bool, flushed: bool) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            deduplicated: self.dedup_hits.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quota_shed: self.quota_shed.load(Ordering::Relaxed),
            cost_shed: self.cost_shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            disconnected: self.disconnected.load(Ordering::Relaxed),
            flushed,
            clean_shutdown,
        }
    }

    /// The `resilience` member of the `stats` snapshot: the fairness and
    /// shedding counters of this session, plus the wire-level fault shots
    /// fired so far.
    fn resilience_json(&self, wire: &crate::fault::FaultPlan) -> String {
        let fired: Vec<String> = crate::fault::FaultKind::WIRE
            .into_iter()
            .map(|k| format!("\"{}\": {}", k.name(), wire.fired(k)))
            .collect();
        format!(
            "{{ \"shed\": {}, \"quota_shed\": {}, \"cost_shed\": {}, \
             \"disconnected\": {}, \"wire_faults\": {{ {} }} }}",
            self.shed.load(Ordering::Relaxed),
            self.quota_shed.load(Ordering::Relaxed),
            self.cost_shed.load(Ordering::Relaxed),
            self.disconnected.load(Ordering::Relaxed),
            fired.join(", ")
        )
    }
}

/// 64-bit FNV-1a of a request id, for deterministic retry-hint jitter.
fn fnv1a(id: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Adds deterministic per-request jitter to a retry hint: the hint is
/// spread over `[base, base + max(base, 16))`, keyed by the request id, so
/// a burst of simultaneously shed callers does not retry as one
/// thundering herd.  Seeding from the id (not a clock or RNG) keeps
/// responses bit-identical across runs and worker counts.
pub(crate) fn jittered_retry_ms(base_ms: u64, id: u64) -> u64 {
    let span = base_ms.max(16);
    base_ms + fnv1a(id) % span
}

/// The cost-aware shedding policy, as a pure function of the predicted
/// cost of the incoming op (`predicted_ms`), the cheapest and dearest
/// measured op classes (`min_ms`, `max_ms`), and the queue depth.
///
/// The expensive tail is shed first as the queue deepens: from half depth
/// the *most* expensive op class is declined, from three-quarters depth
/// everything costlier than the cheapest class is.  The cheapest measured
/// class (and any op with no measurements yet) is always admitted — cost
/// shedding degrades service, it never denies it entirely.
fn cost_sheds(predicted_ms: u64, min_ms: u64, max_ms: u64, queued: usize, capacity: usize) -> bool {
    if capacity == 0 || queued * 2 < capacity || min_ms == max_ms || predicted_ms <= min_ms {
        return false;
    }
    queued * 4 >= capacity * 3 || predicted_ms >= max_ms
}

/// Prefixes a response body with the echoed `trace_id` member.
fn with_trace(trace: u64, body: &str) -> String {
    format!("\"trace_id\": {trace}, {body}")
}

/// The root span name for a scheduled request.
fn request_span_name(job: &Job) -> &'static str {
    match job {
        Job::Analyse { .. } => "request:analyse",
        Job::AnalyseModule { .. } => "request:analyse_module",
        Job::Sweep { .. } => "request:sweep",
    }
}

/// The `profile` response body: the retained span tree for `trace`, or a
/// typed `unknown_trace` error when nothing is retained under that id.
fn profile_body(trace: u64) -> String {
    match tmg_obs::trace_spans(trace) {
        Some(spans) if !spans.is_empty() => {
            let tree = tmg_obs::build_tree(&spans);
            format!(
                "\"trace_id\": {trace}, \"op\": \"profile\", \"ok\": true, \
                 \"profile\": {{ \"schema\": \"tmg-obs-profile/v1\", \"trace_id\": {trace}, \
                 \"span_count\": {}, \"spans\": {} }}",
                spans.len(),
                tmg_obs::tree_json(&tree)
            )
        }
        _ => format!(
            "\"trace_id\": {trace}, \"op\": \"profile\", \"ok\": false, \
             \"error_kind\": \"unknown_trace\", \
             \"error\": \"no spans retained for trace {trace} (tracing disabled, request \
             below the slow threshold, or trace evicted)\""
        ),
    }
}

fn expired_body(op: &str) -> String {
    format!(
        "\"op\": \"{op}\", \"ok\": false, \"error_kind\": \"cancelled\", \
         \"error\": \"deadline expired before the request completed\""
    )
}

fn overloaded_body(op: &str, retry_after_ms: u64, reason: &ShedReason) -> String {
    let detail = match reason {
        ShedReason::QueueFull => "request queue is full",
        ShedReason::Quota => "per-client quota exhausted",
        ShedReason::Cost => "expensive request shed under queue pressure",
    };
    format!(
        "\"op\": \"{op}\", \"ok\": false, \"error_kind\": \"overloaded\", \
         \"error\": \"server overloaded; {detail}\", \
         \"retry_after_ms\": {retry_after_ms}"
    )
}

impl Server {
    /// A server over `store` with one scheduler thread per available core
    /// (capped at 8 — analyse jobs already fan out internally via rayon)
    /// and the default queue capacity.
    pub fn new(store: Arc<PersistentStore>) -> Server {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8);
        let latency = Arc::new(LatencySet::default());
        latency.register();
        Server {
            store,
            workers,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            slow_threshold_ms: 0,
            latency,
            client_quota: None,
            wire_faults: crate::fault::FaultPlan::none(),
        }
    }

    /// Overrides the scheduler thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Server {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the bounded queue capacity.  Requests beyond this backlog
    /// are shed with a typed `overloaded` error; `0` sheds everything
    /// (useful for testing caller backoff).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Server {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the slow-request threshold: a *traced* request whose
    /// end-to-end time reaches `ms` milliseconds keeps its spans for later
    /// `profile` queries, while faster requests drop theirs at respond
    /// time.  The default of `0` retains every traced request (the
    /// retained set is bounded either way).  Irrelevant while tracing is
    /// disabled — nothing is recorded in the first place.
    pub fn with_slow_threshold_ms(mut self, ms: u64) -> Server {
        self.slow_threshold_ms = ms;
        self
    }

    /// Overrides the per-client fair-queuing quota: the number of jobs one
    /// client (connection, or declared `tenant`) may have queued at once.
    /// Defaults to half the queue capacity (minimum 1), so a flooding
    /// client can never occupy the whole backlog.  Requests beyond the
    /// quota are declined with a typed `overloaded` error.
    pub fn with_client_quota(mut self, quota: usize) -> Server {
        self.client_quota = Some(quota);
        self
    }

    /// Arms wire-level fault injection on the TCP transport (see
    /// [`crate::fault::FaultKind::WIRE`]).  The plan is shared: the same
    /// plan can also arm the disk-tier kinds on the store.
    pub fn with_wire_faults(mut self, plan: crate::fault::FaultPlan) -> Server {
        self.wire_faults = plan;
        self
    }

    /// The effective per-client quota (see [`Server::with_client_quota`]).
    pub(crate) fn effective_quota(&self) -> usize {
        self.client_quota
            .unwrap_or_else(|| (self.queue_capacity / 2).max(1))
    }

    pub(crate) fn wire_fault_plan(&self) -> &crate::fault::FaultPlan {
        &self.wire_faults
    }

    pub(crate) fn worker_cap(&self) -> usize {
        self.workers.min(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    pub(crate) fn flush_store(&self) {
        self.store.flush();
    }

    /// Serves JSON-lines requests from `reader` until `shutdown` or EOF.
    /// This is the stdin/stdout transport: a thin adapter over the same
    /// scheduler the TCP transport uses.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error of the reader (writer errors on a single
    /// response line are reported on stderr and do not kill the session).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        writer: W,
    ) -> io::Result<ServeSummary> {
        let writer = Mutex::new(writer);
        let scheduler = Scheduler::new(self.queue_capacity, self.effective_quota());
        let mut clean_shutdown = false;
        std::thread::scope(|scope| -> io::Result<()> {
            let respond: Respond<'_> = Arc::new(|id, body| write_line(&writer, id, body));
            // Workers are spawned on demand: a fresh (non-duplicate) job
            // only starts a new thread when no existing worker is parked on
            // the queue and the cap leaves room.  A duplicate-heavy burst
            // therefore costs as many threads as it has distinct
            // computations — and never more threads than the host has
            // cores, because scheduler workers are CPU-bound.
            let cap = self.worker_cap();
            let spawned = AtomicUsize::new(0);
            let spawn_worker = || {
                let claim = spawned.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < cap).then_some(n + 1)
                });
                if claim.is_ok() {
                    scope.spawn(|| {
                        while let Some(pending) = scheduler.next() {
                            self.run_pending(&scheduler, pending);
                        }
                    });
                }
            };
            for line in reader.lines() {
                let line = match line {
                    Ok(line) => line,
                    Err(e) => {
                        scheduler.close();
                        return Err(e);
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                if self.dispatch(&scheduler, &line, &respond, &spawn_worker, "stdio") {
                    clean_shutdown = true;
                    break;
                }
            }
            if !clean_shutdown {
                // EOF: same drain + flush as an explicit shutdown, minus
                // the ack (there is nobody left to read it).
                scheduler.barrier();
                self.store.flush();
            }
            scheduler.close();
            Ok(())
        })?;
        Ok(scheduler.summary(clean_shutdown, true))
    }

    /// Parses and executes one request line.  Control ops (`stats`,
    /// `shutdown`) run inline on the calling transport thread; jobs go
    /// through the scheduler.  `client` is the transport's label for the
    /// submitting connection — the fair-queuing lane when the request
    /// declares no `tenant`.  Returns `true` when the session must end
    /// (`shutdown` was acknowledged, with the drain and disk flush done).
    pub(crate) fn dispatch<'env>(
        &self,
        scheduler: &Scheduler<'env>,
        line: &str,
        respond: &Respond<'env>,
        spawn_worker: &dyn Fn(),
        client: &str,
    ) -> bool {
        scheduler.requests.fetch_add(1, Ordering::Relaxed);
        match parse_request(line) {
            Ok(Request::Job {
                job,
                deadline_ms,
                trace,
                tenant,
            }) => {
                let trace = trace.unwrap_or_else(tmg_obs::next_trace_id);
                let lane = tenant.unwrap_or_else(|| client.to_owned());
                self.submit(
                    scheduler,
                    job,
                    deadline_ms,
                    trace,
                    lane,
                    respond,
                    spawn_worker,
                );
                false
            }
            Ok(Request::Stats { id, trace }) => {
                let trace = trace.unwrap_or_else(tmg_obs::next_trace_id);
                // Barrier: counters reflect every request scripted before
                // this one.
                scheduler.barrier();
                let latency = self.latency.to_json();
                let resilience = scheduler.resilience_json(&self.wire_faults);
                let body = format!(
                    "\"trace_id\": {trace}, \"op\": \"stats\", \"ok\": true, \"stats\": {}",
                    self.store
                        .stats()
                        .to_json_with_sections(Some(&latency), Some(&resilience))
                );
                scheduler.respond(respond, id, &body);
                false
            }
            Ok(Request::Profile { id, trace }) => {
                // Barrier so that a profile scripted after its request is
                // deterministic: the request has responded (and retained
                // or dropped its spans) before we look the trace up.
                scheduler.barrier();
                scheduler.respond(respond, id, &profile_body(trace));
                false
            }
            Ok(Request::Shutdown { id, trace }) => {
                let trace = trace.unwrap_or_else(tmg_obs::next_trace_id);
                let drained = scheduler.barrier();
                self.store.flush();
                let body = format!(
                    "\"trace_id\": {trace}, \"op\": \"shutdown\", \"ok\": true, \
                     \"drained\": {drained}, \"flushed\": true"
                );
                scheduler.respond(respond, id, &body);
                true
            }
            Err((id, message)) => {
                let body = format!(
                    "\"ok\": false, \"error_kind\": \"fault\", \"error\": \"{}\"",
                    json::escape(&message)
                );
                scheduler.respond(respond, id.unwrap_or(0), &body);
                false
            }
        }
    }

    /// Admission control for one job: declines zero deadlines outright,
    /// sheds when the bounded queue is full, the client's quota is
    /// exhausted, or the cost-aware shedder vetoes an expensive op on a
    /// deep queue (each a typed `overloaded` error with a jittered
    /// `retry_after_ms` derived from the measured median latency of the
    /// op), deduplicates no-deadline requests, and otherwise queues into
    /// the client's lane.
    #[allow(clippy::too_many_arguments)]
    fn submit<'env>(
        &self,
        scheduler: &Scheduler<'env>,
        job: Job,
        deadline_ms: Option<u64>,
        trace: u64,
        lane: String,
        respond: &Respond<'env>,
        spawn_worker: &dyn Fn(),
    ) {
        let accepted_at = Instant::now();
        if deadline_ms == Some(0) {
            scheduler.expired.fetch_add(1, Ordering::Relaxed);
            scheduler.respond(
                respond,
                job.id(),
                &with_trace(trace, &expired_body(job.op_name())),
            );
            return;
        }
        let deadline = deadline_ms.map(|ms| accepted_at + Duration::from_millis(ms));
        let predicted = self.predicted_ms(&job);
        let (min_cost, max_cost) = self.cost_profile();
        let capacity = self.queue_capacity;
        let cost_veto =
            move |queued: usize| cost_sheds(predicted, min_cost, max_cost, queued, capacity);
        let pending = Pending {
            job,
            respond: Arc::clone(respond),
            deadline,
            accepted_at,
            trace,
            lane,
        };
        match scheduler.try_submit(pending, deadline.is_none(), &cost_veto) {
            Submitted::Queued { needs_worker } => {
                if needs_worker {
                    spawn_worker();
                }
            }
            Submitted::Attached => {}
            Submitted::Shed(pending, reason) => {
                let retry = jittered_retry_ms(self.retry_hint_ms(&pending.job), pending.job.id());
                scheduler.respond(
                    &pending.respond,
                    pending.job.id(),
                    &with_trace(
                        pending.trace,
                        &overloaded_body(pending.job.op_name(), retry, &reason),
                    ),
                );
            }
        }
    }

    /// How long a shed caller should back off: the measured *median*
    /// latency of the op (the p50 bucket upper bound — the typical time
    /// for one queue slot to free up), or 50 ms before any measurement
    /// exists.  The mean would be hostage to one pathological request: a
    /// single 10-second outlier among millisecond requests would tell
    /// every shed caller to back off for seconds.  (The caller adds
    /// deterministic per-request jitter via [`jittered_retry_ms`].)
    fn retry_hint_ms(&self, job: &Job) -> u64 {
        let histogram = match job {
            Job::Analyse { .. } => &self.latency.analyse,
            Job::AnalyseModule { .. } => &self.latency.analyse_module,
            Job::Sweep { .. } => &self.latency.sweep,
        };
        if histogram.count() == 0 {
            50
        } else {
            (histogram.quantile_ms(0.50).ceil() as u64).max(1)
        }
    }

    /// The cost model behind adaptive shedding: an op's predicted cost is
    /// its measured median latency (0 while unmeasured — an unknown op is
    /// never cost-shed).
    fn predicted_ms(&self, job: &Job) -> u64 {
        let histogram = match job {
            Job::Analyse { .. } => &self.latency.analyse,
            Job::AnalyseModule { .. } => &self.latency.analyse_module,
            Job::Sweep { .. } => &self.latency.sweep,
        };
        if histogram.count() == 0 {
            0
        } else {
            (histogram.quantile_ms(0.50).ceil() as u64).max(1)
        }
    }

    /// `(cheapest, dearest)` predicted cost across the measured op
    /// classes; `(0, 0)` while fewer than one class has measurements.
    fn cost_profile(&self) -> (u64, u64) {
        let costs = [
            &self.latency.analyse,
            &self.latency.analyse_module,
            &self.latency.sweep,
        ]
        .into_iter()
        .filter(|h| h.count() > 0)
        .map(|h| (h.quantile_ms(0.50).ceil() as u64).max(1));
        costs.fold((0, 0), |(min, max), cost| {
            if min == 0 {
                (cost, cost.max(max))
            } else {
                (min.min(cost), max.max(cost))
            }
        })
    }

    /// Computes one job and answers it plus every waiter that attached to
    /// it while it was queued or running.  A job whose deadline expired in
    /// the queue is declined without running.
    pub(crate) fn run_pending<'env>(&self, scheduler: &Scheduler<'env>, pending: Pending<'env>) {
        let Pending {
            job,
            respond,
            deadline,
            accepted_at,
            trace,
            lane: _,
        } = pending;
        let id = job.id();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            scheduler.expired.fetch_add(1, Ordering::Relaxed);
            scheduler.respond(
                &respond,
                id,
                &with_trace(trace, &expired_body(job.op_name())),
            );
            scheduler.job_done();
            return;
        }
        let cancel = deadline.map_or_else(CancelToken::none, CancelToken::with_deadline);
        // The whole request runs under a root `request:<op>` span in its
        // own trace; the queue wait (measured between two instants, so
        // recorded manually), the computation — under which the pipeline
        // and checker spans nest — and the response write are children.
        let trace_scope = tmg_obs::enter_trace(tmg_obs::TraceContext { trace, parent: 0 });
        let root = tmg_obs::span(request_span_name(&job));
        tmg_obs::record_manual(
            "service:admission",
            trace,
            root.id(),
            tmg_obs::instant_us(accepted_at),
            tmg_obs::now_us(),
        );
        let body = {
            let _compute = tmg_obs::span("service:compute");
            catch_unwind(AssertUnwindSafe(|| self.handle(&job, cancel))).unwrap_or_else(|_| {
                "\"ok\": false, \"error_kind\": \"fault\", \"error\": \"internal error\"".to_owned()
            })
        };
        let body = with_trace(trace, &body);
        let histogram = match &job {
            Job::Analyse { .. } => &self.latency.analyse,
            Job::AnalyseModule { .. } => &self.latency.analyse_module,
            Job::Sweep { .. } => &self.latency.sweep,
        };
        histogram.record(accepted_at.elapsed());
        let waiters = if deadline.is_none() {
            scheduler
                .in_flight
                .lock()
                .expect("in-flight map")
                .remove(&job.dedup_key())
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        {
            let _respond_span = tmg_obs::span("service:respond");
            scheduler.respond(&respond, id, &body);
        }
        // Close the root and leave the trace: the thread-local buffer
        // flushes into the trace's live bucket, so the retain/drop
        // decision below sees every span.  It must land before
        // `job_done` releases the drain barrier, or a pipelined
        // `profile` could look the trace up first.
        drop(root);
        drop(trace_scope);
        if accepted_at.elapsed() >= Duration::from_millis(self.slow_threshold_ms) {
            tmg_obs::retain_trace(trace);
        } else {
            tmg_obs::discard_trace(trace);
        }
        scheduler.job_done();
        for (waiter, waiter_respond) in waiters {
            scheduler.respond(&waiter_respond, waiter, &body);
            scheduler.job_done();
        }
    }

    /// Produces the response body (everything after the `id` member).
    fn handle(&self, job: &Job, cancel: CancelToken) -> String {
        match job {
            Job::Analyse {
                source,
                path_bound,
                function,
                ..
            } => self.handle_analyse(source, *path_bound, function.as_deref(), cancel),
            Job::AnalyseModule {
                source, path_bound, ..
            } => self.handle_analyse_module(source, *path_bound, cancel),
            Job::Sweep {
                source, max_bound, ..
            } => self.handle_sweep(source, *max_bound),
        }
    }

    fn handle_analyse(
        &self,
        source: &str,
        path_bound: u128,
        filter: Option<&str>,
        cancel: CancelToken,
    ) -> String {
        let program = match parse_program(source) {
            Ok(program) => program,
            Err(e) => {
                return format!(
                "\"op\": \"analyse\", \"ok\": false, \"error_kind\": \"fault\", \"error\": \"{}\"",
                json::escape(&e.to_string())
            )
            }
        };
        let functions: Vec<_> = program
            .functions
            .iter()
            .filter(|f| filter.is_none_or(|name| f.name == name))
            .cloned()
            .collect();
        if functions.is_empty() {
            return "\"op\": \"analyse\", \"ok\": false, \"error_kind\": \"fault\", \"error\": \"no matching function\""
                .to_owned();
        }
        let store: Arc<dyn TieredStore> = self.store.clone();
        let analysis = WcetAnalysis::new(path_bound)
            .with_store(store)
            .with_cancel(cancel);
        // Independent functions fan out across the rayon pool; the staged
        // pipeline behind the shared store deduplicates the artifacts.
        let results = analysis.analyse_all(&functions);
        for result in &results {
            if let Err(e) = result {
                let kind = if e.is_cancelled() {
                    "cancelled"
                } else {
                    "fault"
                };
                return format!(
                    "\"op\": \"analyse\", \"ok\": false, \"error_kind\": \"{kind}\", \"error\": \"{}\"",
                    json::escape(&e.to_string())
                );
            }
        }
        let reports: Vec<String> = results
            .into_iter()
            .map(|r| report_json(&r.expect("checked above")))
            .collect();
        format!(
            "\"op\": \"analyse\", \"ok\": true, \"reports\": [{}]",
            reports.join(", ")
        )
    }

    /// The interprocedural composition op: analyses the whole module
    /// bottom-up over the persistent tiers, so a repeat request (or an
    /// edited module) is differential — only the dirty cone recomputes.
    fn handle_analyse_module(&self, source: &str, path_bound: u128, cancel: CancelToken) -> String {
        let program = match parse_program(source) {
            Ok(program) => program,
            Err(e) => {
                return format!(
                "\"op\": \"analyse_module\", \"ok\": false, \"error_kind\": \"fault\", \"error\": \"{}\"",
                json::escape(&e.to_string())
            )
            }
        };
        let store: Arc<dyn TieredStore> = self.store.clone();
        let analysis = ModuleAnalysis::new(path_bound)
            .with_store(store)
            .with_cancel(cancel);
        let report = match analysis.analyse_module(&program) {
            Ok(report) => report,
            Err(e) => {
                let kind = if e.is_cancelled() {
                    "cancelled"
                } else {
                    "fault"
                };
                return format!(
                    "\"op\": \"analyse_module\", \"ok\": false, \"error_kind\": \"{kind}\", \"error\": \"{}\"",
                    json::escape(&e.to_string())
                );
            }
        };
        let roots: Vec<String> = report
            .roots
            .iter()
            .map(|r| {
                format!(
                    "{{ \"function\": \"{}\", \"wcet_bound\": {} }}",
                    json::escape(&r.function),
                    r.wcet_bound
                )
            })
            .collect();
        let summaries: Vec<String> = report
            .summaries
            .iter()
            .map(|s| {
                let callees: Vec<String> = s
                    .callees
                    .iter()
                    .map(|c| format!("\"{}\"", json::escape(c)))
                    .collect();
                format!(
                    "{{ \"function\": \"{}\", \"wcet_bound\": {}, \"callees\": [{}], \"from_cache\": {} }}",
                    json::escape(&s.function),
                    s.wcet_bound,
                    callees.join(", "),
                    s.from_cache
                )
            })
            .collect();
        let reports: Vec<String> = report.reports.iter().map(report_json).collect();
        format!(
            "\"op\": \"analyse_module\", \"ok\": true, \"module_key\": \"{}\", \
             \"summaries_reused\": {}, \"summaries_computed\": {}, \
             \"roots\": [{}], \"summaries\": [{}], \"reports\": [{}]",
            tmg_cfg::key_hex(report.module_key),
            report.summaries_reused,
            report.summaries_computed,
            roots.join(", "),
            summaries.join(", "),
            reports.join(", ")
        )
    }

    fn handle_sweep(&self, source: &str, max_bound: u128) -> String {
        let program = match parse_program(source) {
            Ok(program) => program,
            Err(e) => {
                return format!(
                "\"op\": \"sweep\", \"ok\": false, \"error_kind\": \"fault\", \"error\": \"{}\"",
                json::escape(&e.to_string())
            )
            }
        };
        let Some(function) = program.functions.first() else {
            return "\"op\": \"sweep\", \"ok\": false, \"error_kind\": \"fault\", \"error\": \"empty module\"".to_owned();
        };
        // Lowering goes through the tiers, so a warm sweep of a known
        // function re-reads the cached CFG and path counts from disk.
        let lowered = self
            .store
            .lowered_keyed(function, tmg_cfg::function_fingerprint(function));
        let points = sweep_with_counts(&lowered.counts, &log_spaced_bounds(max_bound.max(1)));
        let rendered: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{ \"path_bound\": {}, \"instrumentation_points\": {}, \"measurements\": {}, \"segments\": {} }}",
                    p.path_bound, p.instrumentation_points, p.measurements, p.segments
                )
            })
            .collect();
        format!(
            "\"op\": \"sweep\", \"ok\": true, \"function\": \"{}\", \"points\": [{}]",
            json::escape(&function.name),
            rendered.join(", ")
        )
    }
}

/// Renders one [`AnalysisReport`] as a JSON object.
fn report_json(r: &AnalysisReport) -> String {
    let exhaustive = match r.exhaustive_max {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{ \"function\": \"{}\", \"path_bound\": {}, \"segments\": {}, \"instrumentation_points\": {}, \"measurements\": {}, \"goals\": {}, \"heuristic_covered\": {}, \"checker_covered\": {}, \"infeasible\": {}, \"unknown\": {}, \"measurement_runs\": {}, \"wcet_bound\": {}, \"exhaustive_max\": {} }}",
        json::escape(&r.function),
        r.path_bound,
        r.segments,
        r.instrumentation_points,
        r.measurements,
        r.goals,
        r.heuristic_covered,
        r.checker_covered,
        r.infeasible,
        r.unknown,
        r.measurement_runs,
        r.wcet_bound,
        exhaustive
    )
}

enum Request {
    Job {
        job: Job,
        deadline_ms: Option<u64>,
        /// Caller-chosen trace id; assigned at dispatch when absent.
        trace: Option<u64>,
        /// Declared fair-queuing tenant; the transport's connection label
        /// is the lane when absent.
        tenant: Option<String>,
    },
    Stats {
        id: u64,
        trace: Option<u64>,
    },
    /// `trace` here is the trace to look up, not this request's own tag.
    Profile {
        id: u64,
        trace: u64,
    },
    Shutdown {
        id: u64,
        trace: Option<u64>,
    },
}

type RequestError = (Option<u64>, String);

fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|e| (None, format!("invalid request: {e}")))?;
    let id = value.get("id").and_then(Value::as_u64);
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or((id, "missing op".to_owned()))?;
    let id = id.ok_or((None, "missing id".to_owned()))?;
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or((
            Some(id),
            "deadline_ms must be a non-negative integer".to_owned(),
        ))?),
    };
    let trace = match value.get("trace_id") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|t| *t >= 1)
                .ok_or((Some(id), "trace_id must be a positive integer".to_owned()))?,
        ),
    };
    let tenant = match value.get("tenant") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .filter(|t| !t.is_empty())
                .ok_or((Some(id), "tenant must be a non-empty string".to_owned()))?
                .to_owned(),
        ),
    };
    match op {
        "analyse" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or((Some(id), "analyse needs a source".to_owned()))?
                .to_owned();
            let path_bound = match value.get("path_bound") {
                None => 1,
                Some(v) => v
                    .as_u128()
                    .filter(|b| *b >= 1)
                    .ok_or((Some(id), "path_bound must be a positive integer".to_owned()))?,
            };
            let function = value
                .get("function")
                .and_then(Value::as_str)
                .map(str::to_owned);
            Ok(Request::Job {
                job: Job::Analyse {
                    id,
                    source,
                    path_bound,
                    function,
                },
                deadline_ms,
                trace,
                tenant,
            })
        }
        "analyse_module" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or((Some(id), "analyse_module needs a source".to_owned()))?
                .to_owned();
            let path_bound = match value.get("path_bound") {
                None => 1,
                Some(v) => v
                    .as_u128()
                    .filter(|b| *b >= 1)
                    .ok_or((Some(id), "path_bound must be a positive integer".to_owned()))?,
            };
            Ok(Request::Job {
                job: Job::AnalyseModule {
                    id,
                    source,
                    path_bound,
                },
                deadline_ms,
                trace,
                tenant,
            })
        }
        "sweep" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or((Some(id), "sweep needs a source".to_owned()))?
                .to_owned();
            let max_bound = match value.get("max_bound") {
                None => 1_000_000,
                Some(v) => v
                    .as_u128()
                    .filter(|b| *b >= 1)
                    .ok_or((Some(id), "max_bound must be a positive integer".to_owned()))?,
            };
            Ok(Request::Job {
                job: Job::Sweep {
                    id,
                    source,
                    max_bound,
                },
                deadline_ms,
                trace,
                tenant,
            })
        }
        "stats" => Ok(Request::Stats { id, trace }),
        "profile" => {
            let trace = trace.ok_or((
                Some(id),
                "profile needs the trace_id of a completed request".to_owned(),
            ))?;
            Ok(Request::Profile { id, trace })
        }
        "shutdown" => Ok(Request::Shutdown { id, trace }),
        other => Err((Some(id), format!("unknown op `{other}`"))),
    }
}

/// Writes one response line `{"id":N,<body>}`.
fn write_line<W: Write>(writer: &Mutex<W>, id: u64, body: &str) {
    let mut writer = writer.lock().expect("writer");
    let write = writeln!(writer, "{{\"id\": {id}, {body}}}").and_then(|()| writer.flush());
    if let Err(e) = write {
        eprintln!("tmg-service: dropping response for request {id}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PersistentStoreConfig;
    use std::io::Cursor;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tmg-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_store(root: &std::path::Path) -> Arc<PersistentStore> {
        Arc::new(PersistentStore::with_config(PersistentStoreConfig::new(root)).expect("open"))
    }

    fn serve_script(server: &Server, script: &str) -> (ServeSummary, Vec<Value>) {
        let mut out = Vec::new();
        let summary = server
            .serve(Cursor::new(script.to_owned()), &mut out)
            .expect("serve");
        let text = String::from_utf8(out).expect("utf-8 responses");
        let mut responses: Vec<Value> = text
            .lines()
            .map(|line| json::parse(line).expect("response parses"))
            .collect();
        responses.sort_by_key(|v| v.get("id").and_then(Value::as_u64).unwrap_or(0));
        (summary, responses)
    }

    const SOURCE: &str = "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }";

    #[test]
    fn analyse_stats_and_shutdown_round_trip() {
        let root = temp_root("roundtrip");
        let store = open_store(&root);
        let script = format!(
            "{}\n{}\n{}\n",
            format_args!(
                "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
                json::escape(SOURCE)
            ),
            "{\"id\": 2, \"op\": \"stats\"}",
            "{\"id\": 3, \"op\": \"shutdown\"}"
        );
        let server = Server::new(store).with_workers(2);
        let (summary, responses) = serve_script(&server, &script);
        assert!(summary.clean_shutdown);
        assert!(summary.flushed);
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.responses, 3);
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.expired, 0);
        let analyse = &responses[0];
        assert_eq!(analyse.get("ok").and_then(Value::as_bool), Some(true));
        let reports = analyse
            .get("reports")
            .and_then(Value::as_array)
            .expect("reports");
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0]
                .get("wcet_bound")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
        let stats = &responses[1];
        assert_eq!(stats.get("ok").and_then(Value::as_bool), Some(true));
        // The snapshot embeds the per-op latency histograms: the analyse we
        // just ran must be on the record.
        let latency = stats
            .get("stats")
            .and_then(|s| s.get("latency"))
            .expect("latency histograms in stats");
        assert_eq!(
            latency
                .get("analyse")
                .and_then(|a| a.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let shutdown = &responses[2];
        assert_eq!(shutdown.get("op").and_then(Value::as_str), Some("shutdown"));
        assert_eq!(
            shutdown.get("flushed").and_then(Value::as_bool),
            Some(true),
            "shutdown acks the drain + flush explicitly"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn identical_concurrent_requests_are_deduplicated() {
        let root = temp_root("dedup");
        let store = open_store(&root);
        let request = format!(
            "{{\"id\": ID, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 4}}",
            json::escape(SOURCE)
        );
        let mut script = String::new();
        for id in 1..=6 {
            script.push_str(&request.replace("ID", &id.to_string()));
            script.push('\n');
        }
        script.push_str("{\"id\": 7, \"op\": \"shutdown\"}\n");
        let server = Server::new(store).with_workers(4);
        let (summary, responses) = serve_script(&server, &script);
        assert_eq!(summary.responses, 7);
        assert!(
            summary.deduplicated > 0,
            "six identical concurrent requests must share a computation"
        );
        // All six analyse responses are identical apart from the id.
        let bodies: Vec<&[Value]> = responses[..6]
            .iter()
            .map(|r| r.get("reports").and_then(Value::as_array).expect("reports"))
            .collect();
        for body in &bodies[1..] {
            assert_eq!(*body, bodies[0]);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn analyse_module_composes_and_serves_warm_on_repeat() {
        let root = temp_root("module-op");
        let store = open_store(&root);
        let module = "void leaf(char v __range(0, 3)) { if (v > 1) { work(); } } \
                      void top(char a __range(0, 3)) { leaf(a); }";
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse_module\", \"source\": \"{}\", \"path_bound\": 4}}\n\
             {{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(module)
        );
        let server = Server::new(store.clone()).with_workers(2);
        let (_, cold) = serve_script(&server, &script);
        let first = &cold[0];
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            first.get("summaries_computed").and_then(Value::as_u64),
            Some(2)
        );
        let roots = first.get("roots").and_then(Value::as_array).expect("roots");
        assert_eq!(roots.len(), 1);
        assert_eq!(
            roots[0].get("function").and_then(Value::as_str),
            Some("top")
        );
        let composed = roots[0]
            .get("wcet_bound")
            .and_then(Value::as_u64)
            .expect("bound");
        let summaries = first
            .get("summaries")
            .and_then(Value::as_array)
            .expect("summaries");
        let leaf_bound = summaries[0]
            .get("wcet_bound")
            .and_then(Value::as_u64)
            .expect("leaf bound");
        assert!(
            composed > leaf_bound,
            "the root's composed bound embeds the callee's"
        );
        // Same request against the same store in a fresh session: every
        // summary is served warm, and the answer is byte-identical.
        let warm_server = Server::new(store).with_workers(2);
        let (_, warm) = serve_script(&warm_server, &script);
        assert_eq!(
            warm[0].get("summaries_reused").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            warm[0].get("summaries_computed").and_then(Value::as_u64),
            Some(0)
        );
        assert_eq!(warm[0].get("reports"), first.get("reports"));
        assert_eq!(warm[0].get("module_key"), first.get("module_key"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn malformed_and_unknown_requests_fail_cleanly() {
        let root = temp_root("errors");
        let store = open_store(&root);
        let script = "this is not json\n\
                      {\"id\": 2, \"op\": \"frobnicate\"}\n\
                      {\"id\": 3, \"op\": \"analyse\", \"source\": \"void f( {\"}\n\
                      {\"id\": 4, \"op\": \"analyse\", \"source\": \"void f() { }\", \"path_bound\": 0}\n\
                      {\"id\": 5, \"op\": \"shutdown\"}\n";
        let server = Server::new(store).with_workers(2);
        let (summary, responses) = serve_script(&server, script);
        assert!(summary.clean_shutdown);
        assert_eq!(summary.responses, 5);
        for r in &responses[..4] {
            assert_eq!(
                r.get("ok").and_then(Value::as_bool),
                Some(false),
                "request {:?} should fail",
                r.get("id")
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sweep_returns_the_tradeoff_curve() {
        let root = temp_root("sweep");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 100}}\n{{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let server = Server::new(store).with_workers(1);
        let (_, responses) = serve_script(&server, &script);
        let sweep = &responses[0];
        assert_eq!(sweep.get("ok").and_then(Value::as_bool), Some(true));
        let points = sweep
            .get("points")
            .and_then(Value::as_array)
            .expect("points");
        assert!(!points.is_empty());
        assert!(points[0].get("instrumentation_points").is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_zero_deadline_is_declined_with_a_typed_cancellation() {
        let root = temp_root("deadline-zero");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"deadline_ms\": 0}}\n\
             {{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let server = Server::new(store).with_workers(2);
        let (summary, responses) = serve_script(&server, &script);
        assert_eq!(summary.expired, 1);
        assert_eq!(summary.responses, 2);
        let declined = &responses[0];
        assert_eq!(declined.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            declined.get("error_kind").and_then(Value::as_str),
            Some("cancelled")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_generous_deadline_changes_nothing_about_the_answer() {
        let root_plain = temp_root("deadline-plain");
        let root_deadline = temp_root("deadline-generous");
        let request = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 4DEADLINE}}\n\
             {{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let plain = Server::new(open_store(&root_plain)).with_workers(2);
        let (_, plain_responses) = serve_script(&plain, &request.replace("DEADLINE", ""));
        let with_deadline = Server::new(open_store(&root_deadline)).with_workers(2);
        let (summary, deadline_responses) = serve_script(
            &with_deadline,
            &request.replace("DEADLINE", ", \"deadline_ms\": 60000"),
        );
        assert_eq!(summary.expired, 0);
        assert_eq!(
            plain_responses[0].get("reports"),
            deadline_responses[0].get("reports"),
            "a deadline that never fires must not change the answer"
        );
        let _ = std::fs::remove_dir_all(&root_plain);
        let _ = std::fs::remove_dir_all(&root_deadline);
    }

    #[test]
    fn a_full_queue_sheds_with_a_typed_overload_and_retry_hint() {
        let root = temp_root("shed");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n\
             {{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        // Capacity 0: every job is shed at admission, deterministically.
        let server = Server::new(store).with_workers(2).with_queue_capacity(0);
        let (summary, responses) = serve_script(&server, &script);
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.responses, 2);
        assert!(summary.clean_shutdown, "shedding must not wedge shutdown");
        let shed = &responses[0];
        assert_eq!(shed.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            shed.get("error_kind").and_then(Value::as_str),
            Some("overloaded")
        );
        assert!(
            shed.get("retry_after_ms").and_then(Value::as_u64).unwrap() > 0,
            "an overload response must tell the caller when to retry"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn responses_are_identical_across_one_and_many_workers() {
        let sources = [
            "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }",
            "void g(char b __range(0, 7)) { if (b > 4) { p(); } if (b > 6) { q(); } }",
            "void h(bool c) { if (c) { r(); } }",
        ];
        // Pin each request's trace_id: auto-assigned ids come from a
        // process-wide counter, so only pinned traces can be byte-compared
        // across two server runs.
        let mut script = String::new();
        for (i, source) in sources.iter().enumerate() {
            script.push_str(&format!(
                "{{\"id\": {id}, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 4, \"trace_id\": {id}}}\n",
                json::escape(source),
                id = i + 1,
            ));
        }
        script.push_str(&format!(
            "{{\"id\": 9, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 1000, \"trace_id\": 9}}\n",
            json::escape(sources[0])
        ));
        script.push_str("{\"id\": 10, \"op\": \"shutdown\", \"trace_id\": 10}\n");

        let root_one = temp_root("workers-one");
        let one = Server::new(open_store(&root_one)).with_workers(1);
        let (_, one_responses) = serve_script(&one, &script);
        let root_many = temp_root("workers-many");
        let many = Server::new(open_store(&root_many)).with_workers(4);
        let (_, many_responses) = serve_script(&many, &script);
        assert_eq!(
            one_responses, many_responses,
            "the scheduler must answer identically with 1 and N workers"
        );
        let _ = std::fs::remove_dir_all(&root_one);
        let _ = std::fs::remove_dir_all(&root_many);
    }

    #[test]
    fn eof_drains_and_flushes_without_a_clean_shutdown() {
        let root = temp_root("eof");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n",
            json::escape(SOURCE)
        );
        let server = Server::new(store).with_workers(2);
        let (summary, responses) = serve_script(&server, &script);
        assert!(!summary.clean_shutdown, "EOF is not a shutdown");
        assert!(summary.flushed, "EOF still drains and flushes");
        assert_eq!(summary.responses, 1, "in-flight work was answered");
        assert_eq!(responses[0].get("ok").and_then(Value::as_bool), Some(true));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn every_response_echoes_a_trace_id() {
        let root = temp_root("trace-echo");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"trace_id\": 424242}}\n\
             {{\"id\": 2, \"op\": \"stats\"}}\n\
             {{\"id\": 3, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let server = Server::new(store).with_workers(2);
        let (_, responses) = serve_script(&server, &script);
        // A caller-chosen trace_id is echoed verbatim; the others get a
        // server-assigned (nonzero) one.
        assert_eq!(
            responses[0].get("trace_id").and_then(Value::as_u64),
            Some(424_242)
        );
        for r in &responses[1..] {
            assert!(
                r.get("trace_id").and_then(Value::as_u64).unwrap_or(0) > 0,
                "auto-assigned trace_id missing in {r:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retry_hints_track_the_median_latency_not_the_mean() {
        let root = temp_root("retry-median");
        let store = open_store(&root);
        // Capacity 0: the analyse request is shed deterministically.
        let server = Server::new(store).with_workers(1).with_queue_capacity(0);
        // Bimodal history: nine 1 ms requests and one 10 s outlier.  The
        // mean (~1001 ms) would tell every shed caller to back off for a
        // second; the median says a queue slot frees up in ~1 ms.
        for _ in 0..9 {
            server.latency.analyse.record(Duration::from_millis(1));
        }
        server.latency.analyse.record(Duration::from_secs(10));
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n\
             {{\"id\": 2, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let (summary, responses) = serve_script(&server, &script);
        assert_eq!(summary.shed, 1);
        let retry = responses[0]
            .get("retry_after_ms")
            .and_then(Value::as_u64)
            .expect("retry hint");
        // p50 bucket upper bound: 1 ms lands in the 1.024 ms bucket → 2 ms
        // after ceil, then the id-seeded jitter spreads the hint over
        // [base, base + max(base, 16)).  Anything near the 1001 ms mean is
        // a regression.
        assert_eq!(
            retry,
            jittered_retry_ms(2, 1),
            "retry hint must be the jittered p50 upper bound"
        );
        assert!(
            (2..2 + 16).contains(&retry),
            "jitter must stay within one spread window of the p50 bound, got {retry}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Serialises the tests that flip the process-global span recorder.
    fn tracing_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn a_traced_request_can_be_profiled_after_completion() {
        let _serialised = tracing_lock();
        let root = temp_root("profile");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"trace_id\": 777001}}\n\
             {{\"id\": 2, \"op\": \"profile\", \"trace_id\": 777001}}\n\
             {{\"id\": 3, \"op\": \"profile\", \"trace_id\": 777999}}\n\
             {{\"id\": 4, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        // Default slow threshold (0): every traced request is retained.
        let server = Server::new(store).with_workers(2);
        tmg_obs::set_enabled(true);
        let (_, responses) = serve_script(&server, &script);
        tmg_obs::set_enabled(false);
        tmg_obs::discard_trace(777_001);
        let profile = responses[1]
            .get("profile")
            .expect("profile body in response");
        assert_eq!(
            responses[1].get("ok").and_then(Value::as_bool),
            Some(true),
            "profile of a completed trace succeeds: {:?}",
            responses[1]
        );
        assert_eq!(
            profile.get("schema").and_then(Value::as_str),
            Some("tmg-obs-profile/v1")
        );
        let spans = profile
            .get("spans")
            .and_then(Value::as_array)
            .expect("span tree");
        assert_eq!(spans.len(), 1, "one root span for the request");
        let span_root = &spans[0];
        assert_eq!(
            span_root.get("name").and_then(Value::as_str),
            Some("request:analyse")
        );
        let children: Vec<&str> = span_root
            .get("children")
            .and_then(Value::as_array)
            .expect("children")
            .iter()
            .filter_map(|c| c.get("name").and_then(Value::as_str))
            .collect();
        for expected in ["service:admission", "service:compute", "service:respond"] {
            assert!(
                children.contains(&expected),
                "missing {expected} in {children:?}"
            );
        }
        // An unknown trace answers with a typed error, not a fault.
        assert_eq!(responses[2].get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            responses[2].get("error_kind").and_then(Value::as_str),
            Some("unknown_trace")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn requests_faster_than_the_slow_threshold_drop_their_spans() {
        let _serialised = tracing_lock();
        let root = temp_root("slow-threshold");
        let store = open_store(&root);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"trace_id\": 777002}}\n\
             {{\"id\": 2, \"op\": \"profile\", \"trace_id\": 777002}}\n\
             {{\"id\": 3, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        // No request finishes slower than an hour: nothing is retained.
        let server = Server::new(store)
            .with_workers(2)
            .with_slow_threshold_ms(3_600_000);
        tmg_obs::set_enabled(true);
        let (_, responses) = serve_script(&server, &script);
        tmg_obs::set_enabled(false);
        assert_eq!(responses[0].get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            responses[1].get("error_kind").and_then(Value::as_str),
            Some("unknown_trace"),
            "a fast request's spans are dropped at respond time: {:?}",
            responses[1]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A throwaway `Pending` for direct scheduler tests: a trivially valid
    /// analyse job on `lane` with a respond closure that records nothing.
    fn pending_on(lane: &str, id: u64, source: &str) -> Pending<'static> {
        Pending {
            job: Job::Analyse {
                id,
                source: source.to_owned(),
                path_bound: 2,
                function: None,
            },
            respond: Arc::new(|_, _| {}),
            deadline: None,
            accepted_at: Instant::now(),
            trace: id,
            lane: lane.to_owned(),
        }
    }

    const NO_COST_VETO: fn(usize) -> bool = |_| false;

    #[test]
    fn a_flooding_client_is_quota_shed_without_starving_its_neighbour() {
        // Capacity 8, but each client may only hold 2 queued jobs.  No
        // worker is draining, so lane depths are exact.
        let scheduler: Scheduler<'static> = Scheduler::new(8, 2);
        for id in 1..=2 {
            let source = format!("void a{id}(void) {{ x(); }}");
            assert!(matches!(
                scheduler.try_submit(pending_on("flood", id, &source), false, &NO_COST_VETO),
                Submitted::Queued { .. }
            ));
        }
        // The flooder's third job hits its quota while the queue itself
        // has six free slots.
        match scheduler.try_submit(
            pending_on("flood", 3, "void a3(void) { x(); }"),
            false,
            &NO_COST_VETO,
        ) {
            Submitted::Shed(pending, ShedReason::Quota) => assert_eq!(pending.job.id(), 3),
            _ => panic!("third flood job must be quota-shed"),
        }
        // A different client is still admitted.
        assert!(matches!(
            scheduler.try_submit(
                pending_on("neighbour", 4, "void b(void) { y(); }"),
                false,
                &NO_COST_VETO
            ),
            Submitted::Queued { .. }
        ));
        assert_eq!(scheduler.quota_shed.load(Ordering::Relaxed), 1);
        assert_eq!(scheduler.shed.load(Ordering::Relaxed), 0);
        // Round-robin drain: the neighbour's single job is interleaved
        // after the flooder's first, not queued behind its whole lane.
        scheduler.close();
        let order: Vec<u64> = std::iter::from_fn(|| scheduler.next().map(|p| p.job.id())).collect();
        assert_eq!(order, vec![1, 4, 2], "lanes must drain round-robin");
    }

    #[test]
    fn cost_shedding_declines_the_expensive_tail_first() {
        // (predicted, min, max, queued, capacity) → shed?
        let table: [(u64, u64, u64, usize, usize, bool, &str); 8] = [
            (80, 1, 80, 0, 16, false, "empty queue admits everything"),
            (
                80,
                1,
                80,
                7,
                16,
                false,
                "below half depth admits everything",
            ),
            (80, 1, 80, 8, 16, true, "dearest class shed from half depth"),
            (
                40,
                1,
                80,
                8,
                16,
                false,
                "mid-cost class admitted at half depth",
            ),
            (
                40,
                1,
                80,
                12,
                16,
                true,
                "above cheapest shed from 3/4 depth",
            ),
            (1, 1, 80, 15, 16, false, "cheapest class always admitted"),
            (0, 1, 80, 15, 16, false, "unmeasured op never cost-shed"),
            (
                80,
                80,
                80,
                15,
                16,
                false,
                "one measured class: no cost signal",
            ),
        ];
        for (predicted, min, max, queued, capacity, expected, why) in table {
            assert_eq!(
                cost_sheds(predicted, min, max, queued, capacity),
                expected,
                "{why}"
            );
        }
    }

    #[test]
    fn a_shed_burst_gets_distinct_jittered_retry_hints() {
        let root = temp_root("jitter-burst");
        let store = open_store(&root);
        // Capacity 0: every job in the burst is shed.  The requests are
        // identical except for their ids, so without jitter every caller
        // would get the same hint and retry in lockstep.
        let server = Server::new(store).with_workers(1).with_queue_capacity(0);
        let burst: String = (1..=6)
            .map(|id| {
                format!(
                    "{{\"id\": {id}, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n",
                    json::escape(SOURCE)
                )
            })
            .collect();
        let script = format!("{burst}{{\"id\": 9, \"op\": \"shutdown\"}}\n");
        let (summary, responses) = serve_script(&server, &script);
        assert_eq!(summary.shed, 6);
        let hints: Vec<u64> = responses[..6]
            .iter()
            .map(|r| {
                r.get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .expect("shed response carries a retry hint")
            })
            .collect();
        let distinct: std::collections::BTreeSet<u64> = hints.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "a shed burst must not produce one synchronized hint: {hints:?}"
        );
        // The spread stays within one jitter window of the 50 ms
        // no-measurement base, and is a pure function of the request id.
        for (i, hint) in hints.iter().enumerate() {
            assert!((50..100).contains(hint), "hint out of window: {hint}");
            assert_eq!(*hint, jittered_retry_ms(50, i as u64 + 1));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shutdown_acks_accurate_drain_counters_for_every_error_kind() {
        // One row per typed error kind that can be outstanding when the
        // `shutdown` arrives: a faulted compute, an expired deadline, and
        // a shed job.  Whatever the failure, the ack must still report
        // the drain count and a completed flush — a job that failed to
        // decrement the drain barrier would hang this test forever.
        let rows: [(&str, String, &str, usize); 3] = [
            (
                "fault",
                "{\"id\": 1, \"op\": \"analyse\", \"source\": \"not c at all\", \"path_bound\": 2}"
                    .to_owned(),
                "fault",
                16,
            ),
            (
                "cancelled",
                format!(
                    "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"deadline_ms\": 0}}",
                    json::escape(SOURCE)
                ),
                "cancelled",
                16,
            ),
            (
                "overloaded",
                format!(
                    "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
                    json::escape(SOURCE)
                ),
                "overloaded",
                0,
            ),
        ];
        for (tag, request, kind, capacity) in rows {
            let root = temp_root(&format!("drain-{tag}"));
            let store = open_store(&root);
            let server = Server::new(store)
                .with_workers(1)
                .with_queue_capacity(capacity);
            let script = format!("{request}\n{{\"id\": 9, \"op\": \"shutdown\"}}\n");
            let (summary, responses) = serve_script(&server, &script);
            assert_eq!(
                responses[0].get("error_kind").and_then(Value::as_str),
                Some(kind),
                "row {tag}: typed error expected, got {:?}",
                responses[0]
            );
            let ack = &responses[1];
            assert_eq!(ack.get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(ack.get("flushed").and_then(Value::as_bool), Some(true));
            let drained = ack
                .get("drained")
                .and_then(Value::as_u64)
                .expect("drained is a count, not a flag");
            // Declines answered at admission (expired deadline, shed) are
            // never outstanding; only the faulted compute may still be.
            assert!(drained <= 1, "row {tag}: drained {drained}");
            if kind != "fault" {
                assert_eq!(drained, 0, "row {tag}: inline declines never drain");
            }
            assert_eq!(summary.shed, u64::from(kind == "overloaded"));
            assert_eq!(summary.expired, u64::from(kind == "cancelled"));
            assert_eq!(summary.responses, 2);
            assert!(summary.clean_shutdown && summary.flushed);
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn a_declared_tenant_labels_the_lane_and_must_be_non_empty() {
        let root = temp_root("tenant");
        let store = open_store(&root);
        let server = Server::new(store).with_workers(1);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"tenant\": \"team-a\"}}\n\
             {{\"id\": 2, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"tenant\": \"\"}}\n\
             {{\"id\": 3, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE),
            json::escape(SOURCE)
        );
        let (_, responses) = serve_script(&server, &script);
        assert_eq!(responses[0].get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            responses[1].get("error_kind").and_then(Value::as_str),
            Some("fault"),
            "an empty tenant is a request error: {:?}",
            responses[1]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stats_snapshot_carries_the_resilience_counters() {
        let root = temp_root("resilience-stats");
        let store = open_store(&root);
        let server = Server::new(store).with_workers(1).with_queue_capacity(0);
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n\
             {{\"id\": 2, \"op\": \"stats\"}}\n\
             {{\"id\": 3, \"op\": \"shutdown\"}}\n",
            json::escape(SOURCE)
        );
        let (_, responses) = serve_script(&server, &script);
        let resilience = responses[1]
            .get("stats")
            .and_then(|s| s.get("resilience"))
            .expect("stats carries a resilience section");
        assert_eq!(resilience.get("shed").and_then(Value::as_u64), Some(1));
        assert_eq!(
            resilience.get("quota_shed").and_then(Value::as_u64),
            Some(0)
        );
        assert_eq!(
            resilience.get("disconnected").and_then(Value::as_u64),
            Some(0)
        );
        let wire = resilience.get("wire_faults").expect("wire fault counters");
        for kind in crate::fault::FaultKind::WIRE {
            assert_eq!(wire.get(kind.name()).and_then(Value::as_u64), Some(0));
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
