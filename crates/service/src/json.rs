//! Minimal JSON reader/writer for the `tmg-service/v1` request protocol.
//!
//! The build environment has no crates.io access (the vendored serde is
//! derive-markers only), so requests are parsed by a small hand-rolled
//! recursive-descent parser and responses are written with `format!` plus
//! [`escape`].  Integers are kept exact up to `i128` (path bounds are
//! `u128`); floats fall back to `f64`.  The parser accepts exactly the JSON
//! grammar — objects, arrays, strings with the standard escapes, numbers,
//! booleans, null — and rejects everything else with a position-tagged
//! error, which the server maps to an `ok:false` response.

use rustc_hash::FxHashMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion order is not preserved; the protocol never
    /// depends on it).
    Object(FxHashMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object and the key is present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload as `u128`, if this is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Int(v) if *v >= 0 => Some(*v as u128),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// The numeric payload as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            message: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8, message: &'static str) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, message })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err(ParseError {
            at: *pos,
            message: "unexpected end of input",
        });
    };
    match c {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Value::Str(parse_string(bytes, pos)?)),
        b't' | b'f' | b'n' => parse_keyword(bytes, pos),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(ParseError {
            at: *pos,
            message: "unexpected character",
        }),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    for (lit, value) in [
        (&b"true"[..], Value::Bool(true)),
        (&b"false"[..], Value::Bool(false)),
        (&b"null"[..], Value::Null),
    ] {
        if bytes[*pos..].starts_with(lit) {
            *pos += lit.len();
            return Ok(value);
        }
    }
    Err(ParseError {
        at: *pos,
        message: "invalid keyword",
    })
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut map = FxHashMap::default();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => {
                return Err(ParseError {
                    at: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => {
                return Err(ParseError {
                    at: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(ParseError {
                at: *pos,
                message: "unterminated string",
            });
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(ParseError {
                        at: *pos,
                        message: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(ParseError {
                            at: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| ParseError {
                            at: *pos,
                            message: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            at: *pos,
                            message: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the protocol;
                        // unpaired surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            message: "invalid escape",
                        })
                    }
                }
            }
            _ => {
                // Re-validate multi-byte sequences through the source str.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..end]).map_err(|_| ParseError {
                    at: start,
                    message: "invalid utf-8 in string",
                })?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut integral = true;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                integral = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if integral {
        if let Ok(v) = text.parse::<i128>() {
            return Ok(Value::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| ParseError {
            at: start,
            message: "invalid number",
        })
}

/// Escapes a string for embedding in hand-written JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id": 3, "op": "analyse", "source": "void f() { }", "path_bound": 4}"#)
            .expect("parse");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("op").and_then(Value::as_str), Some("analyse"));
        assert_eq!(v.get("path_bound").and_then(Value::as_u128), Some(4));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_arrays_numbers_and_escapes() {
        let v = parse(r#"[null, true, -7, 2.5, "a\"b\\c\ndA", []]"#).expect("parse");
        let items = v.as_array().expect("array");
        assert_eq!(items[0], Value::Null);
        assert_eq!(items[1], Value::Bool(true));
        assert_eq!(items[2], Value::Int(-7));
        assert_eq!(items[3], Value::Float(2.5));
        assert_eq!(items[4].as_str(), Some("a\"b\\c\nd\u{41}"));
        assert_eq!(items[5], Value::Array(vec![]));
    }

    #[test]
    fn big_path_bounds_stay_exact() {
        let v = parse("{\"path_bound\": 340282366920938463463374607431768211455}").expect("parse");
        // u128::MAX overflows i128 and degrades to a float...
        assert!(v.get("path_bound").and_then(Value::as_u128).is_none());
        // ...but anything representable in i128 is exact.
        let v = parse("{\"path_bound\": 170141183460469231731687303715884105727}").expect("parse");
        assert_eq!(
            v.get("path_bound").and_then(Value::as_u128),
            Some(i128::MAX as u128)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "line\nquote\" backslash\\ tab\t control\u{0001} ünïcode";
        let json = format!("{{\"s\": \"{}\"}}", escape(nasty));
        let v = parse(&json).expect("parse escaped");
        assert_eq!(v.get("s").and_then(Value::as_str), Some(nasty));
    }
}
