//! TCP transport for the analysis server.
//!
//! [`Server::serve_tcp`] runs the same `tmg-service/v1` JSON-lines protocol
//! as [`Server::serve`], over a [`TcpListener`] with many concurrent
//! connections.  Each connection is fully pipelined: a client may write any
//! number of request lines before reading responses, and responses arrive
//! in completion order tagged with the request `id`.  All connections
//! submit into one shared scheduler, so backpressure (the bounded queue),
//! deadlines, dedup, and the `stats`/`shutdown` barriers are session-wide,
//! exactly as in stdin mode — response bodies are byte-identical whichever
//! transport delivers them.
//!
//! A `shutdown` request from *any* connection ends the session: the
//! scheduler drains in-flight work, the disk tier is flushed, the ack is
//! written, and then every connection (and the accept loop) is unblocked.
//! EOF on one connection only ends that connection, never the session.
//!
//! Unlike stdin mode (which spawns scheduler workers on demand from its
//! single dispatch thread), TCP mode spawns the worker pool eagerly at
//! session start: a TCP session is long-lived, and parked workers cost
//! nothing but a condvar wait.

use crate::server::{Respond, Scheduler, ServeSummary, Server};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the accept loop re-checks the session-stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

impl Server {
    /// Serves the `tmg-service/v1` protocol over `listener` until a
    /// `shutdown` request arrives on any connection.
    ///
    /// # Errors
    ///
    /// Returns the first fatal listener error (per-connection and
    /// per-response I/O errors only end the affected connection).
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        let scheduler = Scheduler::new(self.queue_capacity());
        let stop = AtomicBool::new(false);
        let clean = AtomicBool::new(false);
        // One try-cloned handle per accepted connection, so a shutdown can
        // unblock every reader with `Shutdown::Both`.
        let connections: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..self.worker_cap() {
                scope.spawn(|| {
                    while let Some(pending) = scheduler.next() {
                        self.run_pending(&scheduler, pending);
                    }
                });
            }
            let mut accept_error = None;
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        match stream.try_clone() {
                            Ok(handle) => connections.lock().expect("connections").push(handle),
                            Err(_) => continue,
                        }
                        let scheduler = &scheduler;
                        let stop = &stop;
                        let clean = &clean;
                        let connections = &connections;
                        scope.spawn(move || {
                            self.serve_connection(scheduler, stream, stop, clean, connections);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        accept_error = Some(e);
                        stop.store(true, Ordering::Release);
                        unblock_all(&connections);
                        break;
                    }
                }
            }
            // Session teardown: answer everything accepted, persist it, and
            // let the workers and connection threads exit.  A clean
            // shutdown already drained and flushed inside `dispatch`; both
            // operations are idempotent.
            scheduler.barrier();
            self.flush_store();
            scheduler.close();
            match accept_error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        Ok(scheduler.summary(clean.load(Ordering::Acquire), true))
    }

    /// Reads request lines from one connection until EOF, a read error, or
    /// a session shutdown.  Responses for this connection's requests are
    /// routed back through its own socket, whichever worker computes them.
    fn serve_connection<'env>(
        &self,
        scheduler: &Scheduler<'env>,
        stream: TcpStream,
        stop: &AtomicBool,
        clean: &AtomicBool,
        connections: &Mutex<Vec<TcpStream>>,
    ) {
        let reader = match stream.try_clone() {
            Ok(read_half) => BufReader::new(read_half),
            Err(e) => {
                eprintln!("tmg-service: dropping connection: {e}");
                return;
            }
        };
        let writer = Mutex::new(stream);
        let respond: Respond<'env> = Arc::new(move |id, body| {
            let mut writer = writer.lock().expect("tcp writer");
            let line = format!("{{\"id\": {id}, {body}}}\n");
            if let Err(e) = writer.write_all(line.as_bytes()) {
                eprintln!("tmg-service: dropping response for request {id}: {e}");
            }
        });
        // The worker pool is eager in TCP mode, so dispatch never needs to
        // spawn one.
        let no_spawn = || {};
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if self.dispatch(scheduler, &line, &respond, &no_spawn) {
                // `shutdown`: the drain + flush already happened and the
                // ack is written.  End the whole session: stop accepting,
                // then unblock every connection's reader (including ours).
                clean.store(true, Ordering::Release);
                stop.store(true, Ordering::Release);
                unblock_all(connections);
                break;
            }
        }
    }
}

fn unblock_all(connections: &Mutex<Vec<TcpStream>>) {
    for connection in connections.lock().expect("connections").iter() {
        let _ = connection.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::store::{PersistentStore, PersistentStoreConfig};
    use std::io::Read;
    use std::net::SocketAddr;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmg-tcp-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_store(root: &std::path::Path) -> Arc<PersistentStore> {
        Arc::new(PersistentStore::with_config(PersistentStoreConfig::new(root)).expect("open"))
    }

    const SOURCE: &str = "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }";

    /// Writes `lines` to a fresh connection, then reads to EOF and returns
    /// the parsed responses sorted by id.
    fn rpc(addr: SocketAddr, lines: &str) -> Vec<Value> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(lines.as_bytes()).expect("send");
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        let mut responses: Vec<Value> = raw
            .lines()
            .map(|line| json::parse(line).expect("response parses"))
            .collect();
        responses.sort_by_key(|v| v.get("id").and_then(Value::as_u64).unwrap_or(0));
        responses
    }

    #[test]
    fn a_pipelined_tcp_session_round_trips_and_shuts_down() {
        let root = temp_root("roundtrip");
        let server = Server::new(open_store(&root)).with_workers(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
            // All four requests are written before any response is read:
            // the connection is pipelined.
            let script = format!(
                "{}\n{}\n{}\n{}\n",
                format_args!(
                    "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
                    json::escape(SOURCE)
                ),
                format_args!(
                    "{{\"id\": 2, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 100}}",
                    json::escape(SOURCE)
                ),
                "{\"id\": 3, \"op\": \"stats\"}",
                "{\"id\": 4, \"op\": \"shutdown\"}"
            );
            let responses = rpc(addr, &script);
            assert_eq!(responses.len(), 4);
            assert_eq!(
                responses[0].get("ok").and_then(Value::as_bool),
                Some(true),
                "analyse: {responses:?}"
            );
            assert_eq!(responses[1].get("ok").and_then(Value::as_bool), Some(true));
            assert!(
                responses[2]
                    .get("stats")
                    .and_then(|s| s.get("latency"))
                    .is_some(),
                "stats over TCP carries the latency histograms"
            );
            assert_eq!(
                responses[3].get("flushed").and_then(Value::as_bool),
                Some(true)
            );
            let summary = handle.join().expect("server thread");
            assert!(summary.clean_shutdown);
            assert!(summary.flushed);
            assert_eq!(summary.requests, 4);
            assert_eq!(summary.responses, 4);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_shutdown_from_one_connection_unblocks_the_others() {
        let root = temp_root("multi");
        let server = Server::new(open_store(&root)).with_workers(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
            // Connection A sends work and reads its response, but never
            // closes or shuts down — it idles, blocked on the next line.
            let mut idle = TcpStream::connect(addr).expect("connect A");
            let request = format!(
                "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n",
                json::escape(SOURCE)
            );
            idle.write_all(request.as_bytes()).expect("send A");
            let mut reader = BufReader::new(idle.try_clone().expect("clone A"));
            let mut first = String::new();
            reader.read_line(&mut first).expect("A's own response");
            let parsed = json::parse(&first).expect("A response parses");
            assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));

            // Connection B shuts the whole session down; A's blocked read
            // must return (EOF), not hang.
            let responses = rpc(addr, "{\"id\": 9, \"op\": \"shutdown\"}\n");
            assert_eq!(responses.len(), 1);
            let mut rest = String::new();
            let _ = reader.read_to_string(&mut rest);
            assert_eq!(rest, "", "A gets EOF after B's shutdown");
            let summary = handle.join().expect("server thread");
            assert!(summary.clean_shutdown);
            assert_eq!(summary.requests, 2);
            assert_eq!(summary.responses, 2);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tcp_and_stdin_responses_are_byte_identical() {
        // Trace ids are pinned: auto-assigned ones come from a
        // process-wide counter and would differ between the two runs.
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 4, \"trace_id\": 1}}\n\
             {{\"id\": 2, \"op\": \"shutdown\", \"trace_id\": 2}}\n",
            json::escape(SOURCE)
        );

        let root_stdin = temp_root("ident-stdin");
        let stdin_server = Server::new(open_store(&root_stdin)).with_workers(2);
        let mut out = Vec::new();
        stdin_server
            .serve(std::io::Cursor::new(script.clone()), &mut out)
            .expect("stdin serve");
        let stdin_lines: Vec<String> = String::from_utf8(out)
            .expect("utf-8")
            .lines()
            .map(str::to_owned)
            .collect();

        let root_tcp = temp_root("ident-tcp");
        let tcp_server = Server::new(open_store(&root_tcp)).with_workers(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let tcp_lines = std::thread::scope(|scope| {
            let handle = scope.spawn(|| tcp_server.serve_tcp(listener).expect("serve_tcp"));
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(script.as_bytes()).expect("send");
            let mut raw = String::new();
            let _ = stream.read_to_string(&mut raw);
            handle.join().expect("server thread");
            raw.lines().map(str::to_owned).collect::<Vec<_>>()
        });
        assert_eq!(
            stdin_lines, tcp_lines,
            "the two transports must produce byte-identical response lines"
        );
        let _ = std::fs::remove_dir_all(&root_stdin);
        let _ = std::fs::remove_dir_all(&root_tcp);
    }
}
