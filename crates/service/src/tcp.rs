//! TCP transport for the analysis server.
//!
//! [`Server::serve_tcp`] runs the same `tmg-service/v1` JSON-lines protocol
//! as [`Server::serve`], over a [`TcpListener`] with many concurrent
//! connections.  Each connection is fully pipelined: a client may write any
//! number of request lines before reading responses, and responses arrive
//! in completion order tagged with the request `id`.  All connections
//! submit into one shared scheduler, so backpressure (the bounded queue),
//! deadlines, dedup, and the `stats`/`shutdown` barriers are session-wide,
//! exactly as in stdin mode — response bodies are byte-identical whichever
//! transport delivers them.
//!
//! A `shutdown` request from *any* connection ends the session: the
//! scheduler drains in-flight work, the disk tier is flushed, the ack is
//! written, and then every connection (and the accept loop) is unblocked.
//! EOF on one connection only ends that connection, never the session.
//!
//! Unlike stdin mode (which spawns scheduler workers on demand from its
//! single dispatch thread), TCP mode spawns the worker pool eagerly at
//! session start: a TCP session is long-lived, and parked workers cost
//! nothing but a condvar wait.

use crate::fault::{damage, FaultKind, STALL_MS};
use crate::server::{Respond, Scheduler, ServeSummary, Server};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the accept loop re-checks the session-stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

impl Server {
    /// Serves the `tmg-service/v1` protocol over `listener` until a
    /// `shutdown` request arrives on any connection.
    ///
    /// # Errors
    ///
    /// Returns the first fatal listener error (per-connection and
    /// per-response I/O errors only end the affected connection).
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        let scheduler = Scheduler::new(self.queue_capacity(), self.effective_quota());
        let stop = AtomicBool::new(false);
        let clean = AtomicBool::new(false);
        // One try-cloned handle per accepted connection, so a shutdown can
        // unblock every reader with `Shutdown::Both`.
        let connections: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
        // Connection ordinals label the fair-queuing lanes of clients that
        // declare no tenant.
        let accepted = AtomicU64::new(0);

        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..self.worker_cap() {
                scope.spawn(|| {
                    while let Some(pending) = scheduler.next() {
                        self.run_pending(&scheduler, pending);
                    }
                });
            }
            let mut accept_error = None;
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        match stream.try_clone() {
                            Ok(handle) => connections.lock().expect("connections").push(handle),
                            Err(_) => continue,
                        }
                        let ordinal = accepted.fetch_add(1, Ordering::Relaxed);
                        let scheduler = &scheduler;
                        let stop = &stop;
                        let clean = &clean;
                        let connections = &connections;
                        scope.spawn(move || {
                            self.serve_connection(
                                scheduler,
                                stream,
                                stop,
                                clean,
                                connections,
                                ordinal,
                            );
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        accept_error = Some(e);
                        stop.store(true, Ordering::Release);
                        unblock_all(&connections);
                        break;
                    }
                }
            }
            // Session teardown: answer everything accepted, persist it, and
            // let the workers and connection threads exit.  A clean
            // shutdown already drained and flushed inside `dispatch`; both
            // operations are idempotent.
            scheduler.barrier();
            self.flush_store();
            scheduler.close();
            match accept_error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        Ok(scheduler.summary(clean.load(Ordering::Acquire), true))
    }

    /// Reads request lines from one connection until EOF, a read error, or
    /// a session shutdown.  Responses for this connection's requests are
    /// routed back through its own socket, whichever worker computes them.
    ///
    /// A connection that closes while its requests are still computing
    /// does not wedge a worker: the respond closure checks a per-connection
    /// liveness flag, drops the response for a dead socket (counting it in
    /// [`ServeSummary::disconnected`]), and the scheduler's drain
    /// accounting proceeds exactly as for a delivered response.
    fn serve_connection<'env>(
        &self,
        scheduler: &Scheduler<'env>,
        stream: TcpStream,
        stop: &AtomicBool,
        clean: &AtomicBool,
        connections: &Mutex<Vec<TcpStream>>,
        ordinal: u64,
    ) {
        let reader = match stream.try_clone() {
            Ok(read_half) => BufReader::new(read_half),
            Err(e) => {
                eprintln!("tmg-service: dropping connection: {e}");
                return;
            }
        };
        let alive = Arc::new(AtomicBool::new(true));
        let writer = Mutex::new(stream);
        let respond: Respond<'env> = {
            let alive = Arc::clone(&alive);
            let disconnected = scheduler.disconnected_handle();
            let wire = self.wire_fault_plan().clone();
            Arc::new(move |id, body| {
                if !alive.load(Ordering::Acquire) {
                    disconnected.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let mut writer = writer.lock().expect("tcp writer");
                let line = format!("{{\"id\": {id}, {body}}}\n");
                // Wire-level fault injection, response-write boundary.
                // Each delivery consumes at most ONE armed shot, checked in
                // [`FaultKind::WIRE`] order; the client contract ("never a
                // wrong answer") is preserved because a dropped/torn
                // delivery is indistinguishable from a crash before the
                // write and a duplicate is deduplicated by id.
                if wire.is_armed() {
                    if wire.take(FaultKind::ConnDrop) {
                        let _ = writer.shutdown(Shutdown::Both);
                        alive.store(false, Ordering::Release);
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    if wire.take(FaultKind::StallMs) {
                        // Delayed, then delivered intact.
                        std::thread::sleep(Duration::from_millis(STALL_MS));
                    } else if wire.take(FaultKind::TornFrame) {
                        let torn = damage(FaultKind::TornFrame, line.as_bytes());
                        let _ = writer.write_all(&torn).and_then(|()| writer.flush());
                        let _ = writer.shutdown(Shutdown::Both);
                        alive.store(false, Ordering::Release);
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    } else if wire.take(FaultKind::DupDelivery) {
                        let doubled = format!("{line}{line}");
                        if let Err(e) = writer.write_all(doubled.as_bytes()) {
                            alive.store(false, Ordering::Release);
                            disconnected.fetch_add(1, Ordering::Relaxed);
                            eprintln!("tmg-service: dropping response for request {id}: {e}");
                        }
                        return;
                    }
                }
                if let Err(e) = writer.write_all(line.as_bytes()) {
                    // First write failure marks the connection dead; later
                    // responses for it are dropped without touching the
                    // socket.
                    alive.store(false, Ordering::Release);
                    disconnected.fetch_add(1, Ordering::Relaxed);
                    eprintln!("tmg-service: dropping response for request {id}: {e}");
                }
            })
        };
        // The worker pool is eager in TCP mode, so dispatch never needs to
        // spawn one.
        let no_spawn = || {};
        let client = format!("conn:{ordinal}");
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if self.dispatch(scheduler, &line, &respond, &no_spawn, &client) {
                // `shutdown`: the drain + flush already happened and the
                // ack is written.  End the whole session: stop accepting,
                // then unblock every connection's reader (including ours).
                clean.store(true, Ordering::Release);
                stop.store(true, Ordering::Release);
                unblock_all(connections);
                break;
            }
        }
        // EOF or read error: the peer is gone.  Responses still in flight
        // for this connection are dropped (and counted) instead of being
        // written to a dead socket.
        alive.store(false, Ordering::Release);
    }
}

fn unblock_all(connections: &Mutex<Vec<TcpStream>>) {
    for connection in connections.lock().expect("connections").iter() {
        let _ = connection.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::json::{self, Value};
    use crate::store::{PersistentStore, PersistentStoreConfig};
    use std::io::Read;
    use std::net::SocketAddr;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmg-tcp-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_store(root: &std::path::Path) -> Arc<PersistentStore> {
        Arc::new(PersistentStore::with_config(PersistentStoreConfig::new(root)).expect("open"))
    }

    const SOURCE: &str = "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }";

    /// Writes `lines` to a fresh connection, then reads to EOF and returns
    /// the parsed responses sorted by id.
    fn rpc(addr: SocketAddr, lines: &str) -> Vec<Value> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(lines.as_bytes()).expect("send");
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        let mut responses: Vec<Value> = raw
            .lines()
            .map(|line| json::parse(line).expect("response parses"))
            .collect();
        responses.sort_by_key(|v| v.get("id").and_then(Value::as_u64).unwrap_or(0));
        responses
    }

    #[test]
    fn a_pipelined_tcp_session_round_trips_and_shuts_down() {
        let root = temp_root("roundtrip");
        let server = Server::new(open_store(&root)).with_workers(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
            // All four requests are written before any response is read:
            // the connection is pipelined.
            let script = format!(
                "{}\n{}\n{}\n{}\n",
                format_args!(
                    "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
                    json::escape(SOURCE)
                ),
                format_args!(
                    "{{\"id\": 2, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 100}}",
                    json::escape(SOURCE)
                ),
                "{\"id\": 3, \"op\": \"stats\"}",
                "{\"id\": 4, \"op\": \"shutdown\"}"
            );
            let responses = rpc(addr, &script);
            assert_eq!(responses.len(), 4);
            assert_eq!(
                responses[0].get("ok").and_then(Value::as_bool),
                Some(true),
                "analyse: {responses:?}"
            );
            assert_eq!(responses[1].get("ok").and_then(Value::as_bool), Some(true));
            assert!(
                responses[2]
                    .get("stats")
                    .and_then(|s| s.get("latency"))
                    .is_some(),
                "stats over TCP carries the latency histograms"
            );
            assert_eq!(
                responses[3].get("flushed").and_then(Value::as_bool),
                Some(true)
            );
            let summary = handle.join().expect("server thread");
            assert!(summary.clean_shutdown);
            assert!(summary.flushed);
            assert_eq!(summary.requests, 4);
            assert_eq!(summary.responses, 4);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_shutdown_from_one_connection_unblocks_the_others() {
        let root = temp_root("multi");
        let server = Server::new(open_store(&root)).with_workers(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
            // Connection A sends work and reads its response, but never
            // closes or shuts down — it idles, blocked on the next line.
            let mut idle = TcpStream::connect(addr).expect("connect A");
            let request = format!(
                "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n",
                json::escape(SOURCE)
            );
            idle.write_all(request.as_bytes()).expect("send A");
            let mut reader = BufReader::new(idle.try_clone().expect("clone A"));
            let mut first = String::new();
            reader.read_line(&mut first).expect("A's own response");
            let parsed = json::parse(&first).expect("A response parses");
            assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));

            // Connection B shuts the whole session down; A's blocked read
            // must return (EOF), not hang.
            let responses = rpc(addr, "{\"id\": 9, \"op\": \"shutdown\"}\n");
            assert_eq!(responses.len(), 1);
            let mut rest = String::new();
            let _ = reader.read_to_string(&mut rest);
            assert_eq!(rest, "", "A gets EOF after B's shutdown");
            let summary = handle.join().expect("server thread");
            assert!(summary.clean_shutdown);
            assert_eq!(summary.requests, 2);
            assert_eq!(summary.responses, 2);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tcp_and_stdin_responses_are_byte_identical() {
        // Trace ids are pinned: auto-assigned ones come from a
        // process-wide counter and would differ between the two runs.
        let script = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 4, \"trace_id\": 1}}\n\
             {{\"id\": 2, \"op\": \"shutdown\", \"trace_id\": 2}}\n",
            json::escape(SOURCE)
        );

        let root_stdin = temp_root("ident-stdin");
        let stdin_server = Server::new(open_store(&root_stdin)).with_workers(2);
        let mut out = Vec::new();
        stdin_server
            .serve(std::io::Cursor::new(script.clone()), &mut out)
            .expect("stdin serve");
        let stdin_lines: Vec<String> = String::from_utf8(out)
            .expect("utf-8")
            .lines()
            .map(str::to_owned)
            .collect();

        let root_tcp = temp_root("ident-tcp");
        let tcp_server = Server::new(open_store(&root_tcp)).with_workers(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let tcp_lines = std::thread::scope(|scope| {
            let handle = scope.spawn(|| tcp_server.serve_tcp(listener).expect("serve_tcp"));
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(script.as_bytes()).expect("send");
            let mut raw = String::new();
            let _ = stream.read_to_string(&mut raw);
            handle.join().expect("server thread");
            raw.lines().map(str::to_owned).collect::<Vec<_>>()
        });
        assert_eq!(
            stdin_lines, tcp_lines,
            "the two transports must produce byte-identical response lines"
        );
        let _ = std::fs::remove_dir_all(&root_stdin);
        let _ = std::fs::remove_dir_all(&root_tcp);
    }

    #[test]
    fn a_client_disconnecting_mid_compute_does_not_wedge_a_worker() {
        let root = temp_root("disconnect");
        // One worker: if the dead connection wedged it, the follow-up
        // request below would never be answered and the test would hang.
        let server = Server::new(open_store(&root)).with_workers(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
            // Submit a multi-millisecond sweep, then vanish without
            // reading the response.  The server-side reader hits EOF
            // (microseconds) long before the compute finishes, so the
            // response targets a connection already known to be dead.
            let request = format!(
                "{{\"id\": 1, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 100}}\n",
                json::escape(SOURCE)
            );
            {
                let mut ghost = TcpStream::connect(addr).expect("connect ghost");
                ghost.write_all(request.as_bytes()).expect("send ghost");
            } // dropped: the peer is gone mid-compute
              // A healthy client still gets served by the same worker.
            let script = format!(
                "{{\"id\": 2, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n\
                 {{\"id\": 3, \"op\": \"shutdown\"}}\n",
                json::escape(SOURCE)
            );
            let responses = rpc(addr, &script);
            assert_eq!(responses.len(), 2, "worker survived the dead socket");
            assert_eq!(responses[0].get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(
                responses[1].get("flushed").and_then(Value::as_bool),
                Some(true)
            );
            let summary = handle.join().expect("server thread");
            assert_eq!(
                summary.disconnected, 1,
                "the dropped response must be counted, not written"
            );
            assert!(summary.clean_shutdown);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Reads exactly `n` response lines from an open connection (which,
    /// unlike [`rpc`], the server keeps serving afterwards).
    fn read_lines(reader: &mut BufReader<TcpStream>, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let mut line = String::new();
                reader.read_line(&mut line).expect("read line");
                line
            })
            .collect()
    }

    #[test]
    fn every_wire_fault_kind_fires_on_the_tcp_path() {
        let root = temp_root("wire-faults");
        let plan = FaultPlan::none()
            .with(FaultKind::ConnDrop, 1)
            .with(FaultKind::StallMs, 1)
            .with(FaultKind::TornFrame, 1)
            .with(FaultKind::DupDelivery, 1);
        let server = Server::new(open_store(&root))
            .with_workers(2)
            .with_wire_faults(plan.clone());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let request = format!(
            "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}\n",
            json::escape(SOURCE)
        );
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));

            // Shot 1, conn_drop: the connection dies instead of answering.
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(request.as_bytes()).expect("send");
            let mut raw = String::new();
            let _ = c.read_to_string(&mut raw);
            assert_eq!(raw, "", "conn_drop delivers nothing, only EOF");

            // Shot 2, stall_ms: the answer arrives, just late.
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(request.as_bytes()).expect("send");
            let mut reader = BufReader::new(c.try_clone().expect("clone"));
            let lines = read_lines(&mut reader, 1);
            let parsed = json::parse(&lines[0]).expect("stalled response parses");
            assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
            drop(reader);
            drop(c);

            // Shot 3, torn_frame: a half-written line with no newline,
            // then EOF — a client must treat it as a failed delivery.
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(request.as_bytes()).expect("send");
            let mut raw = String::new();
            let _ = c.read_to_string(&mut raw);
            assert!(
                !raw.is_empty() && !raw.ends_with('\n'),
                "torn frame: {raw:?}"
            );
            assert!(json::parse(&raw).is_err(), "a torn frame must not parse");

            // Shot 4, dup_delivery: the same response line twice; a
            // client deduplicating by id sees one answer.
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(request.as_bytes()).expect("send");
            let mut reader = BufReader::new(c.try_clone().expect("clone"));
            let lines = read_lines(&mut reader, 2);
            assert_eq!(lines[0], lines[1], "duplicate delivery is bit-identical");
            drop(reader);
            drop(c);

            // The plan is spent: stats and shutdown answer normally, and
            // the resilience counters report every shot.
            let responses = rpc(
                addr,
                "{\"id\": 8, \"op\": \"stats\"}\n{\"id\": 9, \"op\": \"shutdown\"}\n",
            );
            assert_eq!(responses.len(), 2);
            let wire = responses[0]
                .get("stats")
                .and_then(|s| s.get("resilience"))
                .and_then(|r| r.get("wire_faults"))
                .expect("stats carries wire fault counters");
            for kind in FaultKind::WIRE {
                assert_eq!(
                    wire.get(kind.name()).and_then(Value::as_u64),
                    Some(1),
                    "{} must have fired once",
                    kind.name()
                );
            }
            let summary = handle.join().expect("server thread");
            // conn_drop and torn_frame each killed a connection at
            // respond time.
            assert_eq!(summary.disconnected, 2);
            assert_eq!(plan.total_fired(), 4);
        });
        let _ = std::fs::remove_dir_all(&root);
    }
}
