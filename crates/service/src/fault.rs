//! Deterministic fault injection for the disk tier and the wire.
//!
//! A [`FaultPlan`] arms a bounded number of *shots* per fault kind; the disk
//! cache consults it at its I/O boundaries and, while shots remain, mutates
//! the operation the way a hostile environment would: a torn write, a short
//! read, a flipped bit, or a process crash on either side of the atomic
//! publish.  Every mutation is deterministic (fixed positions, no clocks, no
//! randomness), so a test or CI run asserting the tier's invariant — *every
//! injected fault yields a clean miss + recompute or a bit-identical valid
//! artifact, never a wrong one* — is reproducible.
//!
//! The plan is armed from the environment by the CLI entry points:
//!
//! ```text
//! TMG_FAULT_PLAN=torn_write:3,crash_after_publish:1 reproduce -- serve --smoke
//! ```
//!
//! Disk kinds: `torn_write`, `short_read`, `bit_flip`,
//! `crash_before_publish`, `crash_after_publish`, `torn_append`,
//! `crash_mid_compaction`.  Wire kinds, consulted by the TCP transport on
//! each response write: `conn_drop` (close the socket instead of writing),
//! `stall_ms` (delay the write by [`STALL_MS`] milliseconds), `torn_frame`
//! (write half the response line, then close), `dup_delivery` (write the
//! response line twice).  A count of `n` fires on the first `n` qualifying
//! operations.  An unset or empty plan is fully inert — the production code
//! path contains one `Option` check per I/O operation and nothing else.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One injectable fault class.  See the module docs for the wire names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A store writes only the first half of the frame to the *final* path
    /// (the legacy non-atomic write dying mid-frame).
    TornWrite,
    /// A load returns only the first half of the frame bytes.
    ShortRead,
    /// A load returns the frame with one bit flipped in the middle.
    BitFlip,
    /// A store writes (and syncs) the temp file but "crashes" before the
    /// rename: the artifact is never published, the orphan `.tmp` remains.
    CrashBeforePublish,
    /// A store publishes the frame normally but "crashes" before any
    /// in-process accounting: the next process must still serve it warm.
    CrashAfterPublish,
    /// A segment append writes only the first half of the record and the
    /// writer "dies": the torn tail must degrade to a clean miss and must
    /// not hide records appended after the writer restarts.
    TornAppend,
    /// Compaction copies the victim's live frames but "crashes" before
    /// deleting the victim segment: bit-identical duplicates remain and the
    /// next process must reconcile them.
    CrashMidCompaction,
    /// The transport closes the connection instead of writing a response:
    /// the client sees an EOF mid-conversation and must reconnect + retry.
    ConnDrop,
    /// The transport stalls for [`STALL_MS`] milliseconds before writing the
    /// response — a network hiccup that should trigger client hedging, never
    /// a wrong answer.
    StallMs,
    /// The transport writes only the first half of the response line and
    /// then closes the connection: the client must discard the torn frame
    /// (no trailing newline) and resubmit.
    TornFrame,
    /// The transport writes the response line twice: the client must
    /// deduplicate by request id.
    DupDelivery,
}

/// Fixed stall injected per [`FaultKind::StallMs`] shot, in milliseconds —
/// a constant, not a parameter, so injections stay deterministic.
pub const STALL_MS: u64 = 25;

impl FaultKind {
    /// All kinds, in wire-name order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::TornWrite,
        FaultKind::ShortRead,
        FaultKind::BitFlip,
        FaultKind::CrashBeforePublish,
        FaultKind::CrashAfterPublish,
        FaultKind::TornAppend,
        FaultKind::CrashMidCompaction,
        FaultKind::ConnDrop,
        FaultKind::StallMs,
        FaultKind::TornFrame,
        FaultKind::DupDelivery,
    ];

    /// The network-level kinds, injected on the TCP response path.
    pub const WIRE: [FaultKind; 4] = [
        FaultKind::ConnDrop,
        FaultKind::StallMs,
        FaultKind::TornFrame,
        FaultKind::DupDelivery,
    ];

    /// The `TMG_FAULT_PLAN` name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TornWrite => "torn_write",
            FaultKind::ShortRead => "short_read",
            FaultKind::BitFlip => "bit_flip",
            FaultKind::CrashBeforePublish => "crash_before_publish",
            FaultKind::CrashAfterPublish => "crash_after_publish",
            FaultKind::TornAppend => "torn_append",
            FaultKind::CrashMidCompaction => "crash_mid_compaction",
            FaultKind::ConnDrop => "conn_drop",
            FaultKind::StallMs => "stall_ms",
            FaultKind::TornFrame => "torn_frame",
            FaultKind::DupDelivery => "dup_delivery",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::TornWrite => 0,
            FaultKind::ShortRead => 1,
            FaultKind::BitFlip => 2,
            FaultKind::CrashBeforePublish => 3,
            FaultKind::CrashAfterPublish => 4,
            FaultKind::TornAppend => 5,
            FaultKind::CrashMidCompaction => 6,
            FaultKind::ConnDrop => 7,
            FaultKind::StallMs => 8,
            FaultKind::TornFrame => 9,
            FaultKind::DupDelivery => 10,
        }
    }
}

const KIND_COUNT: usize = FaultKind::ALL.len();

#[derive(Debug, Default)]
struct Shots {
    remaining: [AtomicU64; KIND_COUNT],
    fired: [AtomicU64; KIND_COUNT],
}

/// An armed (or inert) set of fault shots, shared by every clone.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    shots: Option<Arc<Shots>>,
}

impl FaultPlan {
    /// The inert plan: injects nothing, costs one `Option` check per query.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with `count` shots of `kind` armed (chainable).
    pub fn with(self, kind: FaultKind, count: u64) -> FaultPlan {
        let shots = self.shots.unwrap_or_else(|| Arc::new(Shots::default()));
        shots.remaining[kind.index()].fetch_add(count, Ordering::Relaxed);
        FaultPlan { shots: Some(shots) }
    }

    /// Parses a `kind:count,kind:count` spec.  Unknown kinds and unparsable
    /// counts are errors — a typo'd plan must not silently test nothing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (name, count) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` is not `kind:count`"))?;
            let kind = FaultKind::ALL
                .into_iter()
                .find(|k| k.name() == name.trim())
                .ok_or_else(|| format!("unknown fault kind `{name}`"))?;
            let count: u64 = count
                .trim()
                .parse()
                .map_err(|_| format!("fault count `{count}` is not a number"))?;
            plan = plan.with(kind, count);
        }
        Ok(plan)
    }

    /// Arms a plan from the `TMG_FAULT_PLAN` environment variable; unset or
    /// empty yields the inert plan.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — fault injection is an operator/CI
    /// feature and a bad plan must fail loudly, not silently test nothing.
    pub fn from_env() -> FaultPlan {
        match std::env::var("TMG_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).expect("TMG_FAULT_PLAN"),
            _ => FaultPlan::none(),
        }
    }

    /// Whether any shots were ever armed (inert plans answer `false`).
    pub fn is_armed(&self) -> bool {
        self.shots.is_some()
    }

    /// Consumes one shot of `kind` if any remain; `true` means the caller
    /// must inject the fault now.
    pub fn take(&self, kind: FaultKind) -> bool {
        let Some(shots) = &self.shots else {
            return false;
        };
        let remaining = &shots.remaining[kind.index()];
        let mut current = remaining.load(Ordering::Relaxed);
        while current > 0 {
            match remaining.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    shots.fired[kind.index()].fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
        false
    }

    /// How many shots of `kind` have fired so far.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.shots
            .as_ref()
            .map_or(0, |s| s.fired[kind.index()].load(Ordering::Relaxed))
    }

    /// Total shots fired across all kinds.
    pub fn total_fired(&self) -> u64 {
        FaultKind::ALL.into_iter().map(|k| self.fired(k)).sum()
    }
}

/// Deterministically damages `bytes` for [`FaultKind::ShortRead`] /
/// [`FaultKind::BitFlip`] / [`FaultKind::TornWrite`] /
/// [`FaultKind::TornAppend`] / [`FaultKind::TornFrame`]: truncation keeps
/// the first half, the bit flip XORs the middle byte.
pub fn damage(kind: FaultKind, bytes: &[u8]) -> Vec<u8> {
    match kind {
        FaultKind::ShortRead
        | FaultKind::TornWrite
        | FaultKind::TornAppend
        | FaultKind::TornFrame => bytes[..bytes.len() / 2].to_vec(),
        FaultKind::BitFlip => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                let mid = out.len() / 2;
                out[mid] ^= 0x40;
            }
            out
        }
        FaultKind::CrashBeforePublish
        | FaultKind::CrashAfterPublish
        | FaultKind::CrashMidCompaction
        | FaultKind::ConnDrop
        | FaultKind::StallMs
        | FaultKind::DupDelivery => bytes.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_issue_example() {
        let plan = FaultPlan::parse("torn_write:3,crash_after_publish:1").expect("parse");
        assert!(plan.is_armed());
        assert!(plan.take(FaultKind::TornWrite));
        assert!(plan.take(FaultKind::TornWrite));
        assert!(plan.take(FaultKind::TornWrite));
        assert!(!plan.take(FaultKind::TornWrite), "only 3 shots armed");
        assert!(plan.take(FaultKind::CrashAfterPublish));
        assert!(!plan.take(FaultKind::CrashAfterPublish));
        assert!(!plan.take(FaultKind::ShortRead), "never armed");
        assert_eq!(plan.fired(FaultKind::TornWrite), 3);
        assert_eq!(plan.total_fired(), 4);
    }

    #[test]
    fn the_segment_log_kinds_parse_and_fire() {
        let plan = FaultPlan::parse("torn_append:2,crash_mid_compaction:1").expect("parse");
        assert!(plan.take(FaultKind::TornAppend));
        assert!(plan.take(FaultKind::TornAppend));
        assert!(!plan.take(FaultKind::TornAppend));
        assert!(plan.take(FaultKind::CrashMidCompaction));
        assert_eq!(plan.total_fired(), 3);
        let bytes: Vec<u8> = (0..32).collect();
        assert_eq!(damage(FaultKind::TornAppend, &bytes), &bytes[..16]);
        assert_eq!(damage(FaultKind::CrashMidCompaction, &bytes), bytes);
    }

    #[test]
    fn the_wire_kinds_parse_and_fire() {
        let plan =
            FaultPlan::parse("conn_drop:1,stall_ms:2,torn_frame:1,dup_delivery:1").expect("parse");
        for kind in FaultKind::WIRE {
            assert!(plan.take(kind), "{} armed", kind.name());
        }
        assert!(plan.take(FaultKind::StallMs), "second stall shot");
        assert!(!plan.take(FaultKind::ConnDrop), "single shot spent");
        assert_eq!(plan.total_fired(), 5);
        let line = b"{\"id\": 1, \"ok\": true}\n".to_vec();
        let torn = damage(FaultKind::TornFrame, &line);
        assert_eq!(torn, &line[..line.len() / 2]);
        assert!(!torn.ends_with(b"\n"), "a torn frame has no terminator");
        assert_eq!(damage(FaultKind::DupDelivery, &line), line);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("torn_write").is_err());
        assert!(FaultPlan::parse("torn_write:x").is_err());
        assert!(FaultPlan::parse("no_such_fault:1").is_err());
        assert!(!FaultPlan::parse("").expect("empty is inert").is_armed());
        assert!(!FaultPlan::parse(" , ").expect("blank entries").is_armed());
    }

    #[test]
    fn the_inert_plan_never_fires() {
        let plan = FaultPlan::none();
        for kind in FaultKind::ALL {
            assert!(!plan.take(kind));
        }
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn clones_share_the_shot_pool() {
        let plan = FaultPlan::none().with(FaultKind::BitFlip, 1);
        let clone = plan.clone();
        assert!(clone.take(FaultKind::BitFlip));
        assert!(!plan.take(FaultKind::BitFlip), "shots are shared");
        assert_eq!(plan.fired(FaultKind::BitFlip), 1);
    }

    #[test]
    fn damage_is_deterministic() {
        let bytes: Vec<u8> = (0..32).collect();
        assert_eq!(damage(FaultKind::ShortRead, &bytes), &bytes[..16]);
        let flipped = damage(FaultKind::BitFlip, &bytes);
        assert_eq!(flipped.len(), bytes.len());
        assert_eq!(flipped[16], bytes[16] ^ 0x40);
        assert_eq!(damage(FaultKind::BitFlip, &bytes), flipped);
    }
}
