//! Lock-free per-op latency histograms for the analysis server.
//!
//! Each [`Histogram`] buckets durations by the bit length of the
//! microsecond count (log₂ buckets), which is coarse but constant-time,
//! allocation-free, and good enough for the p50/p95/p99 the `stats`
//! snapshot reports: a quantile answers with the *upper bound* of the
//! bucket it lands in, so reported percentiles never understate latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 40;

/// A fixed log₂-bucket latency histogram (atomic, shared by reference).
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts durations whose microsecond count has bit
    /// length `i`, i.e. the half-open range `(2^(i-1), 2^i]` µs.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one operation's duration.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Operations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / count as f64 / 1000.0
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds: the upper bound of
    /// the bucket holding the target rank, 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i covers (2^(i-1), 2^i] µs; bucket 0 is exactly 0.
                let upper_us = if i == 0 { 0u64 } else { 1u64 << i };
                return upper_us as f64 / 1000.0;
            }
        }
        0.0
    }

    /// Renders `{"count": N, "mean_ms": ..., "p50_ms": ..., ...}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"count\": {}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3} }}",
            self.count(),
            self.mean_ms(),
            self.quantile_ms(0.50),
            self.quantile_ms(0.95),
            self.quantile_ms(0.99),
        )
    }
}

/// The server's per-op histograms, embedded in the `stats` snapshot.
#[derive(Debug, Default)]
pub struct LatencySet {
    /// End-to-end `analyse` latency (accept → response written).
    pub analyse: Histogram,
    /// End-to-end `analyse_module` latency.
    pub analyse_module: Histogram,
    /// End-to-end `sweep` latency.
    pub sweep: Histogram,
}

impl LatencySet {
    /// Renders `{"analyse": {...}, "analyse_module": {...}, "sweep": {...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"analyse\": {}, \"analyse_module\": {}, \"sweep\": {} }}",
            self.analyse.to_json(),
            self.analyse_module.to_json(),
            self.sweep.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::default();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        // 1 ms = 1000 µs → bucket 10, upper bound 1024 µs = 1.024 ms.
        assert_eq!(h.quantile_ms(0.50), 1.024);
        assert_eq!(h.quantile_ms(0.90), 1.024);
        // 100 ms = 100_000 µs → bucket 17, upper bound 131.072 ms.
        assert_eq!(h.quantile_ms(0.99), 131.072);
        assert!(h.quantile_ms(0.99) >= h.quantile_ms(0.50));
        assert!((h.mean_ms() - 10.9).abs() < 0.1);
    }

    #[test]
    fn an_empty_histogram_answers_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert!(h.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn the_set_renders_both_ops() {
        let set = LatencySet::default();
        set.analyse.record(Duration::from_micros(10));
        let json = set.to_json();
        assert!(json.contains("\"analyse\": { \"count\": 1"));
        assert!(json.contains("\"sweep\": { \"count\": 0"));
    }
}
