//! Per-op latency histograms for the analysis server.
//!
//! The histogram itself ([`tmg_obs::Histogram`], re-exported here) lives
//! in the observability crate: lock-free log₂ buckets whose quantiles
//! answer with bucket *upper bounds*, so reported percentiles never
//! understate latency.  This module keeps the server-side grouping: one
//! histogram per schedulable op, registered as the `latency` group of the
//! unified metrics registry.

pub use tmg_obs::Histogram;

/// The server's per-op histograms, embedded in the `stats` snapshot.
#[derive(Debug, Default)]
pub struct LatencySet {
    /// End-to-end `analyse` latency (accept → response written).
    pub analyse: Histogram,
    /// End-to-end `analyse_module` latency.
    pub analyse_module: Histogram,
    /// End-to-end `sweep` latency.
    pub sweep: Histogram,
}

impl LatencySet {
    /// Renders `{"analyse": {...}, "analyse_module": {...}, "sweep": {...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"analyse\": {}, \"analyse_module\": {}, \"sweep\": {} }}",
            self.analyse.to_json(),
            self.analyse_module.to_json(),
            self.sweep.to_json()
        )
    }

    /// Registers (or replaces) this set as the unified registry's
    /// `latency` group.  The server calls it at construction, so the
    /// registry snapshot always renders the live server's histograms.
    pub fn register(self: &std::sync::Arc<Self>) {
        let set = std::sync::Arc::clone(self);
        tmg_obs::registry().register_section("latency", Box::new(move || set.to_json()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn the_set_renders_both_ops() {
        let set = LatencySet::default();
        set.analyse.record(Duration::from_micros(10));
        let json = set.to_json();
        assert!(json.contains("\"analyse\": { \"count\": 1"));
        assert!(json.contains("\"sweep\": { \"count\": 0"));
    }

    #[test]
    fn a_registered_set_backs_the_registry_latency_group() {
        // Other tests (every server construction) also register the group,
        // so assert shape, not identity with this particular instance.
        let set = std::sync::Arc::new(LatencySet::default());
        set.register();
        let group = tmg_obs::registry()
            .group_json("latency")
            .expect("latency group registered");
        for key in [
            "\"analyse\":",
            "\"analyse_module\":",
            "\"sweep\":",
            "\"p99_ms\":",
        ] {
            assert!(group.contains(key), "missing {key} in {group}");
        }
    }
}
