//! Prints the reproduced tables and figures of the paper's evaluation, and
//! emits the machine-readable perf baseline.
//!
//! ```text
//! cargo run -p tmg-bench --release --bin reproduce -- all
//! cargo run -p tmg-bench --release --bin reproduce -- table1 table2 case-study
//! cargo run -p tmg-bench --release --bin reproduce -- sweep     # Figure-2/3 curve as JSON
//! cargo run -p tmg-bench --release --bin reproduce -- bench     # writes BENCH_pr3.json
//! cargo run -p tmg-bench --release --bin reproduce -- --quick   # CI smoke run
//! ```
//!
//! `bench` times every reworked hot path twice — pre-optimisation
//! implementation and optimised implementation — verifies the results are
//! identical, and writes `BENCH_pr3.json` (path overridable with the
//! `TMG_BENCH_OUT` environment variable).  `sweep` prints the cached
//! incremental Figure-2/3 tradeoff sweep as machine-readable JSON (written
//! by hand; the vendored serde is derive-markers only), so the curve is
//! scriptable; `TMG_TARGET_BLOCKS` sizes the generated function.

use tmg_bench::{
    case_study, figure2_3, multiquery_crosscheck, perf_report, sweep_crosscheck, table1,
    table1_paper, table2, testgen_experiment,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        run_quick();
        return;
    }
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1".into(),
            "figure2".into(),
            "figure3".into(),
            "table2".into(),
            "case-study".into(),
            "testgen".into(),
        ]
    } else {
        args
    };
    for experiment in wanted {
        match experiment.as_str() {
            "table1" => print_table1(),
            "figure2" => print_figure2_3(true),
            "figure3" => print_figure2_3(false),
            "table2" => print_table2(),
            "case-study" | "case_study" => print_case_study(),
            "testgen" => print_testgen(),
            "sweep" => print_sweep_json(),
            "bench" => run_bench(),
            other => eprintln!("unknown experiment `{other}` (expected table1, figure2, figure3, table2, case-study, testgen, sweep, bench, all)"),
        }
    }
}

/// Fast smoke run for CI: the exact Table-1 reproduction, one full (small)
/// pipeline, and the batched-vs-single-query equivalence cross-check — no
/// perf measurement.
fn run_quick() {
    print_table1();
    assert_eq!(table1(), table1_paper(), "Table 1 must reproduce exactly");
    let r = case_study();
    assert!(
        r.wcet_bound >= r.exhaustive_max,
        "case-study bound must be sound"
    );
    println!(
        "quick: case study WCET bound {} cycles >= exhaustive {} cycles (pessimism {:.3}) — ok",
        r.wcet_bound, r.exhaustive_max, r.pessimism
    );
    let checked = multiquery_crosscheck();
    println!("quick: batched vs single-query verdicts identical on {checked} queries — ok");
    let points = sweep_crosscheck();
    println!(
        "quick: incremental sweep bit-identical to the per-bound reference on {points} points — ok"
    );
}

/// Prints the Figure-2/3 tradeoff sweep as hand-written JSON, so the cached
/// incremental sweep is scriptable (`reproduce -- sweep | jq ...`).
fn print_sweep_json() {
    let target_blocks = std::env::var("TMG_TARGET_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(850);
    let (stats, sweep) = figure2_3(target_blocks);
    println!("{{");
    println!("  \"schema\": \"tmg-tradeoff-sweep/v1\",");
    println!(
        "  \"function\": {{ \"blocks\": {}, \"branches\": {}, \"lines\": {} }},",
        stats.blocks, stats.branches, stats.lines
    );
    println!("  \"points\": [");
    for (i, p) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        println!(
            "    {{ \"path_bound\": {}, \"instrumentation_points\": {}, \"measurements\": {}, \"segments\": {} }}{}",
            p.path_bound, p.instrumentation_points, p.measurements, p.segments, comma
        );
    }
    println!("  ]");
    println!("}}");
}

/// Full perf baseline: times the workloads on the pre-optimisation and the
/// optimised hot paths, checks result equality, writes `BENCH_pr2.json`.
fn run_bench() {
    let report = perf_report();
    println!("== Perf baseline (before = pre-optimisation, after = optimised) ==");
    let mut rows = vec![&report.table2, &report.pipeline];
    rows.extend(report.testgen.iter());
    for c in rows {
        println!(
            "{:<26} before {:>9.2} ms   after {:>9.2} ms   speedup {:>6.2}x   identical: {}",
            c.name,
            c.before.as_secs_f64() * 1e3,
            c.after.as_secs_f64() * 1e3,
            c.speedup(),
            c.identical_results
        );
    }
    println!(
        "hot-path speedup (geomean): {:.2}x   all results identical: {}",
        report.hot_path_speedup(),
        report.all_results_identical()
    );
    assert!(
        report.all_results_identical(),
        "optimised implementations must not change any result"
    );
    assert!(
        report.table1_matches_paper,
        "Table 1 must reproduce exactly"
    );
    let out = std::env::var("TMG_BENCH_OUT")
        .unwrap_or_else(|_| format!("BENCH_{}.json", tmg_bench::perf::PR_LABEL));
    std::fs::write(&out, report.to_json()).expect("write bench json");
    println!("wrote {out}");
}

fn print_table1() {
    println!("== Table 1: measurement effort vs path bound (Figure-1 example) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "bound b", "ip (ours)", "ip (paper)", "m (ours)", "m (paper)"
    );
    for ((b, ip, m), (_, ip_p, m_p)) in table1().into_iter().zip(table1_paper()) {
        println!("{b:>8} {ip:>14} {ip_p:>14} {m:>14} {m_p:>14}");
    }
    println!();
}

fn print_figure2_3(figure2: bool) {
    let target_blocks = std::env::var("TMG_TARGET_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(850);
    let (stats, sweep) = figure2_3(target_blocks);
    if figure2 {
        println!("== Figure 2: instrumentation points over path bound b ==");
        println!(
            "generated function: {} blocks, {} conditional branches, {} lines (paper: ~857 / ~300 / ~5000)",
            stats.blocks, stats.branches, stats.lines
        );
        println!("{:>12} {:>10} {:>12}", "bound b", "ip", "segments");
        for p in &sweep {
            println!(
                "{:>12} {:>10} {:>12}",
                p.path_bound, p.instrumentation_points, p.segments
            );
        }
    } else {
        println!("== Figure 3: measurements m over instrumentation points ip ==");
        println!("{:>10} {:>22}", "ip", "m");
        for p in &sweep {
            println!("{:>10} {:>22}", p.instrumentation_points, p.measurements);
        }
    }
    println!();
}

fn print_table2() {
    println!("== Table 2: impact of model-state optimisations (105-line module) ==");
    println!(
        "{:<28} {:>12} {:>14} {:>8} {:>14} {:>10}",
        "optimisation technique", "time [ms]", "memory [kB]", "steps", "transitions", "state bits"
    );
    for row in table2() {
        println!(
            "{:<28} {:>12.2} {:>14.1} {:>8} {:>14} {:>10}",
            row.label,
            row.duration.as_secs_f64() * 1e3,
            row.memory_bytes as f64 / 1024.0,
            row.steps
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            row.transitions_fired,
            row.state_bits
        );
    }
    println!();
}

fn print_case_study() {
    let r = case_study();
    println!("== Section 4 case study: wiper control ==");
    println!("path bound (one PS per case arm): {}", r.path_bound);
    println!(
        "segments: {}   ip: {}   m: {}",
        r.segments, r.instrumentation_points, r.measurements
    );
    println!(
        "test data: {} heuristic + {} model checker, {} infeasible",
        r.heuristic_covered, r.checker_covered, r.infeasible
    );
    println!(
        "WCET bound: {} cycles   exhaustive end-to-end maximum: {} cycles   pessimism: {:.3} (paper: 274 vs 250 = 1.096)",
        r.wcet_bound, r.exhaustive_max, r.pessimism
    );
    println!();
}

fn print_testgen() {
    let r = testgen_experiment();
    println!("== Hybrid test-data generation (Section 3 claim) ==");
    println!(
        "goals: {}   heuristic: {}   model checker: {}   infeasible: {}   unknown: {}",
        r.goals, r.heuristic_covered, r.checker_covered, r.infeasible, r.unknown
    );
    println!(
        "heuristic coverage of feasible goals: {:.1} % (paper expects > 90 %)",
        r.heuristic_ratio * 100.0
    );
    println!();
}
