//! Prints the reproduced tables and figures of the paper's evaluation, and
//! emits the machine-readable perf baseline.
//!
//! ```text
//! cargo run -p tmg-bench --release --bin reproduce -- all
//! cargo run -p tmg-bench --release --bin reproduce -- table1 table2 case-study
//! cargo run -p tmg-bench --release --bin reproduce -- sweep           # Figure-2/3 curve as JSON
//! cargo run -p tmg-bench --release --bin reproduce -- sweep --stats   # + artifact-store counters
//! cargo run -p tmg-bench --release --bin reproduce -- serve           # JSON-lines analysis server
//! cargo run -p tmg-bench --release --bin reproduce -- serve --tcp 127.0.0.1:7077   # TCP transport
//! cargo run -p tmg-bench --release --bin reproduce -- serve --smoke   # scripted cold/warm smoke
//! cargo run -p tmg-bench --release --bin reproduce -- loadtest        # mixed socket loadtest
//! cargo run -p tmg-bench --release --bin reproduce -- chaos           # kill/restart + wire-fault soak
//! cargo run -p tmg-bench --release --bin reproduce -- chaos --quick   # CI chaos smoke
//! cargo run -p tmg-bench --release --bin reproduce -- profile         # Chrome trace of one cold request
//! cargo run -p tmg-bench --release --bin reproduce -- profile --quick # validated profiling smoke
//! cargo run -p tmg-bench --release --bin reproduce -- bench           # writes BENCH_pr9.json
//! cargo run -p tmg-bench --release --bin reproduce -- --quick         # CI smoke run
//! ```
//!
//! `bench` records the before/after perf baseline and writes
//! `BENCH_pr9.json` (path overridable with the `TMG_BENCH_OUT` environment
//! variable).  `sweep` prints the cached incremental Figure-2/3 tradeoff
//! sweep as machine-readable JSON (written by hand; the vendored serde is
//! derive-markers only); `TMG_TARGET_BLOCKS` sizes the generated function
//! and `--stats` appends the artifact-store counter snapshot.
//!
//! `serve` starts the persistent `tmg-service/v1` analysis server with the
//! on-disk artifact cache rooted at `TMG_CACHE_DIR` (default `.tmg-cache`)
//! on stdin/stdout, or — with `--tcp <addr>` — on a TCP listener accepting
//! many concurrent pipelined connections.  Startup always runs the crash
//! recovery scan (quarantining unverifiable frames, reclaiming orphaned
//! `.tmp` files); `TMG_FAULT_PLAN` (e.g. `torn_write:3,crash_after_publish:1`)
//! arms deterministic I/O fault injection, and `TMG_TRACE=1` arms
//! per-request span recording (making the `profile` op live), with
//! `TMG_TRACE_SLOW_MS` restricting span retention to slow requests.  `serve --smoke` runs a scripted
//! cold/warm two-session batch, then spawns a *second OS process* over the
//! same cache directory and fails on any bound mismatch or warm-run
//! recomputation in either process; under `TMG_FAULT_PLAN` it additionally
//! asserts that the faulted sessions answer bit-identically to a fault-free
//! reference and that recovery quarantines what the faults damaged.  `loadtest` drives
//! thousands of mixed requests (duplicate-heavy, cache-hostile,
//! deadline-violating) over real sockets — `--requests N` / `--workers N`
//! override the mix size and the scheduler pool — and then proves load
//! shedding on a zero-capacity queue.

use std::sync::Arc;
use tmg_bench::{
    case_study, figure2_3, loadtest, multiquery_crosscheck, perf_report, shard_crosscheck,
    sweep_crosscheck, table1, table1_paper, table2, testgen_experiment, LoadtestConfig,
};
use tmg_core::pipeline::ArtifactStore;
use tmg_service::{json, FaultPlan, PersistentStore, PersistentStoreConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `profile` and `chaos` own `--quick` as their own short modes, so they
    // must be routed before the CI smoke shortcut.
    if args.iter().any(|a| a == "profile") {
        run_profile(&args);
        return;
    }
    if args.iter().any(|a| a == "chaos") {
        run_chaos(&args);
        return;
    }
    if args.iter().any(|a| a == "--quick") {
        run_quick();
        return;
    }
    if args.iter().any(|a| a == "serve") {
        run_serve(&args);
        return;
    }
    if args.iter().any(|a| a == "loadtest") {
        run_loadtest(&args);
        return;
    }
    let with_stats = args.iter().any(|a| a == "--stats");
    let experiments: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let wanted: Vec<String> = if experiments.is_empty() || experiments.iter().any(|a| a == "all") {
        vec![
            "table1".into(),
            "figure2".into(),
            "figure3".into(),
            "table2".into(),
            "case-study".into(),
            "testgen".into(),
        ]
    } else {
        experiments
    };
    for experiment in wanted {
        match experiment.as_str() {
            "table1" => print_table1(),
            "figure2" => print_figure2_3(true),
            "figure3" => print_figure2_3(false),
            "table2" => print_table2(),
            "case-study" | "case_study" => print_case_study(),
            "testgen" => print_testgen(),
            "sweep" => print_sweep_json(with_stats),
            "bench" => run_bench(),
            other => eprintln!("unknown experiment `{other}` (expected table1, figure2, figure3, table2, case-study, testgen, sweep, serve, loadtest, chaos, profile, bench, all)"),
        }
    }
}

/// Starts the analysis server (stdin or TCP), or runs the scripted smoke
/// batch.  Startup arms `TMG_FAULT_PLAN` (if set) and always runs the
/// crash recovery scan before accepting requests.
fn run_serve(args: &[String]) {
    if args.iter().any(|a| a == "--seed-child") {
        run_seed_child();
        return;
    }
    if args.iter().any(|a| a == "--smoke-child") {
        run_smoke_child();
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        run_serve_smoke();
        return;
    }
    let tcp_addr = arg_value(args, "--tcp");
    let root = std::env::var("TMG_CACHE_DIR").unwrap_or_else(|_| ".tmg-cache".to_owned());
    // TMG_TRACE=1 arms per-request span recording, making the `profile`
    // op live; TMG_TRACE_SLOW_MS bounds retention to slow requests.
    let tracing = std::env::var("TMG_TRACE").is_ok_and(|v| v == "1");
    let slow_ms = std::env::var("TMG_TRACE_SLOW_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    if tracing {
        tmg_obs::set_enabled(true);
        eprintln!("span recording enabled (slow-request threshold: {slow_ms} ms)");
    }
    let store = Arc::new(
        PersistentStore::with_config(
            PersistentStoreConfig::new(&root).with_fault_plan(FaultPlan::from_env()),
        )
        .expect("open artifact cache"),
    );
    let recovery = store.recovery_scan();
    eprintln!(
        "recovery scan: {} frames verified, {} quarantined, {} orphaned .tmp reclaimed",
        recovery.scanned, recovery.quarantined, recovery.reclaimed_tmp
    );
    let summary = match tcp_addr {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).expect("bind TCP listener");
            let local = listener.local_addr().expect("local addr");
            eprintln!(
                "tmg-service/v1 serving on tcp {local} (artifact cache: {root}); ops: analyse, sweep, stats, profile, shutdown"
            );
            // `--announce <file>` publishes the bound address (atomically,
            // via rename) so a parent that bound port 0 can find us — the
            // chaos harness restarts servers on fresh ports this way.
            if let Some(path) = arg_value(args, "--announce") {
                let tmp = format!("{path}.tmp");
                std::fs::write(&tmp, local.to_string()).expect("write announce file");
                std::fs::rename(&tmp, &path).expect("publish announce file");
            }
            Server::new(store)
                .with_slow_threshold_ms(slow_ms)
                .with_wire_faults(FaultPlan::from_env())
                .serve_tcp(listener)
                .expect("serve_tcp")
        }
        None => {
            eprintln!(
                "tmg-service/v1 serving on stdin/stdout (artifact cache: {root}); ops: analyse, sweep, stats, profile, shutdown"
            );
            let stdin = std::io::stdin();
            Server::new(store)
                .with_slow_threshold_ms(slow_ms)
                .serve(stdin.lock(), std::io::stdout())
                .expect("serve")
        }
    };
    eprintln!(
        "served {} requests ({} responses, {} deduplicated, {} shed [{} quota, {} cost], {} expired, {} disconnected, clean shutdown: {})",
        summary.requests,
        summary.responses,
        summary.deduplicated,
        summary.shed,
        summary.quota_shed,
        summary.cost_shed,
        summary.expired,
        summary.disconnected,
        summary.clean_shutdown
    );
}

/// `reproduce -- chaos [--quick]`: the end-to-end resilience soak — the
/// loadtest mix through reconnecting `tmg-client`s against a real server
/// process that gets `kill -9`ed and restarted mid-soak with every wire
/// fault kind armed.  Every assertion lives in [`tmg_bench::chaos`]; this
/// just picks the config and prints the report.
fn run_chaos(args: &[String]) {
    let config = if args.iter().any(|a| a == "--quick") {
        tmg_bench::ChaosConfig::quick()
    } else {
        tmg_bench::ChaosConfig::full()
    };
    println!(
        "chaos soak: {} slots per phase over {} client connections, {} kill/restart cycle(s), wire plan {}",
        config.requests,
        config.connections,
        config.kills,
        tmg_bench::chaos::WIRE_PLAN
    );
    let report = tmg_bench::chaos(&config);
    println!(
        "answered {}/{}: {} ok, {} cancelled (deadline slots), {} soak answers verified bit-identical to the fault-free reference",
        report.ok + report.cancelled,
        report.requests,
        report.ok,
        report.cancelled,
        report.verified_identical
    );
    for (k, recovery) in report.recovery.iter().enumerate() {
        println!(
            "kill {}: recovered in {:.1} ms (kill -> answered probe)",
            k + 1,
            recovery.as_secs_f64() * 1e3
        );
    }
    let wire: Vec<String> = report
        .wire_faults
        .iter()
        .map(|(kind, fired)| format!("{kind} x{fired}"))
        .collect();
    println!(
        "wire faults fired on the final server: {} ({} total); restart computes: {} (fully warm)",
        wire.join(", "),
        report.wire_faults_fired(),
        report.restart_computes
    );
    let c = &report.client;
    println!(
        "client absorbed: {} retries, {} reconnects, {} hedges, {} torn frames, {} duplicates dropped, {} overloaded waits over {} requests",
        c.retries, c.connects, c.hedges, c.torn_frames, c.duplicates_dropped, c.overloaded_retries, c.requests
    );
    println!(
        "chaos soak: zero wrong answers, {} kill(s) survived, wall {:.1} ms — ok",
        report.kills,
        report.wall.as_secs_f64() * 1e3
    );
}

/// The value following `flag` in `args`, if present.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// Drives the mixed socket loadtest (see `tmg_bench::loadtest`): every
/// request must come back with `ok` or a typed error, identical sources
/// must bound identically, and a zero-capacity queue must shed instead of
/// queueing without bound.
fn run_loadtest(args: &[String]) {
    let mut config = LoadtestConfig::default();
    if let Some(n) = arg_value(args, "--requests").and_then(|v| v.parse().ok()) {
        config.requests = n;
    }
    if let Some(n) = arg_value(args, "--workers").and_then(|v| v.parse().ok()) {
        config.workers = n;
    }
    println!(
        "loadtest: {} mixed requests over TCP, {} connections, {} workers, queue capacity {}",
        config.requests, config.connections, config.workers, config.queue_capacity
    );
    let report = loadtest(&config);
    println!(
        "answered {}/{}: {} ok, {} cancelled (deadline), {} overloaded, {} faults",
        report.answered(),
        report.requests,
        report.ok,
        report.cancelled,
        report.overloaded,
        report.faults
    );
    println!(
        "wall {:.1} ms, throughput {:.0} req/s, server-side analyse p99 {:.3} ms, {} deduplicated",
        report.wall.as_secs_f64() * 1e3,
        report.throughput_rps,
        report.p99_analyse_ms,
        report.summary.deduplicated
    );
    assert_eq!(report.faults, 0, "well-formed requests must never fault");
    assert!(
        report.cancelled >= 1,
        "the mix must exercise deadline violations"
    );
    let shed = tmg_bench::saturate(60);
    println!(
        "saturation: {} jobs shed with typed overloaded + retry_after_ms on a zero-capacity queue — ok",
        shed.summary.shed
    );
}

/// The CI smoke: a cold session populates a scratch cache, a *fresh* server
/// session over the same directory must answer the identical bound from
/// disk with zero stage recomputation.
///
/// Under `TMG_FAULT_PLAN` the smoke additionally runs a fault-free
/// reference first and asserts the faulted sessions answer bit-identically
/// — injected faults may only cost recomputation, never change an answer.
///
/// # Panics
///
/// Panics (failing CI) on any bound mismatch, on a warm-run recomputation,
/// or on a malformed response.
fn run_serve_smoke() {
    use std::io::Cursor;
    let root = std::env::temp_dir().join(format!("tmg-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let source = tmg_minic::pretty::function_to_string(&tmg_codegen::wiper_function());
    let bound = tmg_bench::wiper_case_bound();
    let analyse = format!(
        "{{\"id\": ID, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": {bound}}}",
        json::escape(&source)
    );

    let session = |script: String, plan: FaultPlan| -> (Vec<json::Value>, u64) {
        let store = Arc::new(
            PersistentStore::with_config(PersistentStoreConfig::new(&root).with_fault_plan(plan))
                .expect("open cache"),
        );
        let mut out = Vec::new();
        Server::new(store.clone())
            .serve(Cursor::new(script), &mut out)
            .expect("serve");
        let mut responses: Vec<json::Value> = String::from_utf8(out)
            .expect("utf-8 responses")
            .lines()
            .map(|line| json::parse(line).expect("response parses"))
            .collect();
        responses.sort_by_key(|v| v.get("id").and_then(json::Value::as_u64).unwrap_or(0));
        (responses, store.fault_shots_fired())
    };
    let reports_of = |response: &json::Value| -> json::Value {
        assert_eq!(
            response.get("ok").and_then(json::Value::as_bool),
            Some(true),
            "analyse failed: {response:?}"
        );
        response.get("reports").expect("reports").clone()
    };

    // Session 1 (cold): two identical analyses (the second exercises the
    // in-process cache), then the counters.
    let cold_script = format!(
        "{}\n{}\n{{\"id\": 3, \"op\": \"stats\"}}\n{{\"id\": 4, \"op\": \"shutdown\"}}\n",
        analyse.replace("ID", "1"),
        analyse.replace("ID", "2")
    );
    let (cold, _) = session(cold_script.clone(), FaultPlan::none());
    let cold_reports = reports_of(&cold[0]);
    assert_eq!(
        cold_reports,
        reports_of(&cold[1]),
        "repeated analyse in one session must answer identically"
    );

    // Session 2 (warm, fresh process image): same request, new store.
    let warm_script = format!(
        "{}\n{{\"id\": 2, \"op\": \"stats\"}}\n{{\"id\": 3, \"op\": \"shutdown\"}}\n",
        analyse.replace("ID", "1")
    );
    let (warm, _) = session(warm_script.clone(), FaultPlan::none());
    let warm_reports = reports_of(&warm[0]);
    assert_eq!(
        cold_reports, warm_reports,
        "warm session must serve the bit-identical bound from disk"
    );
    let stats = warm[1].get("stats").expect("stats payload");
    // Schema check: the snapshot must carry the unified-registry schema id
    // and the groups a dashboard would subscribe to.
    assert_eq!(
        stats.get("schema").and_then(json::Value::as_str),
        Some("tmg-obs-stats/v1"),
        "stats must carry the unified snapshot schema: {stats:?}"
    );
    for group in ["memory", "checker", "module", "segments", "latency", "disk"] {
        assert!(
            stats.get(group).is_some(),
            "stats is missing its `{group}` group: {stats:?}"
        );
    }
    let computes = stats
        .get("computes")
        .and_then(json::Value::as_u64)
        .expect("computes counter");
    assert_eq!(
        computes, 0,
        "warm session must recompute nothing: {stats:?}"
    );
    let bound_hits = stats
        .get("disk")
        .and_then(|d| d.get("bound"))
        .and_then(|b| b.get("hits"))
        .and_then(json::Value::as_u64)
        .expect("disk bound hits");
    assert!(bound_hits >= 1, "bound must be served from disk: {stats:?}");

    let wcet = warm_reports.as_array().expect("array")[0]
        .get("wcet_bound")
        .and_then(json::Value::as_u64)
        .expect("wcet_bound");
    println!(
        "serve smoke: cold and warm sessions agree on wcet_bound = {wcet} cycles; warm run: 0 recomputations, {bound_hits} disk bound hit(s) — ok"
    );

    // Multi-process phase: a true second OS process (this binary, re-spawned
    // with `serve --smoke-child`) opens the same cache directory and must
    // serve the bit-identical bound fully warm.  The child asserts zero
    // recomputation in-process; the parent verifies the answers match.
    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(exe)
        .args(["serve", "--smoke-child"])
        .env("TMG_CACHE_DIR", &root)
        .env_remove("TMG_FAULT_PLAN")
        .output()
        .expect("spawn smoke child");
    assert!(
        child.status.success(),
        "the second-process smoke failed:\n{}{}",
        String::from_utf8_lossy(&child.stdout),
        String::from_utf8_lossy(&child.stderr)
    );
    let child_out = String::from_utf8(child.stdout).expect("utf-8 child output");
    let child_analyse = child_out
        .lines()
        .filter_map(|line| json::parse(line).ok())
        .find(|v| v.get("id").and_then(json::Value::as_u64) == Some(1))
        .expect("child analyse response");
    assert_eq!(
        reports_of(&child_analyse),
        cold_reports,
        "the second process must answer bit-identically from the shared cache"
    );
    println!(
        "multi-process smoke: second process answered bit-identically from the shared cache with 0 recomputations — ok"
    );

    // Fault phase (only when `TMG_FAULT_PLAN` is armed): rerun the cold
    // session against a wiped cache with faults injected.  Faults may only
    // cost recomputation — every response must be bit-identical to the
    // fault-free reference, and a fresh process's recovery scan plus warm
    // rerun must still agree.
    if std::env::var("TMG_FAULT_PLAN").is_ok_and(|v| !v.trim().is_empty()) {
        let _ = std::fs::remove_dir_all(&root);
        let plan = FaultPlan::from_env();
        let (faulted, shots) = session(cold_script, plan);
        assert!(shots > 0, "the armed fault plan never fired");
        assert_eq!(
            reports_of(&faulted[0]),
            cold_reports,
            "injected faults must never change an answer"
        );
        let fresh = PersistentStore::open(&root).expect("reopen cache");
        let recovery = fresh.recovery_scan();
        drop(fresh);
        let (healed, _) = session(warm_script, FaultPlan::none());
        assert_eq!(
            reports_of(&healed[0]),
            cold_reports,
            "the post-recovery rerun must answer identically"
        );
        println!(
            "fault smoke: {shots} injected fault(s) fired; recovery scan quarantined {} frame(s), reclaimed {} orphan(s); all responses bit-identical to the fault-free reference — ok",
            recovery.quarantined, recovery.reclaimed_tmp
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The *first* process of a scripted multi-process run: populates the cache
/// at `TMG_CACHE_DIR` with the smoke's analyse request (cold) and exits
/// cleanly, sealing its segment and publishing the index snapshot.  CI
/// pairs this with a follow-up `serve --smoke-child` process to prove the
/// shared-directory warm start across real OS processes.
fn run_seed_child() {
    use std::io::Cursor;
    let root = std::env::var("TMG_CACHE_DIR").unwrap_or_else(|_| ".tmg-cache".to_owned());
    let source = tmg_minic::pretty::function_to_string(&tmg_codegen::wiper_function());
    let bound = tmg_bench::wiper_case_bound();
    let script = format!(
        "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": {bound}}}\n{{\"id\": 2, \"op\": \"shutdown\"}}\n",
        json::escape(&source)
    );
    let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
    store.recovery_scan();
    let mut out = Vec::new();
    Server::new(store)
        .serve(Cursor::new(script), &mut out)
        .expect("serve");
    let text = String::from_utf8(out).expect("utf-8 responses");
    let ok = text
        .lines()
        .filter_map(|line| json::parse(line).ok())
        .find(|v| v.get("id").and_then(json::Value::as_u64) == Some(1))
        .and_then(|v| v.get("ok").and_then(json::Value::as_bool))
        .unwrap_or(false);
    assert!(ok, "the seeding analyse must succeed:\n{text}");
    eprintln!("seed child: populated {root} and exited cleanly");
}

/// The second OS process of the multi-process smoke, spawned by
/// [`run_serve_smoke`] as `serve --smoke-child` with `TMG_CACHE_DIR`
/// pointing at the parent's populated cache.  Opens the shared directory
/// with a brand-new store, serves the same analyse request, asserts zero
/// recomputation *in this process*, and prints the raw response lines for
/// the parent to verify bit-identical.
///
/// # Panics
///
/// Panics (failing the parent smoke) on any recomputation or missing disk
/// hit — a cold child means the shared warm start is broken.
fn run_smoke_child() {
    use std::io::Cursor;
    let root = std::env::var("TMG_CACHE_DIR").expect("TMG_CACHE_DIR set by the parent smoke");
    let source = tmg_minic::pretty::function_to_string(&tmg_codegen::wiper_function());
    let bound = tmg_bench::wiper_case_bound();
    let script = format!(
        "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": {bound}}}\n{{\"id\": 2, \"op\": \"stats\"}}\n{{\"id\": 3, \"op\": \"shutdown\"}}\n",
        json::escape(&source)
    );
    let store = Arc::new(PersistentStore::open(&root).expect("open shared cache"));
    let mut out = Vec::new();
    Server::new(store)
        .serve(Cursor::new(script), &mut out)
        .expect("serve");
    let text = String::from_utf8(out).expect("utf-8 responses");
    let stats = text
        .lines()
        .filter_map(|line| json::parse(line).ok())
        .find(|v| v.get("id").and_then(json::Value::as_u64) == Some(2))
        .and_then(|v| v.get("stats").cloned())
        .expect("stats payload");
    let computes = stats
        .get("computes")
        .and_then(json::Value::as_u64)
        .expect("computes counter");
    assert_eq!(
        computes, 0,
        "the second process must start fully warm: {stats:?}"
    );
    let bound_hits = stats
        .get("disk")
        .and_then(|d| d.get("bound"))
        .and_then(|b| b.get("hits"))
        .and_then(json::Value::as_u64)
        .expect("disk bound hits");
    assert!(
        bound_hits >= 1,
        "the second process must hit the shared segment log: {stats:?}"
    );
    print!("{text}");
}

/// `reproduce -- profile [<workload>] [--quick]`: runs one *cold* request
/// through the real server with span tracing enabled and dumps every
/// recorded span in Chrome trace-event format (load the output in
/// `chrome://tracing` or Perfetto).  Workloads: `wiper` (default; one
/// `analyse` of the case-study function) and `module` (an
/// `analyse_module` of a generated 8-function module).  With `--quick`
/// the dump is validated instead of printed: the JSON must parse, the
/// span tree must be non-empty, every pipeline-stage span must nest
/// under the request root, and at least 95% of the request's wall time
/// must be attributed to named child spans.
fn run_profile(args: &[String]) {
    use std::io::Cursor;
    let quick = args.iter().any(|a| a == "--quick");
    let workload = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find(|a| *a != "profile")
        .map_or("wiper", String::as_str);
    let root = std::env::temp_dir().join(format!("tmg-profile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let (script, root_span_name) = match workload {
        "wiper" => {
            let source = tmg_minic::pretty::function_to_string(&tmg_codegen::wiper_function());
            let bound = tmg_bench::wiper_case_bound();
            (
                format!(
                    "{{\"id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": {bound}, \"trace_id\": 1}}\n\
                     {{\"id\": 2, \"op\": \"shutdown\", \"trace_id\": 2}}\n",
                    json::escape(&source)
                ),
                "request:analyse",
            )
        }
        "module" => {
            let module = tmg_codegen::generate_module(&tmg_codegen::ModuleGenConfig {
                seed: 0xC1,
                functions: 8,
                max_callees: 2,
                body_stmts: 2,
            });
            let source = tmg_minic::pretty::program_to_string(&module.program);
            (
                format!(
                    "{{\"id\": 1, \"op\": \"analyse_module\", \"source\": \"{}\", \"path_bound\": 4, \"trace_id\": 1}}\n\
                     {{\"id\": 2, \"op\": \"shutdown\", \"trace_id\": 2}}\n",
                    json::escape(&source)
                ),
                "request:analyse_module",
            )
        }
        other => {
            eprintln!("unknown profile workload `{other}` (expected wiper or module)");
            std::process::exit(2);
        }
    };

    let store = Arc::new(
        PersistentStore::with_config(PersistentStoreConfig::new(&root)).expect("open cache"),
    );
    tmg_obs::set_enabled(true);
    let mut out = Vec::new();
    Server::new(store)
        .serve(Cursor::new(script), &mut out)
        .expect("serve");
    tmg_obs::set_enabled(false);
    let spans = tmg_obs::drain_all();
    let _ = std::fs::remove_dir_all(&root);
    assert!(!spans.is_empty(), "tracing recorded no spans");
    let response = String::from_utf8(out).expect("utf-8 responses");
    assert!(
        response.lines().next().is_some_and(|line| {
            json::parse(line)
                .ok()
                .and_then(|v| v.get("ok").and_then(json::Value::as_bool))
                == Some(true)
        }),
        "the profiled request failed:\n{response}"
    );
    let trace = chrome_trace_json(&spans);

    if !quick {
        println!("{trace}");
        return;
    }

    // --quick: validate the dump instead of printing it.
    let parsed = json::parse(&trace).expect("the Chrome trace dump must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len(), "one event per span");
    assert!(!events.is_empty(), "the span tree must be non-empty");

    let by_id: std::collections::HashMap<u64, &tmg_obs::SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    let span_root = spans
        .iter()
        .find(|s| s.name == root_span_name)
        .expect("the request root span was recorded");
    // Every pipeline-stage span must reach the request root through its
    // parent links — a broken link means the profile view would orphan
    // the very spans it exists to explain.
    let mut stage_spans = 0usize;
    for span in spans.iter().filter(|s| s.name.starts_with("stage:")) {
        stage_spans += 1;
        let mut cursor = span.parent;
        let mut hops = 0;
        while cursor != span_root.id {
            let parent = by_id
                .get(&cursor)
                .unwrap_or_else(|| panic!("stage span {} has a dangling parent chain", span.name));
            cursor = parent.parent;
            hops += 1;
            assert!(hops <= spans.len(), "parent cycle at {}", span.name);
        }
    }
    assert!(stage_spans > 0, "a cold request must record stage spans");

    // Attribution: the request's wall time (earliest child start — the
    // admission span begins at accept, before the root — to root end)
    // must be >= 95% covered by the root's direct children.
    let children: Vec<&tmg_obs::SpanRecord> =
        spans.iter().filter(|s| s.parent == span_root.id).collect();
    assert!(!children.is_empty(), "the request root must have children");
    let root_end = span_root.start_us + span_root.dur_us;
    let first_start = children
        .iter()
        .map(|s| s.start_us)
        .min()
        .expect("non-empty")
        .min(span_root.start_us);
    let wall = root_end.saturating_sub(first_start).max(1);
    let attributed: u64 = children.iter().map(|s| s.dur_us).sum();
    let coverage = attributed as f64 / wall as f64;
    assert!(
        coverage >= 0.95,
        "only {:.1}% of the request's wall time is attributed to named child spans",
        coverage * 100.0
    );
    println!(
        "profile smoke ({workload}): {} spans, {stage_spans} stage span(s) nested under {root_span_name}, {:.1}% of request wall time attributed to named child spans — ok",
        spans.len(),
        coverage * 100.0
    );
}

/// Renders spans as Chrome trace-event JSON (`ph: "X"` complete events;
/// timestamps and durations are already in microseconds, which is exactly
/// the unit the trace-event format wants).
fn chrome_trace_json(spans: &[tmg_obs::SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{ \"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 < spans.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "  {{ \"name\": \"{}\", \"cat\": \"tmg\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{ \"span_id\": {}, \"parent\": {} }} }}{}",
            s.name, s.start_us, s.dur_us, s.trace, s.id, s.parent, comma
        );
    }
    out.push_str("] }");
    out
}

/// Fast smoke run for CI: the exact Table-1 reproduction, one full (small)
/// pipeline, and the batched-vs-single-query equivalence cross-check — no
/// perf measurement.
fn run_quick() {
    print_table1();
    assert_eq!(table1(), table1_paper(), "Table 1 must reproduce exactly");
    let r = case_study();
    assert!(
        r.wcet_bound >= r.exhaustive_max,
        "case-study bound must be sound"
    );
    println!(
        "quick: case study WCET bound {} cycles >= exhaustive {} cycles (pessimism {:.3}) — ok",
        r.wcet_bound, r.exhaustive_max, r.pessimism
    );
    let checked = multiquery_crosscheck();
    println!("quick: batched vs single-query verdicts identical on {checked} queries — ok");
    let sharded = shard_crosscheck();
    println!(
        "quick: 1-thread and default-thread shard resolutions identical on {sharded} queries — ok"
    );
    let points = sweep_crosscheck();
    println!(
        "quick: incremental sweep bit-identical to the per-bound reference on {points} points — ok"
    );
    let (cone, total) = differential_smoke();
    println!(
        "quick: differential re-analysis recomputed only the {cone}-function dirty cone of a \
         {total}-function module, unedited root bounds byte-identical — ok"
    );
}

/// Differential dirty-cone smoke: edit one function of a generated module
/// and counter-assert that the re-analysis recomputes exactly the reverse
/// call-graph cone — one re-lower (the edited function), one re-measure per
/// cone member, nothing at all outside — while every unedited root bound
/// stays byte-identical.  Returns `(cone size, module size)`.
fn differential_smoke() -> (usize, usize) {
    use tmg_cfg::CallGraph;
    use tmg_codegen::{generate_module, ModuleGenConfig};
    use tmg_core::{ModuleAnalysis, Stage};

    let module = generate_module(&ModuleGenConfig {
        seed: 0xC1,
        functions: 8,
        max_callees: 2,
        body_stmts: 2,
    });
    let graph = CallGraph::build(&module.program);
    // Edit the function with the largest *proper* dirty cone that still
    // leaves at least one root untouched, so both halves of the assertion
    // (recompute inside, byte-identity outside) are non-vacuous.
    let roots = graph.roots();
    let (edit, cone) = (0..graph.len())
        .map(|i| (i, graph.dirty_cone(&[i])))
        .filter(|(_, cone)| roots.iter().any(|r| !cone.contains(r)))
        .max_by_key(|(_, cone)| cone.len())
        .expect("the seeded module must leave a root outside some cone");

    let store = Arc::new(ArtifactStore::new());
    let analysis = ModuleAnalysis::new(4).with_store(store.clone());
    let before = analysis
        .analyse_module(&module.program)
        .expect("cold module analysis");
    let cold = store.store_stats();
    let after = analysis
        .analyse_module(&module.edited(edit).program)
        .expect("differential module analysis");
    let warm = store.store_stats();

    let cone_names: Vec<&str> = cone.iter().map(|&i| graph.name(i)).collect();
    assert_eq!(
        after.recomputed(),
        cone_names,
        "recomputation must be confined to the dirty cone"
    );
    assert_eq!(after.summaries_reused, graph.len() - cone.len());
    let delta = |stage: Stage| warm.stage(stage).misses - cold.stage(stage).misses;
    assert_eq!(
        delta(Stage::Lower),
        1,
        "only the edited function may re-enter the early pipeline stages"
    );
    assert_eq!(
        delta(Stage::Measure),
        cone.len() as u64,
        "each cone member re-measures under its re-priced cost model, nobody else"
    );
    for root in &before.roots {
        if !cone_names.contains(&root.function.as_str()) {
            assert_eq!(
                after.bound_of(&root.function),
                Some(root.wcet_bound),
                "unedited root {} must keep its bound bit-for-bit",
                root.function
            );
        }
    }
    (cone.len(), graph.len())
}

/// Prints the Figure-2/3 tradeoff sweep as hand-written JSON, so the cached
/// incremental sweep is scriptable (`reproduce -- sweep | jq ...`).  With
/// `--stats` the sweep's lowering runs through an [`ArtifactStore`] and the
/// store's counter snapshot is appended, so scripts can observe the cache
/// behaviour behind the curve; when `TMG_CACHE_DIR` is also set, the
/// persistent tier at that root is opened and its full counter snapshot
/// (including the segment-tier section) is appended under `"tier"`.
fn print_sweep_json(with_stats: bool) {
    let target_blocks = std::env::var("TMG_TARGET_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(850);
    let (stats, sweep, store) = if with_stats {
        let store = ArtifactStore::new();
        let (stats, sweep) = tmg_bench::figure2_3_via_store(target_blocks, &store);
        (stats, sweep, Some(store))
    } else {
        let (stats, sweep) = figure2_3(target_blocks);
        (stats, sweep, None)
    };
    println!("{{");
    println!("  \"schema\": \"tmg-tradeoff-sweep/v1\",");
    println!(
        "  \"function\": {{ \"blocks\": {}, \"branches\": {}, \"lines\": {} }},",
        stats.blocks, stats.branches, stats.lines
    );
    if let Some(store) = &store {
        println!("  \"store\": {},", store.store_stats().to_json());
        println!(
            "  \"module\": {},",
            tmg_core::module::metrics::snapshot().to_json()
        );
    }
    if with_stats {
        if let Ok(root) = std::env::var("TMG_CACHE_DIR") {
            let persistent = PersistentStore::open(&root).expect("open artifact cache");
            println!("  \"tier\": {},", persistent.stats().to_json());
        }
    }
    println!("  \"points\": [");
    for (i, p) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        println!(
            "    {{ \"path_bound\": {}, \"instrumentation_points\": {}, \"measurements\": {}, \"segments\": {} }}{}",
            p.path_bound, p.instrumentation_points, p.measurements, p.segments, comma
        );
    }
    println!("  ]");
    println!("}}");
}

/// Full perf baseline: times the optimised hot paths against their
/// references (recorded floors where the measured reference was dropped),
/// checks result equality, writes `BENCH_pr9.json`.
fn run_bench() {
    let report = perf_report();
    println!("== Perf baseline (before = pre-optimisation, after = optimised) ==");
    let mut rows = vec![&report.table2, &report.pipeline];
    rows.extend(report.testgen.iter());
    for c in rows {
        println!(
            "{:<26} before {:>9.2} ms   after {:>9.2} ms   speedup {:>6.2}x   identical: {}",
            c.name,
            c.before.as_secs_f64() * 1e3,
            c.after.as_secs_f64() * 1e3,
            c.speedup(),
            c.identical_results
        );
    }
    let lt = &report.service_loadtest;
    println!(
        "service_loadtest: {} requests   1-worker {:.2} ms   pool {:.2} ms   {:.0} req/s   p99 {:.3} ms   identical across workers: {}",
        lt.requests,
        lt.one_worker_wall.as_secs_f64() * 1e3,
        lt.wall.as_secs_f64() * 1e3,
        lt.throughput_rps,
        lt.p99_analyse_ms,
        lt.identical_across_workers
    );
    let rec = &report.service_recovery;
    println!(
        "service_recovery_scan: {} frames in {:.2} ms   quarantined {}   healthy: {}",
        rec.frames,
        rec.wall.as_secs_f64() * 1e3,
        rec.quarantined,
        rec.healthy
    );
    let seg = &report.segment_tier;
    println!(
        "segment_tier: compaction reclaimed {} -> {} dead bytes ({} frames copied) in {:.2} ms   group commit: {} batch(es), {} ms window   identical: {}",
        seg.dead_bytes_before,
        seg.dead_bytes_after,
        seg.compacted_frames,
        seg.wall.as_secs_f64() * 1e3,
        seg.group_commit_batches,
        seg.group_commit_window_ms,
        seg.identical
    );
    let soak = &report.chaos_soak;
    println!(
        "chaos_soak: {} requests   {} kill(s)   max recovery {:.1} ms   {} wire faults fired   restart computes {}   {} answers verified identical",
        soak.requests,
        soak.kills,
        soak.max_recovery.as_secs_f64() * 1e3,
        soak.wire_faults_fired,
        soak.restart_computes,
        soak.verified_identical
    );
    let cro = &report.client_retry_overhead;
    println!(
        "client_retry_overhead: {} warm round trips   raw {:.2} ms   tmg-client {:.2} ms   overhead {:.2}x   identical: {}",
        cro.requests,
        cro.raw_wall.as_secs_f64() * 1e3,
        cro.client_wall.as_secs_f64() * 1e3,
        cro.overhead(),
        cro.identical
    );
    println!(
        "hot-path speedup (geomean): {:.2}x   all results identical: {}",
        report.hot_path_speedup(),
        report.all_results_identical()
    );
    assert!(
        report.all_results_identical(),
        "optimised implementations must not change any result"
    );
    assert!(
        report.table1_matches_paper,
        "Table 1 must reproduce exactly"
    );
    let burst = report
        .testgen
        .iter()
        .find(|c| c.name == "service_concurrent_burst")
        .expect("burst workload present");
    // The burst win is structural (one computation answers the whole
    // burst), but on a busy single-core host the measured ratio jitters
    // around 1.0 — so warn inside the noise band and only fail on a
    // clear regression.
    assert!(
        burst.speedup() >= 0.85,
        "service_concurrent_burst fell clearly below its PR 5 floor: {:.3}x",
        burst.speedup()
    );
    if burst.speedup() < 1.0 {
        println!(
            "warning: service_concurrent_burst at {:.3}x (within the +/-15% noise band of its floor)",
            burst.speedup()
        );
    }
    let out = std::env::var("TMG_BENCH_OUT")
        .unwrap_or_else(|_| format!("BENCH_{}.json", tmg_bench::perf::PR_LABEL));
    std::fs::write(&out, report.to_json()).expect("write bench json");
    println!("wrote {out}");
}

fn print_table1() {
    println!("== Table 1: measurement effort vs path bound (Figure-1 example) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "bound b", "ip (ours)", "ip (paper)", "m (ours)", "m (paper)"
    );
    for ((b, ip, m), (_, ip_p, m_p)) in table1().into_iter().zip(table1_paper()) {
        println!("{b:>8} {ip:>14} {ip_p:>14} {m:>14} {m_p:>14}");
    }
    println!();
}

fn print_figure2_3(figure2: bool) {
    let target_blocks = std::env::var("TMG_TARGET_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(850);
    let (stats, sweep) = figure2_3(target_blocks);
    if figure2 {
        println!("== Figure 2: instrumentation points over path bound b ==");
        println!(
            "generated function: {} blocks, {} conditional branches, {} lines (paper: ~857 / ~300 / ~5000)",
            stats.blocks, stats.branches, stats.lines
        );
        println!("{:>12} {:>10} {:>12}", "bound b", "ip", "segments");
        for p in &sweep {
            println!(
                "{:>12} {:>10} {:>12}",
                p.path_bound, p.instrumentation_points, p.segments
            );
        }
    } else {
        println!("== Figure 3: measurements m over instrumentation points ip ==");
        println!("{:>10} {:>22}", "ip", "m");
        for p in &sweep {
            println!("{:>10} {:>22}", p.instrumentation_points, p.measurements);
        }
    }
    println!();
}

fn print_table2() {
    println!("== Table 2: impact of model-state optimisations (105-line module) ==");
    println!(
        "{:<28} {:>12} {:>14} {:>8} {:>14} {:>10}",
        "optimisation technique", "time [ms]", "memory [kB]", "steps", "transitions", "state bits"
    );
    for row in table2() {
        println!(
            "{:<28} {:>12.2} {:>14.1} {:>8} {:>14} {:>10}",
            row.label,
            row.duration.as_secs_f64() * 1e3,
            row.memory_bytes as f64 / 1024.0,
            row.steps
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            row.transitions_fired,
            row.state_bits
        );
    }
    println!();
}

fn print_case_study() {
    let r = case_study();
    println!("== Section 4 case study: wiper control ==");
    println!("path bound (one PS per case arm): {}", r.path_bound);
    println!(
        "segments: {}   ip: {}   m: {}",
        r.segments, r.instrumentation_points, r.measurements
    );
    println!(
        "test data: {} heuristic + {} model checker, {} infeasible",
        r.heuristic_covered, r.checker_covered, r.infeasible
    );
    println!(
        "WCET bound: {} cycles   exhaustive end-to-end maximum: {} cycles   pessimism: {:.3} (paper: 274 vs 250 = 1.096)",
        r.wcet_bound, r.exhaustive_max, r.pessimism
    );
    println!();
}

fn print_testgen() {
    let r = testgen_experiment();
    println!("== Hybrid test-data generation (Section 3 claim) ==");
    println!(
        "goals: {}   heuristic: {}   model checker: {}   infeasible: {}   unknown: {}",
        r.goals, r.heuristic_covered, r.checker_covered, r.infeasible, r.unknown
    );
    println!(
        "heuristic coverage of feasible goals: {:.1} % (paper expects > 90 %)",
        r.heuristic_ratio * 100.0
    );
    println!();
}
