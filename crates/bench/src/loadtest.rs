//! Socket loadtest for the fault-tolerant analysis server.
//!
//! [`loadtest`] drives a real [`Server::serve_tcp`] session over loopback
//! TCP from several pipelining client connections, with a deterministic
//! request mix exercising every scheduling path the server has:
//!
//! * **duplicate-heavy** — repeated identical `analyse`/`sweep` requests,
//!   feeding the in-flight dedup and the warm cache tiers;
//! * **cache-hostile** — a distinct generated function per request, so the
//!   store keeps admitting new artifacts and the disk tier keeps writing;
//! * **deadline-violating** — `"deadline_ms": 0` requests, declined with a
//!   typed `cancelled` error before any work is queued.
//!
//! Every request must be answered exactly once, with either `ok: true` or
//! a *typed* error (`cancelled` / `overloaded` / `fault`) — the server's
//! "never a wrong answer, only declined or slow" contract.  Identical
//! sources must report identical bounds whichever worker, connection, or
//! cache tier served them.  Clients window their pipelining so the bounded
//! queue is never overrun in the main run; [`saturate`] then deliberately
//! overruns a zero-capacity queue and asserts that every job is shed with
//! a typed `overloaded` + `retry_after_ms` answer instead of growing the
//! queue without bound.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tmg_service::json::{self, Value};
use tmg_service::{PersistentStore, PersistentStoreConfig, ServeSummary, Server};

/// Requests each client keeps in flight before reading responses back.
/// `connections * WINDOW` must stay below the server queue capacity, so
/// the main run measures throughput, not shedding.
const WINDOW: usize = 16;

/// Shape of one loadtest run.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Bounded queue capacity (see [`tmg_service::DEFAULT_QUEUE_CAPACITY`]).
    pub queue_capacity: usize,
    /// Cache directory; a scratch directory under the system temp dir when
    /// `None`.  Reusing one root across runs measures the warm path.
    pub cache_root: Option<PathBuf>,
}

impl Default for LoadtestConfig {
    fn default() -> LoadtestConfig {
        LoadtestConfig {
            requests: 2000,
            connections: 4,
            workers: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            queue_capacity: tmg_service::DEFAULT_QUEUE_CAPACITY,
            cache_root: None,
        }
    }
}

/// What one loadtest run observed.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Requests sent (excluding the final control `stats`/`shutdown`).
    pub requests: u64,
    /// `ok: true` responses.
    pub ok: u64,
    /// Typed `cancelled` responses (deadline violations).
    pub cancelled: u64,
    /// Typed `overloaded` responses (load shedding).
    pub overloaded: u64,
    /// Typed `fault` responses.
    pub faults: u64,
    /// Wall-clock of the request phase (connect → last response read).
    pub wall: Duration,
    /// Answered requests per second of wall-clock.
    pub throughput_rps: f64,
    /// Server-side end-to-end p99 of `analyse`, from the `stats` snapshot.
    pub p99_analyse_ms: f64,
    /// The server's own session summary.
    pub summary: ServeSummary,
    /// Every job response line (id-tagged), sorted by id — the basis for
    /// the 1-vs-N-worker identity check.
    pub response_lines: Vec<String>,
}

impl LoadtestReport {
    /// Answered-exactly-once, with a typed outcome.
    pub fn answered(&self) -> u64 {
        self.ok + self.cancelled + self.overloaded + self.faults
    }
}

/// One fixed function for the duplicate-heavy share of the mix (shared
/// with the chaos soak, which replays the same mix through `tmg-client`).
pub(crate) const HOT_SOURCE: &str = "void hot(char level __range(0, 5), bool armed) { \
     if (armed) { if (level > 2) { high(); } else { low(); } } else { idle(); } \
     if (level > 2) { if (level < 1) { never(); } } }";

/// The request line (without trailing newline) and its JSON `id` for slot
/// `i` of the deterministic mix.
///
/// Every request pins the *same* `trace_id`: responses echo the trace of
/// whichever duplicate became the dedup leader, so per-slot trace ids
/// would make the answer depend on scheduling.  One shared pin keeps the
/// response lines deterministic for the 1-vs-N-worker identity check
/// (tracing itself stays disabled in the loadtest).
fn request_line(i: usize) -> String {
    let id = i + 1;
    if i % 7 == 3 {
        // Deadline violation: declined at submit with a typed `cancelled`.
        return format!(
            "{{\"id\": {id}, \"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"deadline_ms\": 0}}",
            json::escape(HOT_SOURCE)
        );
    }
    match i % 3 {
        0 => format!(
            "{{\"id\": {id}, \"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
            json::escape(HOT_SOURCE)
        ),
        1 => {
            // Cache-hostile: a distinct function name per slot, so every
            // request admits fresh artifacts into the store.
            let range = 1 + i % 4;
            let pivot = i % 3;
            let source = format!(
                "void cold_{i}(char a __range(0, {range})) {{ if (a > {pivot}) {{ x(); }} else {{ y(); }} }}"
            );
            format!(
                "{{\"id\": {id}, \"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2}}",
                json::escape(&source)
            )
        }
        _ => format!(
            "{{\"id\": {id}, \"trace_id\": 1, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 40}}",
            json::escape(HOT_SOURCE)
        ),
    }
}

/// Strips the `"id": N, ` prefix so responses to identical requests can be
/// compared across runs with different id assignments.
fn body_of(line: &str) -> &str {
    match line.split_once(", ") {
        Some((_, body)) => body,
        None => line,
    }
}

/// Runs the mixed loadtest against a freshly started TCP server and checks
/// the answer-every-request and identical-bounds invariants.
///
/// # Panics
///
/// Panics when any invariant is violated: a request unanswered or answered
/// without a typed outcome, identical requests with different bodies, or a
/// `fault` response to a well-formed request.
pub fn loadtest(config: &LoadtestConfig) -> LoadtestReport {
    let scratch;
    let root: &Path = match &config.cache_root {
        Some(root) => root,
        None => {
            scratch = std::env::temp_dir().join(format!("tmg-loadtest-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&scratch);
            &scratch
        }
    };
    let store = Arc::new(
        PersistentStore::with_config(PersistentStoreConfig::new(root)).expect("open cache"),
    );
    let server = Server::new(store)
        .with_workers(config.workers)
        .with_queue_capacity(config.queue_capacity);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");

    let lines: Vec<String> = (0..config.requests).map(request_line).collect();
    let chunk = lines.len().div_ceil(config.connections.max(1));

    let (summary, stats_line, mut responses, wall) = std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve_tcp(listener).expect("serve_tcp"));
        let started = Instant::now();
        let clients: Vec<_> = lines
            .chunks(chunk.max(1))
            .map(|slice| scope.spawn(move || run_client(addr, slice)))
            .collect();
        let mut responses = Vec::new();
        for client in clients {
            responses.extend(client.join().expect("client thread"));
        }
        let wall = started.elapsed();
        // Control connection: harvest the latency histograms, then end the
        // session (the `stats` barrier also guarantees every job finished).
        let control = run_client(
            addr,
            &[
                "{\"id\": 900000001, \"op\": \"stats\"}".to_owned(),
                "{\"id\": 900000002, \"op\": \"shutdown\"}".to_owned(),
            ],
        );
        let summary = handle.join().expect("server thread");
        (summary, control[0].clone(), responses, wall)
    });
    if config.cache_root.is_none() {
        let _ = std::fs::remove_dir_all(root);
    }

    responses.sort_by_key(|(id, _)| *id);
    let mut report = LoadtestReport {
        requests: config.requests as u64,
        ok: 0,
        cancelled: 0,
        overloaded: 0,
        faults: 0,
        wall,
        throughput_rps: responses.len() as f64 / wall.as_secs_f64().max(1e-9),
        p99_analyse_ms: 0.0,
        summary,
        response_lines: responses.iter().map(|(_, line)| line.clone()).collect(),
    };

    // Every request answered exactly once, with a typed outcome.
    assert_eq!(
        responses.len(),
        config.requests,
        "every request must be answered exactly once"
    );
    let mut by_request: HashMap<&str, &str> = HashMap::new();
    for ((id, line), request) in responses.iter().zip(&lines) {
        let parsed =
            json::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
        assert_eq!(
            parsed.get("id").and_then(Value::as_u64),
            Some(*id),
            "response id echo"
        );
        if parsed.get("ok").and_then(Value::as_bool) == Some(true) {
            report.ok += 1;
        } else {
            let kind = parsed
                .get("error_kind")
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("untyped failure: {line}"));
            match kind {
                "cancelled" => report.cancelled += 1,
                "overloaded" => {
                    assert!(
                        parsed
                            .get("retry_after_ms")
                            .and_then(Value::as_u64)
                            .is_some(),
                        "overloaded without retry hint: {line}"
                    );
                    report.overloaded += 1;
                }
                "fault" => report.faults += 1,
                other => panic!("unknown error_kind {other:?}: {line}"),
            }
        }
        // Identical requests (modulo id) must get identical bodies.
        // `overloaded` declines are exempt: their `retry_after_ms` hint
        // carries deterministic id-seeded jitter, so two shed copies of
        // the same request legitimately differ (by design — it breaks up
        // retry waves).
        if parsed.get("error_kind").and_then(Value::as_str) != Some("overloaded") {
            let request_body = body_of(request);
            let response_body = body_of(line);
            if let Some(previous) = by_request.insert(request_body, response_body) {
                assert_eq!(
                    previous, response_body,
                    "identical requests must be answered identically"
                );
            }
        }
    }

    let stats = json::parse(&stats_line.1).expect("stats response parses");
    report.p99_analyse_ms = stats
        .get("stats")
        .and_then(|s| s.get("latency"))
        .and_then(|l| l.get("analyse"))
        .and_then(|a| a.get("p99_ms"))
        .and_then(Value::as_f64)
        .expect("stats carries the analyse p99");
    report
}

/// Overruns a zero-capacity queue and asserts every job request is shed
/// with a typed `overloaded` answer — bounded memory under saturation by
/// construction, never a silent drop.
pub fn saturate(requests: usize) -> LoadtestReport {
    let config = LoadtestConfig {
        requests,
        connections: 2,
        queue_capacity: 0,
        ..LoadtestConfig::default()
    };
    let report = loadtest(&config);
    assert_eq!(
        report.overloaded + report.cancelled,
        report.requests,
        "a zero-capacity queue must shed every admitted job"
    );
    assert!(report.summary.shed > 0, "shedding must be observed");
    report
}

/// Writes `lines` through one connection in windows of [`WINDOW`], reading
/// each window's responses back before sending the next, and returns
/// `(id, response line)` pairs.
fn run_client(addr: SocketAddr, lines: &[String]) -> Vec<(u64, String)> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut responses = Vec::with_capacity(lines.len());
    for window in lines.chunks(WINDOW) {
        let batch: String = window.iter().map(|l| format!("{l}\n")).collect();
        writer.write_all(batch.as_bytes()).expect("send window");
        for _ in window {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("read response") > 0,
                "connection closed before every response arrived"
            );
            let line = line.trim_end().to_owned();
            let id = json::parse(&line)
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_u64))
                .expect("response carries its request id");
            responses.push((id, line));
        }
    }
    responses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_mixed_loadtest_answers_every_request_with_a_typed_outcome() {
        let report = loadtest(&LoadtestConfig {
            requests: 60,
            connections: 3,
            workers: 2,
            ..LoadtestConfig::default()
        });
        assert_eq!(report.answered(), 60);
        assert_eq!(report.faults, 0, "well-formed requests never fault");
        assert!(
            report.cancelled >= 1,
            "the mix contains deadline violations"
        );
        assert!(report.ok >= 40);
        assert!(report.summary.clean_shutdown);
        assert!(report.p99_analyse_ms > 0.0);
    }

    #[test]
    fn saturation_sheds_with_typed_overloads_instead_of_queueing() {
        let report = saturate(30);
        assert!(report.overloaded > 0);
        assert_eq!(report.faults, 0);
    }

    #[test]
    fn one_and_many_workers_answer_the_mix_identically() {
        let root = std::env::temp_dir().join(format!("tmg-loadtest-ident-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let one = loadtest(&LoadtestConfig {
            requests: 45,
            connections: 2,
            workers: 1,
            cache_root: Some(root.clone()),
            ..LoadtestConfig::default()
        });
        let many = loadtest(&LoadtestConfig {
            requests: 45,
            connections: 3,
            workers: 4,
            cache_root: Some(root.clone()),
            ..LoadtestConfig::default()
        });
        assert_eq!(
            one.response_lines, many.response_lines,
            "scheduler answers must not depend on worker count"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
