//! Chaos soak for the end-to-end client/server resilience stack.
//!
//! [`chaos`] drives the loadtest's deterministic request mix through real
//! [`tmg_client::Client`]s against a real server *process* (this binary
//! re-spawned as `serve --tcp 127.0.0.1:0 --announce <file>`), twice:
//!
//! 1. **Reference phase** — a fault-free server populates the segment log
//!    and every slot's normalized answer is recorded; the phase ends with
//!    a clean shutdown so the log is sealed.
//! 2. **Soak phase** — the same mix re-runs with every wire fault kind
//!    armed over `TMG_FAULT_PLAN` (`conn_drop`, `stall_ms`, `torn_frame`,
//!    `dup_delivery`) while the harness `kill -9`s the server mid-soak and
//!    restarts it on a fresh port, repointing the live clients with
//!    [`tmg_client::Client::set_addr`].
//!
//! The soak asserts the full resilience contract:
//!
//! * **zero wrong answers** — every non-deadline slot is answered `ok`,
//!   bit-identical (modulo `id`) to the reference phase; deadline slots
//!   are declined with the typed `cancelled` both times;
//! * **no silent loss** — a slot either gets its answer or a *typed*
//!   [`tmg_client::ClientError`]; the harness treats anything else as a
//!   failure;
//! * **bounded recovery** — each kill's restart (spawn, announce, repoint,
//!   first answered probe) completes within the configured budget;
//! * **fully-warm restart** — the restarted server's final `stats`
//!   snapshot reports `computes == 0`: everything was served from the
//!   segment log the reference phase sealed;
//! * **every wire fault kind fired** — the restarted server's
//!   `resilience.wire_faults` counters are all non-zero (the harness
//!   burns extra deliveries after the mix until the armed shots fire).

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tmg_client::{Client, ClientConfig, ClientError, ClientStats};
use tmg_service::json::{self, Value};
use tmg_service::FaultKind;

use crate::loadtest::HOT_SOURCE;

/// The wire fault plan the soak phase arms on every server process it
/// spawns: a couple of shots of each deterministic network fault kind.
pub const WIRE_PLAN: &str = "conn_drop:2,stall_ms:2,torn_frame:2,dup_delivery:2";

/// Shape of one chaos soak.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Requests per phase (the soak phase replays the same slots).
    pub requests: usize,
    /// Concurrent client threads (each owns one reconnecting [`Client`]).
    pub connections: usize,
    /// Server `kill -9` + restart cycles during the soak phase.
    pub kills: usize,
    /// Per-kill budget from `kill` to the first answered probe.
    pub recovery_budget: Duration,
}

impl ChaosConfig {
    /// The full soak: enough slots for every kill to land under load.
    pub fn full() -> ChaosConfig {
        ChaosConfig {
            requests: 240,
            connections: 3,
            kills: 2,
            recovery_budget: Duration::from_secs(30),
        }
    }

    /// The CI smoke: one kill, a small mix, the same assertions.
    pub fn quick() -> ChaosConfig {
        ChaosConfig {
            requests: 60,
            connections: 2,
            kills: 1,
            recovery_budget: Duration::from_secs(30),
        }
    }
}

/// What the soak observed (after every assertion already passed).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Slots driven across both phases.
    pub requests: u64,
    /// `ok` answers across both phases.
    pub ok: u64,
    /// Typed `cancelled` declines (the mix's deadline slots), both phases.
    pub cancelled: u64,
    /// Soak-phase answers verified bit-identical to the reference phase.
    pub verified_identical: u64,
    /// Kill/restart cycles executed.
    pub kills: u64,
    /// Per-kill recovery time (kill → first answered probe).
    pub recovery: Vec<Duration>,
    /// Final-server wire fault counters, one `(kind, fired)` per kind.
    pub wire_faults: Vec<(&'static str, u64)>,
    /// The restarted server's `computes` counter (must be 0: fully warm).
    pub restart_computes: u64,
    /// Aggregated client-side resilience counters across the mix clients.
    pub client: ClientStats,
    /// Wall clock of the whole soak (both phases).
    pub wall: Duration,
}

impl ChaosReport {
    /// Total wire fault shots that fired on the final server.
    pub fn wire_faults_fired(&self) -> u64 {
        self.wire_faults.iter().map(|(_, n)| n).sum()
    }

    /// The slowest kill recovery.
    pub fn max_recovery(&self) -> Duration {
        self.recovery.iter().copied().max().unwrap_or_default()
    }
}

/// The request body (no `id` — the client assigns and pins it) for slot
/// `i`: the loadtest's deterministic duplicate-heavy / cache-hostile /
/// deadline-violating mix, with the shared `trace_id` pin that keeps
/// responses deterministic across schedulers.
pub fn mix_body(i: usize) -> String {
    if is_deadline_slot(i) {
        return format!(
            "\"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"deadline_ms\": 0",
            json::escape(HOT_SOURCE)
        );
    }
    match i % 3 {
        0 => format!(
            "\"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2",
            json::escape(HOT_SOURCE)
        ),
        1 => {
            let range = 1 + i % 4;
            let pivot = i % 3;
            let source = format!(
                "void cold_{i}(char a __range(0, {range})) {{ if (a > {pivot}) {{ x(); }} else {{ y(); }} }}"
            );
            format!(
                "\"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2",
                json::escape(&source)
            )
        }
        _ => format!(
            "\"trace_id\": 1, \"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 40",
            json::escape(HOT_SOURCE)
        ),
    }
}

/// Whether slot `i` is a deadline-violating request, declined with a typed
/// `cancelled` in both phases.
pub fn is_deadline_slot(i: usize) -> bool {
    i % 7 == 3
}

/// The retry policy the mix clients run under: budgets generous enough to
/// ride out a kill/restart window (connect-refused retries are cheap), a
/// hedge threshold for stragglers, no per-request deadline.
fn mix_client_config() -> ClientConfig {
    ClientConfig {
        base_backoff_ms: 10,
        max_backoff_ms: 400,
        max_attempts: 24,
        deadline_ms: None,
        hedge_after_ms: Some(400),
        connect_timeout_ms: 1_000,
    }
}

/// Runs the chaos soak end to end and returns the (already asserted)
/// report.
///
/// # Panics
///
/// Panics on any broken resilience promise: a wrong or missing answer, an
/// unexpectedly typed outcome, an over-budget recovery, a cold restart, or
/// a wire fault kind that never fired.
pub fn chaos(config: &ChaosConfig) -> ChaosReport {
    let started = Instant::now();
    let exe = std::env::current_exe().expect("current exe");
    let root = std::env::temp_dir().join(format!("tmg-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create chaos scratch root");
    let n = config.requests;
    let kills = config.kills.max(1);

    // Reference phase: fault-free server, clean shutdown (seals the log).
    let announce = root.join("announce-a");
    let mut server = spawn_server(&exe, &root, None, &announce);
    let addr = await_addr(&announce, &mut server);
    let clients: Vec<Arc<Client>> = (0..config.connections.max(1))
        .map(|_| Arc::new(Client::new(addr, mix_client_config())))
        .collect();
    let progress = AtomicUsize::new(0);
    let reference = run_phase(&clients, n, &progress, || {});
    shutdown(addr);
    server.wait().expect("reap reference server");
    let (ref_ok, ref_cancelled) = verify_phase(&reference);

    // Soak phase: wire faults armed, kills mid-mix.  The same clients stay
    // alive across the phase boundary — their internal answer maps extend
    // the bit-identical check across phases on their own.
    let announce = root.join("announce-b0");
    let mut server = spawn_server(&exe, &root, Some(WIRE_PLAN), &announce);
    let addr = await_addr(&announce, &mut server);
    for client in &clients {
        client.set_addr(addr);
    }
    let progress = AtomicUsize::new(0);
    let mut recovery = Vec::new();
    let soak = run_phase(&clients, n, &progress, || {
        for k in 1..=kills {
            let target = n * k / (kills + 1);
            while progress.load(Ordering::Relaxed) < target {
                std::thread::sleep(Duration::from_millis(2));
            }
            let killed_at = Instant::now();
            server.kill().expect("kill soak server");
            server.wait().expect("reap killed server");
            let announce = root.join(format!("announce-b{k}"));
            server = spawn_server(&exe, &root, Some(WIRE_PLAN), &announce);
            let addr = await_addr(&announce, &mut server);
            for client in &clients {
                client.set_addr(addr);
            }
            // Recovery ends at the first *answered* probe through a fresh
            // client (the restarted server must actually serve, not just
            // announce).
            let probe = Client::new(addr, mix_client_config());
            probe
                .request(&mix_body(0))
                .expect("recovery probe must be answered");
            let elapsed = killed_at.elapsed();
            assert!(
                elapsed <= config.recovery_budget,
                "kill {k} recovery took {elapsed:?} (budget {:?})",
                config.recovery_budget
            );
            recovery.push(elapsed);
        }
    });
    let (soak_ok, soak_cancelled) = verify_phase(&soak);

    // Cross-phase bit-identity: every answered slot of the soak must match
    // the reference phase byte for byte (modulo the request id).
    let mut verified_identical = 0u64;
    for (i, (a, b)) in reference.iter().zip(&soak).enumerate() {
        if let (Some(Ok(reference)), Some(Ok(soaked))) = (a, b) {
            assert_eq!(
                reference, soaked,
                "slot {i} answered differently under chaos"
            );
            verified_identical += 1;
        }
    }

    // Burn deliveries on the final server until every armed wire fault
    // kind has fired at least once, then take the closing stats snapshot.
    let final_addr = clients[0].addr();
    let mut wire_faults = Vec::new();
    let mut restart_computes = u64::MAX;
    for round in 0..40 {
        let probe = Client::new(final_addr, mix_client_config());
        let stats = probe
            .request("\"op\": \"stats\"")
            .expect("final stats snapshot")
            .value();
        let stats = stats.get("stats").expect("stats payload").clone();
        restart_computes = stats
            .get("computes")
            .and_then(Value::as_u64)
            .expect("computes counter");
        wire_faults = FaultKind::WIRE
            .iter()
            .map(|kind| {
                let fired = stats
                    .get("resilience")
                    .and_then(|r| r.get("wire_faults"))
                    .and_then(|w| w.get(kind.name()))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                (kind.name(), fired)
            })
            .collect();
        if wire_faults.iter().all(|(_, fired)| *fired >= 1) {
            break;
        }
        assert!(
            round < 39,
            "armed wire faults never all fired: {wire_faults:?}"
        );
        // Each delivery consumes at most one armed shot; feed it more.
        let _ = probe.request(&mix_body(0));
    }
    assert_eq!(
        restart_computes, 0,
        "the restarted server must come back fully warm from the segment log"
    );

    shutdown(final_addr);
    server.wait().expect("reap soak server");
    let _ = std::fs::remove_dir_all(&root);

    let mut client = ClientStats::default();
    for c in &clients {
        let s = c.stats();
        client.requests += s.requests;
        client.retries += s.retries;
        client.connects += s.connects;
        client.hedges += s.hedges;
        client.duplicates_dropped += s.duplicates_dropped;
        client.torn_frames += s.torn_frames;
        client.overloaded_retries += s.overloaded_retries;
    }

    ChaosReport {
        requests: 2 * n as u64,
        ok: ref_ok + soak_ok,
        cancelled: ref_cancelled + soak_cancelled,
        verified_identical,
        kills: kills as u64,
        recovery,
        wire_faults,
        restart_computes,
        client,
        wall: started.elapsed(),
    }
}

/// Drives slots `0..n` through the clients (slot `i` on client
/// `i % clients.len()`), running `during` on the calling thread while the
/// worker threads are live — the soak phase's kill schedule runs there.
fn run_phase(
    clients: &[Arc<Client>],
    n: usize,
    progress: &AtomicUsize,
    during: impl FnOnce(),
) -> Vec<Option<Result<String, ClientError>>> {
    let results = Mutex::new(vec![None; n]);
    std::thread::scope(|scope| {
        for (t, client) in clients.iter().enumerate() {
            let results = &results;
            let stride = clients.len();
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    let outcome = client.request(&mix_body(i)).map(|r| r.normalized());
                    results.lock().expect("results")[i] = Some(outcome);
                    progress.fetch_add(1, Ordering::Relaxed);
                    i += stride;
                }
            });
        }
        during();
    });
    results.into_inner().expect("results")
}

/// Asserts every slot resolved with its expected typed outcome and returns
/// `(ok, cancelled)` counts.
fn verify_phase(results: &[Option<Result<String, ClientError>>]) -> (u64, u64) {
    let mut ok = 0u64;
    let mut cancelled = 0u64;
    for (i, slot) in results.iter().enumerate() {
        let outcome = slot.as_ref().expect("every slot must be driven");
        if is_deadline_slot(i) {
            assert_eq!(
                outcome.as_ref().err(),
                Some(&ClientError::Cancelled),
                "deadline slot {i} must be declined with the typed cancelled: {outcome:?}"
            );
            cancelled += 1;
        } else {
            assert!(
                outcome.is_ok(),
                "slot {i} lost its answer: {:?}",
                outcome.as_ref().err()
            );
            ok += 1;
        }
    }
    (ok, cancelled)
}

/// Spawns this binary as `serve --tcp 127.0.0.1:0 --announce <file>` over
/// the shared cache root, with the wire fault plan armed when given.
fn spawn_server(exe: &Path, root: &PathBuf, fault_plan: Option<&str>, announce: &Path) -> Child {
    let mut command = Command::new(exe);
    command
        .arg("serve")
        .arg("--tcp")
        .arg("127.0.0.1:0")
        .arg("--announce")
        .arg(announce)
        .env("TMG_CACHE_DIR", root)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    match fault_plan {
        Some(plan) => command.env("TMG_FAULT_PLAN", plan),
        None => command.env_remove("TMG_FAULT_PLAN"),
    };
    command.spawn().expect("spawn chaos server child")
}

/// Polls the announce file until the child publishes its bound address.
fn await_addr(announce: &Path, child: &mut Child) -> SocketAddr {
    let started = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(announce) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        if let Some(status) = child.try_wait().expect("child status") {
            panic!("chaos server exited before announcing its address: {status}");
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "chaos server never announced its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Ends a server session over a throwaway client.  The ack is allowed to
/// be lost to a still-armed wire fault — shutdown is triggered by the
/// *request*, and the callers `wait()` on the child either way.
fn shutdown(addr: SocketAddr) {
    let client = Client::new(addr, mix_client_config());
    let _ = client.request("\"op\": \"shutdown\"");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_mix_is_deterministic_duplicate_heavy_and_deadline_violating() {
        let bodies: Vec<String> = (0..42).map(mix_body).collect();
        assert_eq!(bodies, (0..42).map(mix_body).collect::<Vec<_>>());
        // Duplicate-heavy: the hot analyse repeats verbatim across slots.
        assert_eq!(bodies[0], bodies[6]);
        // Cache-hostile: cold slots are pairwise distinct.
        assert_ne!(bodies[1], bodies[7]);
        // Deadline slots exist and are typed as such.
        let deadlines = (0..42).filter(|&i| is_deadline_slot(i)).count();
        assert_eq!(deadlines, 6);
        assert!(bodies[3].contains("\"deadline_ms\": 0"));
        // No slot carries an id — the client owns id assignment.
        assert!(bodies.iter().all(|b| !b.contains("\"id\"")));
    }

    #[test]
    fn the_quick_config_is_a_strict_shrink_of_the_full_soak() {
        let (quick, full) = (ChaosConfig::quick(), ChaosConfig::full());
        assert!(quick.requests < full.requests);
        assert!(quick.kills <= full.kills && quick.kills >= 1);
        assert_eq!(quick.recovery_budget, full.recovery_budget);
        // Every kill point must land strictly inside the mix.
        for config in [quick, full] {
            for k in 1..=config.kills {
                let target = config.requests * k / (config.kills + 1);
                assert!(target > 0 && target < config.requests);
            }
        }
    }
}
