//! Shared experiment drivers for the benchmark harness.
//!
//! Each public function regenerates the data behind one table or figure of
//! the paper's evaluation; the Criterion benches time them and the
//! `reproduce` binary prints them as tables (recorded in `EXPERIMENTS.md`).

pub mod chaos;
pub mod loadtest;
pub mod perf;

pub use chaos::{chaos, ChaosConfig, ChaosReport};
pub use loadtest::{loadtest, saturate, LoadtestConfig, LoadtestReport};
pub use perf::{perf_report, Comparison, PerfReport};

use serde::Serialize;
use std::time::Duration;
use tmg_cfg::build_cfg;
use tmg_codegen::{
    figure1_function, generate_automotive, table2::table2_function, wiper_function,
    wiper_input_space, AutomotiveConfig,
};
use tmg_core::measurement::exhaustive_end_to_end;
use tmg_core::tradeoff::{log_spaced_bounds, sweep_path_bounds, sweep_path_bounds_reference};
use tmg_core::{HybridGenerator, PartitionPlan, TradeoffPoint, WcetAnalysis};
use tmg_minic::{parse_function, Function};
use tmg_target::CostModel;
use tmg_tsys::{CheckOutcome, ModelChecker, Optimisations, PathQuery};

/// One row of Table 1: `(path bound b, instrumentation points ip, measurements m)`.
pub type Table1Row = (u128, usize, u128);

/// Regenerates Table 1 on the Figure-1 example for `b ∈ 1..=7`.
pub fn table1() -> Vec<Table1Row> {
    let lowered = build_cfg(&figure1_function(false));
    (1..=7u128)
        .map(|b| {
            let plan = PartitionPlan::compute(&lowered, b);
            (b, plan.instrumentation_points(), plan.measurements())
        })
        .collect()
}

/// The values the paper reports in Table 1, for the comparison in
/// EXPERIMENTS.md.
pub fn table1_paper() -> Vec<Table1Row> {
    vec![
        (1, 22, 11),
        (2, 16, 9),
        (3, 16, 9),
        (4, 16, 9),
        (5, 16, 9),
        (6, 2, 6),
        (7, 2, 6),
    ]
}

/// Statistics of the generated automotive function used for Figures 2 and 3.
#[derive(Debug, Clone, Serialize)]
pub struct AutomotiveStats {
    /// Basic blocks of the CFG (paper: ~857).
    pub blocks: usize,
    /// Conditional branches (paper: ~300).
    pub branches: usize,
    /// Source lines (paper: ~5000 with includes resolved).
    pub lines: usize,
    /// `ip` at path bound 1 (paper: 1714).
    pub ip_at_bound_1: usize,
}

/// Regenerates the Figure 2 / Figure 3 sweep: `ip` and `m` over a
/// log-spaced range of path bounds on a TargetLink-sized function.
pub fn figure2_3(target_blocks: usize) -> (AutomotiveStats, Vec<TradeoffPoint>) {
    figure2_3_sweep(target_blocks, |f| {
        sweep_path_bounds(&build_cfg(f), &log_spaced_bounds(1_000_000))
    })
}

/// [`figure2_3`] with the lowering routed through `store`, so the sweep's
/// CFG and path counts come from (and feed) the artifact cache — the
/// `reproduce -- sweep --stats` surface.  The curve is identical to
/// [`figure2_3`]'s (`sweep_with_counts` is bit-identical to
/// `sweep_path_bounds`, cross-checked in CI).
pub fn figure2_3_via_store(
    target_blocks: usize,
    store: &tmg_core::ArtifactStore,
) -> (AutomotiveStats, Vec<TradeoffPoint>) {
    figure2_3_sweep(target_blocks, |f| {
        let artifact = store.lowered(f);
        tmg_core::tradeoff::sweep_with_counts(&artifact.counts, &log_spaced_bounds(1_000_000))
    })
}

/// Shared generation + statistics assembly behind the Figure-2/3 variants.
fn figure2_3_sweep(
    target_blocks: usize,
    sweep: impl FnOnce(&Function) -> Vec<TradeoffPoint>,
) -> (AutomotiveStats, Vec<TradeoffPoint>) {
    let config = AutomotiveConfig {
        target_blocks,
        ..AutomotiveConfig::default()
    };
    let generated = generate_automotive(&config);
    let sweep = sweep(&generated.function);
    let stats = AutomotiveStats {
        blocks: generated.block_count,
        branches: generated.branch_count,
        lines: generated.line_count,
        ip_at_bound_1: sweep.first().map(|p| p.instrumentation_points).unwrap_or(0),
    };
    (stats, sweep)
}

/// One row of the Table-2 ablation.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Optimisation configuration label.
    pub label: String,
    /// Wall-clock time of the check.
    pub duration: Duration,
    /// Estimated explored-state memory in bytes.
    pub memory_bytes: u64,
    /// Transitions along the witness run (the paper's "steps").
    pub steps: Option<u64>,
    /// Total transitions fired during the search.
    pub transitions_fired: u64,
    /// Bits of the encoded state vector.
    pub state_bits: u32,
    /// Whether the query was answered (feasible witness found).
    pub feasible: bool,
}

/// The optimisation configurations evaluated in Table 2, in the paper's row
/// order: unoptimised, all, then each optimisation on its own.
pub fn table2_configurations() -> Vec<(String, Optimisations)> {
    let single = |name: &str, set: Optimisations| (name.to_owned(), set);
    vec![
        ("unoptimized".to_owned(), Optimisations::none()),
        ("all optimisations used".to_owned(), Optimisations::all()),
        single(
            "Variable Initialisation",
            Optimisations {
                variable_initialisation: true,
                ..Optimisations::none()
            },
        ),
        single(
            "Variable Range Analysis",
            Optimisations {
                variable_range_analysis: true,
                ..Optimisations::none()
            },
        ),
        single(
            "Reverse CSE",
            Optimisations {
                reverse_cse: true,
                ..Optimisations::none()
            },
        ),
        single(
            "Statement Concatenation",
            Optimisations {
                statement_concatenation: true,
                ..Optimisations::none()
            },
        ),
        single(
            "Dead Variable Elimination",
            Optimisations {
                dead_code_elimination: true,
                ..Optimisations::none()
            },
        ),
        single(
            "Live-Variable Analysis",
            Optimisations {
                live_variable_analysis: true,
                ..Optimisations::none()
            },
        ),
    ]
}

/// Picks the path query used for the Table-2 ablation: the deepest feasible
/// path of the module (every configuration answers the same query).
pub fn table2_query(function: &Function) -> PathQuery {
    let lowered = build_cfg(function);
    let mut paths = tmg_cfg::enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 4096)
        .unwrap_or_default();
    paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
    let checker = ModelChecker::new();
    for path in &paths {
        let query = PathQuery::new(path.decisions.clone());
        if matches!(
            checker.find_test_data(function, &query).outcome,
            CheckOutcome::Feasible { .. }
        ) {
            return query;
        }
    }
    PathQuery::any_execution()
}

/// Regenerates the Table-2 ablation on the 105-line module.
pub fn table2() -> Vec<Table2Row> {
    let function = table2_function();
    let query = table2_query(&function);
    table2_configurations()
        .into_iter()
        .map(|(label, opts)| {
            let checker = ModelChecker::with_optimisations(opts);
            let result = checker.find_test_data(&function, &query);
            Table2Row {
                label,
                duration: result.stats.duration,
                memory_bytes: result.stats.memory_estimate_bytes,
                steps: result.stats.witness_steps,
                transitions_fired: result.stats.transitions_fired,
                state_bits: result.stats.state_bits,
                feasible: matches!(result.outcome, CheckOutcome::Feasible { .. }),
            }
        })
        .collect()
}

/// Result of the Section-4 case study.
#[derive(Debug, Clone, Serialize)]
pub struct CaseStudyResult {
    /// Path bound chosen so that every `switch` arm is one program segment.
    pub path_bound: u128,
    /// Number of program segments.
    pub segments: usize,
    /// Instrumentation points.
    pub instrumentation_points: usize,
    /// Measurements.
    pub measurements: u128,
    /// Goals covered by the heuristic phase.
    pub heuristic_covered: usize,
    /// Goals covered by the model checker.
    pub checker_covered: usize,
    /// Goals proven infeasible.
    pub infeasible: usize,
    /// WCET bound from the timing schema (paper: 274 cycles).
    pub wcet_bound: u64,
    /// Exhaustive end-to-end maximum (paper: 250 cycles).
    pub exhaustive_max: u64,
    /// `wcet_bound / exhaustive_max` (paper: 1.096).
    pub pessimism: f64,
}

/// Path bound that makes every case arm of the wiper controller one program
/// segment, as the paper does ("each case block equals one PS").
pub fn wiper_case_bound() -> u128 {
    let lowered = build_cfg(&wiper_function());
    lowered
        .regions
        .root()
        .children
        .iter()
        .map(|c| lowered.regions.region(*c).path_count)
        .max()
        .unwrap_or(1)
}

/// Regenerates the Section-4 case study: partition per case arm, generate
/// test data, measure, compute the bound, and compare against the exhaustive
/// end-to-end maximum.
pub fn case_study() -> CaseStudyResult {
    let function = wiper_function();
    let bound = wiper_case_bound();
    let space = wiper_input_space();
    let report = WcetAnalysis::new(bound)
        .analyse_with_exhaustive(&function, &space)
        .expect("case-study analysis");
    CaseStudyResult {
        path_bound: bound,
        segments: report.segments,
        instrumentation_points: report.instrumentation_points,
        measurements: report.measurements,
        heuristic_covered: report.heuristic_covered,
        checker_covered: report.checker_covered,
        infeasible: report.infeasible,
        wcet_bound: report.wcet_bound,
        exhaustive_max: report.exhaustive_max.expect("exhaustive space supplied"),
        pessimism: report.pessimism().expect("pessimism"),
    }
}

/// Result of the hybrid test-data-generation experiment (Section 3 claim).
#[derive(Debug, Clone, Serialize)]
pub struct TestGenResult {
    /// Total coverage goals.
    pub goals: usize,
    /// Goals covered by the heuristic phase.
    pub heuristic_covered: usize,
    /// Goals covered by the model checker.
    pub checker_covered: usize,
    /// Goals proven infeasible.
    pub infeasible: usize,
    /// Goals left unresolved.
    pub unknown: usize,
    /// Fraction of feasible goals covered heuristically (paper expects >0.9).
    pub heuristic_ratio: f64,
}

/// Regenerates the hybrid-generation statistics on the wiper controller.
pub fn testgen_experiment() -> TestGenResult {
    let function = wiper_function();
    let lowered = build_cfg(&function);
    let plan = PartitionPlan::compute(&lowered, wiper_case_bound());
    let suite = HybridGenerator::new().generate(&function, &lowered, &plan);
    TestGenResult {
        goals: suite.goal_count(),
        heuristic_covered: suite.heuristic_covered(),
        checker_covered: suite.checker_covered(),
        infeasible: suite.infeasible_count(),
        unknown: suite.unknown_count(),
        heuristic_ratio: suite.heuristic_ratio(),
    }
}

/// CI smoke check of the multi-query engine's equivalence guarantee: every
/// verdict of a batched [`ModelChecker::check_many`] call must be identical
/// to the single-query verdict for the same query.  Returns the number of
/// queries cross-checked.
///
/// # Panics
///
/// Panics on the first mismatching verdict or witness.
pub fn multiquery_crosscheck() -> usize {
    let cross = parse_function(
        r#"
        void cross(int key __range(0, 4000), char m __range(0, 3), bool g) {
            if (key == 77) { h1(); }
            if (m > 1) { p(); } else { q(); }
            if (m == 0 && g) { r(); }
            if (key < 0) { never(); }
        }
    "#,
    )
    .expect("cross-check module parses");
    let mut checked = 0;
    for function in [&cross, &wiper_function()] {
        let lowered = build_cfg(function);
        let Some(paths) =
            tmg_cfg::enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 256)
        else {
            continue;
        };
        let mut queries: Vec<PathQuery> = paths
            .into_iter()
            .map(|p| PathQuery::new(p.decisions))
            .collect();
        queries.push(PathQuery::any_execution());
        let checker = ModelChecker::new();
        let batched = checker.check_many(function, &queries);
        for (query, result) in queries.iter().zip(&batched) {
            let single = checker.find_test_data(function, query);
            assert_eq!(
                result.outcome, single.outcome,
                "multi-query and single-query verdicts diverge on `{}` for {:?}",
                function.name, query.decisions
            );
            checked += 1;
        }
    }
    checked
}

/// CI smoke check of the parallel explorer's determinism contract: the same
/// shard-triggering batch explored with one worker and with the machine's
/// default worker count must produce bit-identical verdicts, witnesses and
/// step counts (the 1-worker run executes the identical shard set in order,
/// so this cross-checks the deterministic reduction end to end).  Returns
/// the number of queries compared.
///
/// # Panics
///
/// Panics (failing CI) on any divergence.
pub fn shard_crosscheck() -> usize {
    let heavy = parse_function(
        r#"
        void shardck(int key __range(0, 20000), char m __range(0, 3), bool g) {
            if (key == 4242) { h1(); }
            if (key == 19000) { h2(); }
            if (m > 1) { p(); } else { q(); }
            if (m == 0 && g) { r(); }
        }
    "#,
    )
    .expect("shard cross-check module parses");
    let lowered = build_cfg(&heavy);
    let paths = tmg_cfg::enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 256)
        .expect("paths enumerate");
    let queries: Vec<PathQuery> = paths
        .into_iter()
        .map(|p| PathQuery::new(p.decisions))
        .collect();
    let checker = ModelChecker::new();
    let model = tmg_tsys::encode_function(&heavy, &Optimisations::all().encode_options());
    let prepared = tmg_tsys::PreparedModel::new(&model);
    // At least two workers even on a single-core host — the thread count is
    // an explicit parameter, and comparing the 1-worker schedule to itself
    // would make the determinism check vacuous exactly where it matters.
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2);
    let sequential =
        tmg_tsys::MultiQueryEngine::explore_with_threads(&checker, &prepared, &queries, 1);
    let parallel =
        tmg_tsys::MultiQueryEngine::explore_with_threads(&checker, &prepared, &queries, threads);
    for q in 0..queries.len() {
        assert_eq!(
            sequential.outcome(q),
            parallel.outcome(q),
            "1-thread and {threads}-thread explorations diverge on query {q}"
        );
    }
    queries.len()
}

/// CI smoke check of the incremental sweep's bit-identity guarantee: the
/// single-walk event sweep must emit exactly the points of the per-bound
/// `PartitionPlan::compute` reference.  Returns the number of points
/// cross-checked.
///
/// # Panics
///
/// Panics on the first mismatching tradeoff point.
pub fn sweep_crosscheck() -> usize {
    let generated = generate_automotive(&AutomotiveConfig::small(9));
    let lowered = build_cfg(&generated.function);
    let bounds = log_spaced_bounds(1_000_000);
    let reference = sweep_path_bounds_reference(&lowered, &bounds);
    let incremental = sweep_path_bounds(&lowered, &bounds);
    assert_eq!(
        reference, incremental,
        "incremental sweep diverges from the per-bound reference"
    );
    reference.len()
}

/// Convenience used by the case-study bench: the exhaustive end-to-end
/// maximum on its own.
pub fn wiper_exhaustive_max() -> u64 {
    let function = wiper_function();
    let lowered = build_cfg(&function);
    exhaustive_end_to_end(
        &function,
        &lowered,
        &wiper_input_space(),
        &CostModel::hcs12(),
    )
    .expect("exhaustive")
    .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_exactly() {
        assert_eq!(table1(), table1_paper());
    }

    #[test]
    fn case_study_bound_dominates_the_exhaustive_maximum() {
        let result = case_study();
        assert!(result.wcet_bound >= result.exhaustive_max);
        assert!(result.pessimism >= 1.0 && result.pessimism < 1.6);
        assert!(result.segments >= 9, "at least one segment per state case");
    }

    #[test]
    fn table2_rows_follow_the_papers_ordering() {
        let rows = table2();
        assert_eq!(rows.len(), 8);
        let by_label = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap_or_else(|| panic!("missing row {label}"))
        };
        let unopt = by_label("unoptimized");
        let all = by_label("all optimisations");
        assert!(all.transitions_fired < unopt.transitions_fired);
        assert!(all.memory_bytes < unopt.memory_bytes);
        assert!(all.state_bits < unopt.state_bits);
        assert!(all.steps.unwrap_or(0) < unopt.steps.unwrap_or(u64::MAX));
        // Every single-optimisation row improves (or at least does not
        // worsen) the unoptimised state-vector size or step count.
        for row in &rows {
            assert!(row.feasible, "{} must find a witness", row.label);
            assert!(row.state_bits <= unopt.state_bits);
        }
        let concat = by_label("Statement Concatenation");
        assert!(concat.steps.unwrap_or(u64::MAX) < unopt.steps.unwrap_or(0).max(1) + 1);
    }

    #[test]
    fn figure2_3_curves_have_the_papers_shape() {
        let (stats, sweep) = figure2_3(200);
        assert!(stats.blocks >= 200);
        assert_eq!(stats.ip_at_bound_1, stats.blocks * 2 - 2);
        for w in sweep.windows(2) {
            assert!(w[1].instrumentation_points <= w[0].instrumentation_points);
        }
        assert!(sweep.last().expect("sweep").measurements > sweep[0].measurements);
    }

    #[test]
    fn testgen_resolves_every_goal_on_the_wiper() {
        let result = testgen_experiment();
        assert_eq!(result.unknown, 0);
        assert!(
            result.heuristic_ratio > 0.8,
            "ratio {}",
            result.heuristic_ratio
        );
        assert!(result.goals >= result.heuristic_covered + result.checker_covered);
    }
}
