//! Machine-readable performance baseline (`BENCH_pr10.json`).
//!
//! Every PR that touches a hot path needs a number to beat.  This module
//! times the paper-reproduction workloads (Table 1, Table 2, Figure 2/3,
//! Section-4 case study) and — for each reworked hot path — records a
//! before/after comparison with the results verified identical.
//!
//! **Where the `before` side comes from.**  Through PR 3 the harness kept
//! the original clone-per-state checker engine (`SearchEngine::Baseline`)
//! in-tree purely to measure it.  With three PRs of `BENCH_*.json`
//! trajectory recorded, that engine is gone (ROADMAP-sanctioned); the
//! workloads it used to anchor now carry the wall times *recorded in
//! `BENCH_pr3.json`* as their fixed `before` reference
//! ([`RECORDED_BEFORE_MS`]), and their `identical_results` flag is checked
//! against the reference implementations still in-tree (the unbatched
//! sequential generator, per-query checking, the per-bound sweep).
//! Workloads whose pre-optimisation path still exists (`tradeoff_sweep`,
//! `checker_multiquery_heavy`, `pipeline_cached`, the service pair) keep
//! measuring both sides live.  Two workloads isolate the PR-5 tentpole:
//! `checker_sliced_vs_full` (one batch answered on the full model vs on its
//! cone-of-influence slice with full-model witness completion, outcomes
//! bit-identical) and `checker_shard_scaling` (the shard-triggering heavy
//! batch at one worker thread vs the machine's available parallelism,
//! resolutions bit-identical by the deterministic reduction — the speedup
//! column only moves on multi-core hosts).
//!
//! The JSON is written by hand (the vendored serde is derive-markers only);
//! the schema is documented in ROADMAP.md under "Open items".

use crate::{
    case_study, figure2_3, table1, table1_paper, table2_configurations, table2_query, Table1Row,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tmg_cfg::build_cfg;
use tmg_codegen::{generate_automotive, table2::table2_function, wiper_function, AutomotiveConfig};
use tmg_core::pipeline::{ArtifactStore, BoundArtifact, TieredStore};
use tmg_core::tradeoff::{log_spaced_bounds, sweep_path_bounds, sweep_path_bounds_reference};
use tmg_core::{AnalysisReport, GoalKind, HybridGenerator, PartitionPlan, WcetAnalysis};
use tmg_minic::parse_function;
use tmg_service::{codec, PersistentStore, Server};
use tmg_tsys::{CheckOutcome, ModelChecker, PathQuery};

/// Label recorded in the emitted JSON; the output file is `BENCH_<label>.json`.
pub const PR_LABEL: &str = "pr10";

/// `before_ms` wall times recorded in `BENCH_pr3.json` for the workloads
/// whose measured pre-optimisation implementation (the Baseline engine) was
/// dropped in this PR.  Same machine class (single-core container,
/// `--release`); kept verbatim so the speedup trajectory stays anchored to
/// the recorded floors instead of to code that no longer exists.
const RECORDED_BEFORE_MS: &[(&str, f64)] = &[
    ("table2_ablation", 1.547),
    ("testgen_wiper", 8.033),
    ("testgen_checker_heavy", 396.596),
    ("testgen_automotive", 14578.801),
    ("wcet_pipeline_wiper", 8.443),
];

fn recorded_before(name: &str) -> Duration {
    let (_, ms) = RECORDED_BEFORE_MS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no recorded floor for workload `{name}`"));
    Duration::from_secs_f64(ms / 1e3)
}

/// Before/after wall times of one reworked workload.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Workload label.
    pub name: String,
    /// Wall time of the pre-optimisation reference (measured live when the
    /// reference implementation is still in-tree, otherwise the wall time
    /// recorded in `BENCH_pr3.json`).
    pub before: Duration,
    /// Wall time on the optimised implementation.
    pub after: Duration,
    /// Whether the optimised implementation's results were verified
    /// identical against an independent reference.
    pub identical_results: bool,
}

impl Comparison {
    /// `before / after`.
    pub fn speedup(&self) -> f64 {
        self.before.as_secs_f64() / self.after.as_secs_f64().max(1e-9)
    }
}

/// The complete perf baseline.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Wall time of the Table-1 partitioning sweep.
    pub table1_wall: Duration,
    /// The reproduced Table-1 rows.
    pub table1_rows: Vec<Table1Row>,
    /// Whether the rows match the paper exactly.
    pub table1_matches_paper: bool,
    /// Wall time of the Figure-2/3 tradeoff sweep.
    pub figure2_3_wall: Duration,
    /// Blocks of the generated Figure-2/3 function.
    pub figure2_3_blocks: usize,
    /// Wall time of the Section-4 case study (full pipeline, optimised).
    pub case_study_wall: Duration,
    /// WCET bound of the case study in cycles.
    pub case_study_wcet: u64,
    /// Exhaustive end-to-end maximum in cycles.
    pub case_study_exhaustive: u64,
    /// Model-checker comparison on the Table-2 ablation.
    pub table2: Comparison,
    /// Test-data-generation comparisons (plus the service workloads).
    pub testgen: Vec<Comparison>,
    /// End-to-end WCET pipeline comparison (wiper case study).
    pub pipeline: Comparison,
    /// The socket loadtest measurement (mixed mix over loopback TCP).
    pub service_loadtest: ServiceLoadtest,
    /// The startup recovery-scan measurement (healthy populated cache).
    pub service_recovery: ServiceRecovery,
    /// The segment-tier measurement (compaction + group commit).
    pub segment_tier: SegmentTierReport,
    /// The quick chaos soak (kill/restart + wire faults), already asserted.
    pub chaos_soak: ChaosSoak,
    /// Happy-path cost of the resilient client over a raw socket.
    pub client_retry_overhead: ClientRetryOverhead,
}

/// What the TCP loadtest recorded.  Wall times are best-of-[`BEST_OF`] on a
/// shared (warming) cache root; throughput and p99 come from the fastest
/// full-pool run.  Single-core caveat: on a one-core host the full pool
/// degenerates to time slicing, so the 1-vs-N wall ratio is flat there —
/// the identity flag is the portable signal.
#[derive(Debug, Clone)]
pub struct ServiceLoadtest {
    /// Requests per run (excluding the control `stats`/`shutdown`).
    pub requests: u64,
    /// Best wall of the mixed run with a single scheduler worker.
    pub one_worker_wall: Duration,
    /// Best wall of the mixed run with the full worker pool.
    pub wall: Duration,
    /// Answered requests per second in the fastest full-pool run.
    pub throughput_rps: f64,
    /// Server-side `analyse` p99 (ms) reported by the final `stats`.
    pub p99_analyse_ms: f64,
    /// In-flight duplicates coalesced in the fastest full-pool run.
    pub deduplicated: u64,
    /// Deadline violations declined with a typed `cancelled`.
    pub expired: u64,
    /// Jobs shed by the dedicated zero-capacity saturation run.
    pub shed_under_saturation: u64,
    /// Whether 1-worker and full-pool runs answered byte-identically.
    pub identical_across_workers: bool,
}

/// What the recovery-scan measurement recorded.
#[derive(Debug, Clone)]
pub struct ServiceRecovery {
    /// `.tmga` frames the scan verified.
    pub frames: u64,
    /// Frames quarantined (must be 0 on a healthy cache).
    pub quarantined: u64,
    /// Best-of-[`BEST_OF`] wall of one full scan.
    pub wall: Duration,
    /// Post-scan warm analysis bit-identical with zero recomputation.
    pub healthy: bool,
}

/// What the segment-tier measurement recorded: one full compaction of a
/// half-dead segment, plus the group-commit and zero-copy counters from
/// the write/read phases that produced it.
#[derive(Debug, Clone)]
pub struct SegmentTierReport {
    /// Accounted dead bytes before the timed compaction.
    pub dead_bytes_before: u64,
    /// Accounted dead bytes after it.
    pub dead_bytes_after: u64,
    /// Compactions the timed store ran.
    pub compactions: u64,
    /// Live frames the compactor copied forward.
    pub compacted_frames: u64,
    /// Batched fsyncs issued by the writer (group commit).
    pub group_commit_batches: u64,
    /// The configured group-commit latency window in milliseconds.
    pub group_commit_window_ms: u64,
    /// Warm reads served from borrowed frame bytes during verification.
    pub zero_copy_hits: u64,
    /// Best-of-[`BEST_OF`] wall of one full compaction.
    pub wall: Duration,
    /// Every live key read bit-identically after compaction.
    pub identical: bool,
}

/// What the quick chaos soak recorded (every resilience assertion — zero
/// wrong answers, bounded recovery, fully-warm restart, every wire fault
/// kind fired — already passed inside [`crate::chaos`]).
#[derive(Debug, Clone)]
pub struct ChaosSoak {
    /// Slots driven across both phases.
    pub requests: u64,
    /// Server `kill -9` + restart cycles survived.
    pub kills: u64,
    /// Slowest kill-to-answered-probe recovery.
    pub max_recovery: Duration,
    /// Wire fault shots that fired on the final server.
    pub wire_faults_fired: u64,
    /// The restarted server's `computes` counter (0 = fully warm).
    pub restart_computes: u64,
    /// Soak answers verified bit-identical to the fault-free reference.
    pub verified_identical: u64,
    /// Wall clock of the whole soak.
    pub wall: Duration,
}

/// Happy-path overhead of `tmg-client` (retry/hedging/idempotency
/// machinery engaged but never firing) over a bare socket round trip,
/// both driving the same warm request against the same live server.
#[derive(Debug, Clone)]
pub struct ClientRetryOverhead {
    /// Warm round trips per side.
    pub requests: u64,
    /// Wall of the raw-socket loop.
    pub raw_wall: Duration,
    /// Wall of the `tmg-client` loop.
    pub client_wall: Duration,
    /// Answers byte-identical (modulo `id`) between the two sides.
    pub identical: bool,
}

impl ClientRetryOverhead {
    /// `client_wall / raw_wall` — the resilience layer's happy-path tax.
    pub fn overhead(&self) -> f64 {
        self.client_wall.as_secs_f64() / self.raw_wall.as_secs_f64().max(1e-9)
    }
}

impl PerfReport {
    /// Geometric mean of the hot-path speedups (Table 2 + test generation).
    pub fn hot_path_speedup(&self) -> f64 {
        let mut product = self.table2.speedup();
        let mut n = 1usize;
        for c in &self.testgen {
            product *= c.speedup();
            n += 1;
        }
        product.powf(1.0 / n as f64)
    }

    /// Whether every before/after pair produced identical results.
    pub fn all_results_identical(&self) -> bool {
        self.table2.identical_results
            && self.pipeline.identical_results
            && self.testgen.iter().all(|c| c.identical_results)
            && self.service_loadtest.identical_across_workers
            && self.service_recovery.healthy
            && self.segment_tier.identical
            && self.chaos_soak.restart_computes == 0
            && self.client_retry_overhead.identical
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"tmg-bench-perf/v1\",");
        let _ = writeln!(out, "  \"pr\": \"{PR_LABEL}\",");
        let _ = writeln!(
            out,
            "  \"table1\": {{ \"wall_ms\": {:.3}, \"matches_paper\": {}, \"rows\": {} }},",
            ms(self.table1_wall),
            self.table1_matches_paper,
            rows_json(&self.table1_rows)
        );
        let _ = writeln!(
            out,
            "  \"figure2_3\": {{ \"wall_ms\": {:.3}, \"blocks\": {} }},",
            ms(self.figure2_3_wall),
            self.figure2_3_blocks
        );
        let _ = writeln!(
            out,
            "  \"case_study\": {{ \"wall_ms\": {:.3}, \"wcet_bound_cycles\": {}, \"exhaustive_max_cycles\": {} }},",
            ms(self.case_study_wall),
            self.case_study_wcet,
            self.case_study_exhaustive
        );
        let _ = writeln!(out, "  \"table2\": {},", comparison_json(&self.table2));
        let _ = writeln!(out, "  \"testgen\": [");
        for (i, c) in self.testgen.iter().enumerate() {
            let comma = if i + 1 < self.testgen.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{}", comparison_json(c), comma);
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"pipeline\": {},", comparison_json(&self.pipeline));
        let lt = &self.service_loadtest;
        let _ = writeln!(
            out,
            "  \"service_loadtest\": {{ \"requests\": {}, \"one_worker_wall_ms\": {:.3}, \"wall_ms\": {:.3}, \"throughput_rps\": {:.1}, \"p99_analyse_ms\": {:.3}, \"deduplicated\": {}, \"expired\": {}, \"shed_under_saturation\": {}, \"identical_across_workers\": {} }},",
            lt.requests,
            ms(lt.one_worker_wall),
            ms(lt.wall),
            lt.throughput_rps,
            lt.p99_analyse_ms,
            lt.deduplicated,
            lt.expired,
            lt.shed_under_saturation,
            lt.identical_across_workers
        );
        let rec = &self.service_recovery;
        let _ = writeln!(
            out,
            "  \"service_recovery_scan\": {{ \"frames\": {}, \"quarantined\": {}, \"wall_ms\": {:.3}, \"healthy\": {} }},",
            rec.frames,
            rec.quarantined,
            ms(rec.wall),
            rec.healthy
        );
        let seg = &self.segment_tier;
        let _ = writeln!(
            out,
            "  \"segment_tier\": {{ \"dead_bytes_before\": {}, \"dead_bytes_after\": {}, \"compactions\": {}, \"compacted_frames\": {}, \"group_commit_batches\": {}, \"group_commit_window_ms\": {}, \"zero_copy_hits\": {}, \"compaction_wall_ms\": {:.3}, \"identical\": {} }},",
            seg.dead_bytes_before,
            seg.dead_bytes_after,
            seg.compactions,
            seg.compacted_frames,
            seg.group_commit_batches,
            seg.group_commit_window_ms,
            seg.zero_copy_hits,
            ms(seg.wall),
            seg.identical
        );
        let soak = &self.chaos_soak;
        let _ = writeln!(
            out,
            "  \"chaos_soak\": {{ \"requests\": {}, \"kills\": {}, \"max_recovery_ms\": {:.3}, \"wire_faults_fired\": {}, \"restart_computes\": {}, \"verified_identical\": {}, \"wall_ms\": {:.3} }},",
            soak.requests,
            soak.kills,
            ms(soak.max_recovery),
            soak.wire_faults_fired,
            soak.restart_computes,
            soak.verified_identical,
            ms(soak.wall)
        );
        let cro = &self.client_retry_overhead;
        let _ = writeln!(
            out,
            "  \"client_retry_overhead\": {{ \"requests\": {}, \"raw_wall_ms\": {:.3}, \"client_wall_ms\": {:.3}, \"overhead\": {:.3}, \"identical\": {} }},",
            cro.requests,
            ms(cro.raw_wall),
            ms(cro.client_wall),
            cro.overhead(),
            cro.identical
        );
        let _ = writeln!(
            out,
            "  \"hot_path_speedup_geomean\": {:.3},",
            self.hot_path_speedup()
        );
        let _ = writeln!(
            out,
            "  \"all_results_identical\": {}",
            self.all_results_identical()
        );
        let _ = writeln!(out, "}}");
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn rows_json(rows: &[Table1Row]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|(b, ip, m)| format!("[{b}, {ip}, {m}]"))
        .collect();
    format!("[{}]", cells.join(", "))
}

fn comparison_json(c: &Comparison) -> String {
    format!(
        "{{ \"name\": \"{}\", \"before_ms\": {:.3}, \"after_ms\": {:.3}, \"speedup\": {:.3}, \"identical_results\": {} }}",
        c.name,
        ms(c.before),
        ms(c.after),
        c.speedup(),
        c.identical_results
    )
}

fn timed<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Samples per measured comparison side: the recorded wall time is the
/// fastest of these (warm caches, minimal noise).  Raised from 3 to 5 when
/// the recorded-floor regime started (a fixed floor leaves no second chance
/// to a noisy sample), and from 5 to 7 in PR 5: the recording host shares
/// cores with other tenants and drifts by double-digit percentages between
/// phases, so the minimum needs more draws to reflect the code instead of
/// the noise floor.
const BEST_OF: usize = 7;

/// Runs a workload `runs` times and returns the fastest wall time with the
/// last result (warm caches, minimal noise).
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut value = None;
    for _ in 0..runs.max(1) {
        let (wall, v) = timed(&mut f);
        best = best.min(wall);
        value = Some(v);
    }
    (best, value.expect("at least one run"))
}

/// A synthetic module whose goals need the model checker (narrow equality
/// guards random search cannot hit), biasing the test-generation workload
/// toward the checker hot path, like the paper's industrial modules.
fn checker_heavy_function() -> tmg_minic::Function {
    parse_function(
        r#"
        void lookup_dispatch(int key __range(0, 20000), char mode __range(0, 5), char gate __range(0, 1)) {
            if (key == 1234) { hit1(); }
            if (key == 8190) { hit2(); }
            if (key == 19999) { hit3(); }
            if (mode > 3) { fast(); } else { slow(); }
            if (mode == 2 && gate) { gated(); }
            if (key < 0) { never(); }
        }
    "#,
    )
    .expect("checker-heavy module parses")
}

/// One test-generation workload: the optimised generator timed against the
/// recorded floor, with the suite verified identical to the in-tree
/// reference pipeline (per-goal sequential checking, allocation-per-call
/// matching).
fn compare_testgen(name: &str, function: &tmg_minic::Function, bound: u128) -> Comparison {
    let lowered = build_cfg(function);
    let plan = PartitionPlan::compute(&lowered, bound);
    let after_gen = HybridGenerator::new();
    let (after, suite_after) = best_of(BEST_OF, || after_gen.generate(function, &lowered, &plan));
    // The reference runs once (unmeasured): it only anchors result identity.
    let reference = HybridGenerator::new()
        .sequential()
        .unbatched()
        .generate(function, &lowered, &plan);
    Comparison {
        name: name.to_owned(),
        before: recorded_before(name),
        after,
        identical_results: reference == suite_after,
    }
}

/// Isolated multi-query measurement: one function's coverage-query batch
/// answered per query on the arena engine (PR 1's optimised path) vs through
/// one shared exploration (`ModelChecker::check_many`).
fn compare_multiquery(
    name: &str,
    function: &tmg_minic::Function,
    bound: u128,
    cap: usize,
) -> Comparison {
    let lowered = build_cfg(function);
    let plan = PartitionPlan::compute(&lowered, bound);
    let queries: Vec<PathQuery> = HybridGenerator::new()
        .goals(&lowered, &plan)
        .into_iter()
        .filter_map(|g| match g.kind {
            GoalKind::RegionPath(path) => Some(PathQuery::new(path.decisions)),
            GoalKind::BlockExecution(_) => None,
        })
        .take(cap)
        .collect();
    let checker = ModelChecker::new();
    let (before, single) = best_of(BEST_OF, || {
        queries
            .iter()
            .map(|q| checker.find_test_data(function, q).outcome)
            .collect::<Vec<_>>()
    });
    let (after, batched) = best_of(BEST_OF, || {
        checker
            .check_many(function, &queries)
            .into_iter()
            .map(|r| r.outcome)
            .collect::<Vec<_>>()
    });
    Comparison {
        name: name.to_owned(),
        before,
        after,
        identical_results: single == batched,
    }
}

/// A module shaped like the slicing sweet spot: a narrow needle chain over
/// `key` interleaved with wide-domain branches over auxiliary inputs no
/// query mentions.  The batch queries only the `key` decisions, so the
/// cone-of-influence slice drops the auxiliary branches — and with them the
/// `21 × 21 × 6`-way domain splits the full model pays on every run.
fn sliced_probe_function() -> tmg_minic::Function {
    parse_function(
        r#"
        void sliced_probe(int key __range(0, 2000), int aux0 __range(0, 20), int aux1 __range(0, 20), char sel __range(0, 5)) {
            if (key == 777) { hit0(); }
            if (aux0 > 10) { a0(); } else { b0(); }
            if (key == 1500) { hit1(); }
            if (aux1 > 4) { a1(); } else { b1(); }
            switch (sel) { case 0: s0(); break; case 3: s3(); break; default: sd(); break; }
            if (key < 0) { never(); }
        }
    "#,
    )
    .expect("sliced-probe module parses")
}

/// The slicing workload: a batch whose statement union covers only the
/// `key` branches of [`sliced_probe_function`], answered by the same
/// checker with slicing disabled (full model, the pre-tentpole behaviour)
/// versus enabled (cone-of-influence slice + full-model witness
/// completion).  Every outcome — verdict, witness vector, step count —
/// must be bit-identical.
fn compare_sliced_vs_full() -> Comparison {
    use tmg_minic::ast::Stmt;
    let function = sliced_probe_function();
    let mut key_branches = Vec::new();
    function.for_each_stmt(&mut |s| {
        if let Stmt::If { id, cond, .. } = s {
            if cond.referenced_vars().contains(&"key") {
                key_branches.push(*id);
            }
        }
    });
    assert_eq!(key_branches.len(), 3, "three key branches expected");
    let mut queries = Vec::new();
    use tmg_minic::interp::BranchChoice;
    for c0 in [BranchChoice::Then, BranchChoice::Else] {
        for c1 in [BranchChoice::Then, BranchChoice::Else] {
            queries.push(PathQuery::new(vec![
                (key_branches[0], c0),
                (key_branches[1], c1),
                (key_branches[2], BranchChoice::Else),
            ]));
        }
    }
    let full = ModelChecker::new().with_slicing(false);
    let sliced = ModelChecker::new();
    let (before, full_outcomes) = best_of(BEST_OF, || {
        full.check_many(&function, &queries)
            .into_iter()
            .map(|r| r.outcome)
            .collect::<Vec<_>>()
    });
    let (after, sliced_outcomes) = best_of(BEST_OF, || {
        sliced
            .check_many(&function, &queries)
            .into_iter()
            .map(|r| r.outcome)
            .collect::<Vec<_>>()
    });
    Comparison {
        name: "checker_sliced_vs_full".to_owned(),
        before,
        after,
        identical_results: full_outcomes == sliced_outcomes,
    }
}

/// The thread-scaling workload: the shard-triggering heavy batch explored
/// with one worker versus the machine's available parallelism, results
/// bit-identical by the deterministic reduction.  On a single-core host the
/// two runs execute the same shard schedule and the ratio hovers around
/// 1.0×; the speedup column is the point of the workload on multi-core
/// hosts.
fn compare_shard_scaling() -> Comparison {
    use tmg_tsys::{encode_function, MultiQueryEngine, Optimisations, PreparedModel};
    let function = checker_heavy_function();
    let lowered = build_cfg(&function);
    let paths = tmg_cfg::enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 256)
        .expect("heavy paths enumerate");
    let queries: Vec<PathQuery> = paths
        .into_iter()
        .map(|p| PathQuery::new(p.decisions))
        .collect();
    let checker = ModelChecker::new();
    let model = encode_function(&function, &Optimisations::all().encode_options());
    let prepared = PreparedModel::new(&model);
    // Two workers minimum even on a single-core host, so the recorded
    // bit-identity evidence genuinely exercises a multi-worker schedule
    // (the wall-clock speedup column is still what multi-core hosts see).
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2);
    let collect = |engine: &MultiQueryEngine| {
        (0..queries.len())
            .map(|q| engine.outcome(q))
            .collect::<Vec<_>>()
    };
    let (before, sequential) = best_of(BEST_OF, || {
        collect(&MultiQueryEngine::explore_with_threads(
            &checker, &prepared, &queries, 1,
        ))
    });
    let (after, parallel) = best_of(BEST_OF, || {
        collect(&MultiQueryEngine::explore_with_threads(
            &checker, &prepared, &queries, threads,
        ))
    });
    Comparison {
        name: "checker_shard_scaling".to_owned(),
        before,
        after,
        identical_results: sequential == parallel && sequential.iter().all(|o| o.is_some()),
    }
}

/// The Figure-2/3 sweep workload: the pre-optimisation per-bound
/// `PartitionPlan::compute` sweep versus the incremental region-tree event
/// walk over the shared `PathCounts` artifact, on a TargetLink-sized
/// generated function.  Points must be bit-identical.
fn compare_tradeoff_sweep(target_blocks: usize) -> Comparison {
    let generated = generate_automotive(&AutomotiveConfig {
        target_blocks,
        ..AutomotiveConfig::default()
    });
    let lowered = build_cfg(&generated.function);
    let bounds = log_spaced_bounds(1_000_000);
    let (before, reference) = best_of(BEST_OF, || sweep_path_bounds_reference(&lowered, &bounds));
    let (after, incremental) = best_of(BEST_OF, || sweep_path_bounds(&lowered, &bounds));
    Comparison {
        name: "tradeoff_sweep".to_owned(),
        before,
        after,
        identical_results: reference == incremental,
    }
}

/// The repeated-analysis workload: `runs` full pipeline invocations on the
/// unchanged wiper controller, storeless (every invocation recomputes every
/// stage) versus through one shared [`ArtifactStore`] (the first invocation
/// computes, the rest are served from the bound artifact).  Reports must be
/// bit-identical run for run.
fn compare_pipeline_cached(runs: usize) -> Comparison {
    let wiper = wiper_function();
    let bound = crate::wiper_case_bound();
    let storeless = WcetAnalysis::new(bound);
    let (before, plain_reports) = best_of(BEST_OF, || {
        (0..runs)
            .map(|_| storeless.analyse(&wiper).expect("analysis"))
            .collect::<Vec<_>>()
    });
    let (after, cached_reports) = best_of(BEST_OF, || {
        // A fresh store per repetition batch, so every timed sample pays
        // exactly one cold run plus `runs - 1` cached ones.
        let analysis = WcetAnalysis::new(bound).with_store(Arc::new(ArtifactStore::new()));
        (0..runs)
            .map(|_| analysis.analyse(&wiper).expect("analysis"))
            .collect::<Vec<_>>()
    });
    Comparison {
        name: "pipeline_cached".to_owned(),
        before,
        after,
        identical_results: plain_reports == cached_reports,
    }
}

/// The PR-8 tentpole workload: re-analysing a 50-function call-DAG module
/// after a localised one-function edit.  `before` = a from-scratch module
/// composition of the edited module on a fresh store (what re-analysis cost
/// without summaries); `after` = the differential path — a store primed
/// with the pristine module (untimed), then one `analyse_module` of the
/// edited module, which may recompute only the edit's reverse-call-graph
/// cone.  `identical_results` requires the differential report to be
/// bit-identical to the from-scratch one *and* the store counters to prove
/// the confinement: exactly one re-lower (the edited function) and exactly
/// `cone` re-measures per differential run, nothing outside.
fn compare_module_edit_differential() -> Comparison {
    use tmg_cfg::CallGraph;
    use tmg_codegen::{generate_module, ModuleGenConfig};
    use tmg_core::{ModuleAnalysis, Stage};

    let module = generate_module(&ModuleGenConfig::bench());
    let graph = CallGraph::build(&module.program);
    // A localised edit: the largest dirty cone still within an eighth of
    // the module (a 50-function module edit typically dirties a handful).
    let (edit, cone) = (0..graph.len())
        .map(|i| (i, graph.dirty_cone(&[i])))
        .filter(|(_, cone)| cone.len() <= graph.len() / 8)
        .max_by_key(|(_, cone)| cone.len())
        .expect("the seeded module has a localised edit target");
    let edited = module.edited(edit);

    let (before, scratch) = best_of(BEST_OF, || {
        ModuleAnalysis::new(4)
            .with_store(Arc::new(ArtifactStore::new()))
            .analyse_module(&edited.program)
            .expect("from-scratch module analysis")
    });

    let mut after = Duration::MAX;
    let mut confined = true;
    let mut differential = None;
    for _ in 0..BEST_OF {
        // Untimed priming: the pristine module fills the summary store, as
        // it would be after the previous successful analysis run.
        let store = Arc::new(ArtifactStore::new());
        let analysis = ModuleAnalysis::new(4).with_store(store.clone());
        analysis
            .analyse_module(&module.program)
            .expect("prime the store");
        let primed = store.store_stats();
        let (wall, diff) = timed(|| {
            analysis
                .analyse_module(&edited.program)
                .expect("differential module analysis")
        });
        after = after.min(wall);
        let warm = store.store_stats();
        let delta = |stage: Stage| warm.stage(stage).misses - primed.stage(stage).misses;
        confined &= diff.recomputed().len() == cone.len()
            && diff.summaries_reused == graph.len() - cone.len()
            && delta(Stage::Lower) == 1
            && delta(Stage::Measure) == cone.len() as u64;
        differential = Some(diff);
    }
    let differential = differential.expect("at least one differential run");
    Comparison {
        name: "module_edit_differential".to_owned(),
        before,
        after,
        identical_results: confined
            && differential.reports == scratch.reports
            && differential.module_key == scratch.module_key
            && differential.roots == scratch.roots,
    }
}

/// A scratch cache directory under the system temp dir, wiped on entry.
fn scratch_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmg-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole workload: a *fresh process's* analysis of an unchanged
/// function served from the on-disk artifact cache.  `before` = cold run
/// (empty cache directory, every stage computed and persisted); `after` =
/// warm run through a brand-new [`PersistentStore`] over the populated
/// directory (no shared memory with the writer — the in-test equivalent of
/// a second process).  The disk-served bound must be bit-identical, with
/// zero stage recomputation.
fn compare_service_cold_vs_warm() -> Comparison {
    let wiper = wiper_function();
    let bound = crate::wiper_case_bound();
    let root = scratch_cache("cold-warm");
    let (before, cold_report) = best_of(BEST_OF, || {
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
        WcetAnalysis::new(bound)
            .with_store(store)
            .analyse(&wiper)
            .expect("cold analysis")
    });
    // The last cold sample left the directory populated.  The zero-
    // recomputation check reads the counter snapshot *after* the timed
    // region: `stats()` walks the disk index, which is not part of serving
    // the answer.
    let (after, warm) = best_of(BEST_OF, || {
        let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
        let report = WcetAnalysis::new(bound)
            .with_store(store.clone())
            .analyse(&wiper)
            .expect("warm analysis");
        (report, store)
    });
    let (warm_report, warm_store) = warm;
    let warm_computes = warm_store.stats().total_computes();
    let _ = std::fs::remove_dir_all(&root);
    Comparison {
        name: "service_cold_vs_warm".to_owned(),
        before,
        after,
        identical_results: cold_report == warm_report && warm_computes == 0,
    }
}

/// A deterministic synthetic bound artifact for the storage-tier workloads
/// (content-addressed: one key, one payload, forever).
fn synthetic_report(i: u64) -> AnalysisReport {
    AnalysisReport {
        function: format!("bench_fn_{i}"),
        path_bound: 1 + u128::from(i % 7),
        segments: 3 + (i % 5) as usize,
        instrumentation_points: 6 + (i % 4) as usize,
        measurements: 20 + u128::from(i) * 3,
        goals: 7 + (i % 3) as usize,
        heuristic_covered: 4,
        checker_covered: 2,
        infeasible: 1,
        unknown: 0,
        measurement_runs: 2 + (i % 4) as usize,
        wcet_bound: 750 + i * 29,
        exhaustive_max: if i.is_multiple_of(2) {
            Some(700 + i * 29)
        } else {
            None
        },
    }
}

/// The zero-copy warm-read workload: `before` = the retired one-file-per-
/// artifact disk layout (one `open` + `read` + owned frame decode per warm
/// hit, reconstructed inline), `after` = the segment log (one shared fd,
/// `pread` into a pooled arena buffer, borrowed `BoundView` decode).  Both
/// sides serve the same 224 synthetic bound artifacts and every payload is
/// verified bit-identical outside the timed region.
fn compare_warm_read_zero_copy() -> Comparison {
    const ARTIFACTS: u64 = 224;
    // Before: one frame file per artifact, the PR 5/6 layout.
    let files_root = scratch_cache("zerocopy-files");
    std::fs::create_dir_all(&files_root).expect("create file-index dir");
    let frame_path = |i: u64| files_root.join(format!("{i:016x}.tmga"));
    for i in 0..ARTIFACTS {
        let artifact = BoundArtifact {
            key: i,
            report: synthetic_report(i),
        };
        std::fs::write(frame_path(i), codec::encode_bound(&artifact)).expect("write frame");
    }
    let (before, file_sum) = best_of(BEST_OF, || {
        (0..ARTIFACTS)
            .map(|i| {
                let bytes = std::fs::read(frame_path(i)).expect("read frame");
                codec::decode_bound(&bytes, i)
                    .expect("decode")
                    .report
                    .wcet_bound
            })
            .sum::<u64>()
    });

    // After: the same artifacts in the segment log, served zero-copy.
    let root = scratch_cache("zerocopy-log");
    let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
    for i in 0..ARTIFACTS {
        store.put_bound(i, synthetic_report(i));
    }
    store.flush();
    let (after, log_sum) = best_of(BEST_OF, || {
        (0..ARTIFACTS)
            .map(|i| store.with_bound_view(i, |view| view.expect("warm hit").wcet_bound))
            .sum::<u64>()
    });
    let payloads_identical = (0..ARTIFACTS).all(|i| {
        store.with_bound_view(i, |view| view.map(|v| v.to_report())) == Some(synthetic_report(i))
    });
    let _ = std::fs::remove_dir_all(&files_root);
    let _ = std::fs::remove_dir_all(&root);
    Comparison {
        name: "warm_read_zero_copy".to_owned(),
        before,
        after,
        identical_results: file_sum == log_sum && payloads_identical,
    }
}

/// The shared-cache workload: a second OS process pointed at the same
/// `TMG_CACHE_DIR` must start fully warm.  `before` = the cold first
/// process (computes and persists every stage for four functions);
/// `after` = a brand-new store over the same directory — no shared memory,
/// the in-bench equivalent of the second process — analysing the same four.
/// `identical_results` demands bit-identical reports *and* a zero warm
/// recompute counter.
fn compare_multi_process_warm_start() -> Comparison {
    let sources = [
        "void m0(char a __range(0, 4)) { if (a > 2) { x(); } else { y(); } if (a == 0) { z(); } }",
        "void m1(char b __range(0, 5)) { if (b > 3) { p(); } if (b < 1) { q(); } }",
        "void m2(char c __range(0, 3), bool g) { if (g) { if (c > 1) { r(); } } else { s(); } }",
        "void m3(char d __range(0, 6)) { if (d > 4) { hi(); } else { if (d > 1) { mid(); } else { lo(); } } }",
    ];
    let functions: Vec<tmg_minic::Function> = sources
        .iter()
        .map(|s| parse_function(s).expect("parse"))
        .collect();
    let root = scratch_cache("multiproc");
    let (before, cold_reports) = best_of(BEST_OF, || {
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
        functions
            .iter()
            .map(|f| {
                WcetAnalysis::new(4)
                    .with_store(store.clone())
                    .analyse(f)
                    .expect("cold analysis")
            })
            .collect::<Vec<_>>()
    });
    let (after, warm) = best_of(BEST_OF, || {
        let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
        let reports = functions
            .iter()
            .map(|f| {
                WcetAnalysis::new(4)
                    .with_store(store.clone())
                    .analyse(f)
                    .expect("warm analysis")
            })
            .collect::<Vec<_>>();
        (reports, store)
    });
    let (warm_reports, warm_store) = warm;
    let warm_computes = warm_store.stats().total_computes();
    let _ = std::fs::remove_dir_all(&root);
    Comparison {
        name: "multi_process_warm_start".to_owned(),
        before,
        after,
        identical_results: cold_reports == warm_reports && warm_computes == 0,
    }
}

/// The compaction workload: two generations of 64 artifacts land in one
/// default-sized segment (the second generation kills the first), a fresh
/// store force-compacts the half-dead segment, and every live key is read
/// back bit-identically through the zero-copy route.  State is rebuilt
/// outside the timed region for each of the [`BEST_OF`] runs; the writer's
/// group-commit counters are captured after its final `flush`.
fn measure_segment_tier() -> SegmentTierReport {
    const KEYS: u64 = 64;
    let root = scratch_cache("segment-tier");
    let mut best = Duration::MAX;
    let mut group_commit_batches = 0;
    let mut group_commit_window_ms = 0;
    let mut dead_bytes_before = 0;
    let mut dead_bytes_after = 0;
    let mut compactions = 0;
    let mut compacted_frames = 0;
    let mut zero_copy_hits = 0;
    let mut identical = true;
    for _ in 0..BEST_OF {
        // Untimed seeding: rebuild the half-dead segment from scratch.
        let _ = std::fs::remove_dir_all(&root);
        let writer = PersistentStore::open(&root).expect("open cache");
        for _ in 0..2 {
            for i in 0..KEYS {
                writer.put_bound(3000 + i, synthetic_report(i));
            }
        }
        writer.flush();
        let seg = writer.stats().segment;
        group_commit_batches = seg.group_commit_batches;
        group_commit_window_ms = seg.group_commit_window_ms;
        drop(writer);

        let store = PersistentStore::open(&root).expect("open cache");
        dead_bytes_before = store.stats().segment.dead_bytes;
        let start = Instant::now();
        store.compact();
        best = best.min(start.elapsed());
        let seg = store.stats().segment;
        dead_bytes_after = seg.dead_bytes;
        compactions = seg.compactions;
        compacted_frames = seg.compacted_frames;
        identical &= (0..KEYS).all(|i| {
            store.with_bound_view(3000 + i, |view| view.map(|v| v.to_report()))
                == Some(synthetic_report(i))
        });
        zero_copy_hits = store.stats().segment.zero_copy_hits;
    }
    let _ = std::fs::remove_dir_all(&root);
    SegmentTierReport {
        dead_bytes_before,
        dead_bytes_after,
        compactions,
        compacted_frames,
        group_commit_batches,
        group_commit_window_ms,
        zero_copy_hits,
        wall: best,
        identical: identical && dead_bytes_after < dead_bytes_before && compactions >= 1,
    }
}

/// The scheduler workload: a duplicate-heavy `analyse` burst through the
/// JSON-lines server — one scheduler worker versus a full pool (in-flight
/// duplicates deduplicate either way).  Responses must be identical
/// line-for-line.
fn compare_service_concurrent_burst() -> Comparison {
    use std::io::Cursor;
    let sources = [
        "void c0(char a __range(0, 4)) { if (a > 2) { x(); } else { y(); } if (a == 0) { z(); } }",
        "void c1(char b __range(0, 5)) { if (b > 3) { p(); } if (b < 1) { q(); } }",
        "void c2(char c __range(0, 3), bool g) { if (g) { if (c > 1) { r(); } } else { s(); } }",
        "void c3(char d __range(0, 6)) { switch (d) { case 0: a0(); break; case 3: a3(); break; default: ad(); break; } }",
    ];
    let mut script = String::new();
    let mut id = 0;
    // One shared pinned trace_id: dedup waiters echo the leader's trace,
    // so distinct per-request ids would make the response lines depend on
    // which duplicate won the race to be scheduled first.
    for _ in 0..3 {
        for (i, src) in sources.iter().enumerate() {
            id += 1;
            let _ = writeln!(
                script,
                "{{\"id\": {id}, \"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": {}}}",
                src.replace('"', "\\\""),
                [2u32, 4][i % 2]
            );
        }
    }
    let _ = writeln!(
        script,
        "{{\"id\": {}, \"trace_id\": 1, \"op\": \"shutdown\"}}",
        id + 1
    );

    let run_burst = |workers: usize, tag: &str| {
        let root = scratch_cache(tag);
        let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
        let mut out = Vec::new();
        let summary = Server::new(store)
            .with_workers(workers)
            .serve(Cursor::new(script.clone()), &mut out)
            .expect("serve burst");
        let _ = std::fs::remove_dir_all(&root);
        let mut lines: Vec<String> = String::from_utf8(out)
            .expect("utf-8 responses")
            .lines()
            .map(str::to_owned)
            .collect();
        lines.sort();
        (summary, lines)
    };
    // The burst is a ~2 ms workload whose two sides differ by well under
    // the run-to-run noise of thread spawning and tmpfs traffic; double the
    // sampling so the recorded minimum reflects the scheduler, not the
    // noise floor.
    let (before, (_, sequential)) = best_of(BEST_OF * 2, || run_burst(1, "burst-seq"));
    let (after, (summary, concurrent)) = best_of(BEST_OF * 2, || run_burst(8, "burst-par"));
    Comparison {
        name: "service_concurrent_burst".to_owned(),
        before,
        after,
        identical_results: sequential == concurrent && summary.responses == id as u64 + 1,
    }
}

/// The fault-tolerance tentpole workload, measured over real loopback
/// sockets: the deterministic mixed request stream (duplicate-heavy,
/// cache-hostile, deadline-violating) through [`Server::serve_tcp`].  Each
/// sample is a complete session — bind, worker pool, pipelined clients,
/// drain, flush.  All samples share one cache root, so the first 1-worker
/// sample pays the cold computes and everything after measures the
/// scheduler and transport, not the checker.
fn measure_service_loadtest() -> ServiceLoadtest {
    use crate::loadtest::{loadtest, saturate, LoadtestConfig};
    const REQUESTS: usize = 400;
    let root = scratch_cache("loadtest");
    let config = |workers: usize, connections: usize| LoadtestConfig {
        requests: REQUESTS,
        connections,
        workers,
        cache_root: Some(root.clone()),
        ..LoadtestConfig::default()
    };
    let best = |workers: usize, connections: usize| {
        let mut best: Option<crate::LoadtestReport> = None;
        for _ in 0..BEST_OF {
            let run = loadtest(&config(workers, connections));
            if best.as_ref().is_none_or(|b| run.wall < b.wall) {
                best = Some(run);
            }
        }
        best.expect("at least one run")
    };
    let one = best(1, 2);
    let many = best(8, 4);
    let shed = saturate(60);
    let _ = std::fs::remove_dir_all(&root);
    ServiceLoadtest {
        requests: REQUESTS as u64,
        one_worker_wall: one.wall,
        wall: many.wall,
        throughput_rps: many.throughput_rps,
        p99_analyse_ms: many.p99_analyse_ms,
        deduplicated: many.summary.deduplicated,
        expired: many.summary.expired,
        shed_under_saturation: shed.summary.shed,
        identical_across_workers: one.response_lines == many.response_lines,
    }
}

/// Startup recovery-scan cost on a healthy populated cache: what every
/// process pays before serving when crash recovery is on.  `healthy` also
/// re-checks the post-scan warm path (bit-identical, zero recomputation).
fn measure_service_recovery() -> ServiceRecovery {
    let wiper = wiper_function();
    let bound = crate::wiper_case_bound();
    let root = scratch_cache("recovery");
    let cold = {
        let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
        WcetAnalysis::new(bound)
            .with_store(store)
            .analyse(&wiper)
            .expect("populate cache")
    };
    let (wall, report) = best_of(BEST_OF, || {
        PersistentStore::open(&root)
            .expect("reopen cache")
            .recovery_scan()
    });
    let fresh = Arc::new(PersistentStore::open(&root).expect("reopen cache"));
    fresh.recovery_scan();
    let warm = WcetAnalysis::new(bound)
        .with_store(fresh.clone())
        .analyse(&wiper)
        .expect("post-scan warm analysis");
    let healthy = report.quarantined == 0 && warm == cold && fresh.stats().total_computes() == 0;
    let _ = std::fs::remove_dir_all(&root);
    ServiceRecovery {
        frames: report.scanned,
        quarantined: report.quarantined,
        wall,
        healthy,
    }
}

/// The observability tax: one full cold WCET pipeline (fresh in-memory
/// store every run, so every stage actually executes and records its
/// span) with span tracing *enabled* (`before`) vs *disabled* (`after`).
/// The speedup column is therefore the live cost of tracing on the
/// instrumented hot path, and `identical_results` asserts both the
/// report equality and that the traced side really recorded spans.  The
/// disabled side is also the configuration every other workload in this
/// baseline runs under, so the pre-instrumentation floors recorded in
/// `BENCH_pr8.json` double as the regression guard for the
/// tracing-disabled overhead (contract: <= 2%).
fn compare_obs_overhead() -> Comparison {
    let function = wiper_function();
    let bound = crate::wiper_case_bound();
    let run = || {
        let store: Arc<dyn TieredStore> = Arc::new(ArtifactStore::new());
        WcetAnalysis::new(bound)
            .with_store(store)
            .analyse(&function)
            .expect("obs-overhead analysis")
    };
    tmg_obs::set_enabled(true);
    let (before, traced_report) = best_of(BEST_OF, run);
    let traced_spans = tmg_obs::drain_all().len();
    tmg_obs::set_enabled(false);
    let (after, plain_report) = best_of(BEST_OF, run);
    Comparison {
        name: "obs_overhead".to_owned(),
        before,
        after,
        identical_results: traced_report == plain_report && traced_spans > 0,
    }
}

/// Runs the quick chaos soak (every assertion lives in [`crate::chaos`])
/// and summarises it for the baseline JSON.  Spawns this binary as the
/// server process, so it only runs from `reproduce -- bench`.
fn measure_chaos_soak() -> ChaosSoak {
    let report = crate::chaos(&crate::ChaosConfig::quick());
    ChaosSoak {
        requests: report.requests,
        kills: report.kills,
        max_recovery: report.max_recovery(),
        wire_faults_fired: report.wire_faults_fired(),
        restart_computes: report.restart_computes,
        verified_identical: report.verified_identical,
        wall: report.wall,
    }
}

/// Times the same warm request over a bare socket and through
/// `tmg-client` against one live in-process server: the retry/hedging
/// layer's happy-path cost, with the answers checked identical.
fn measure_client_retry_overhead() -> ClientRetryOverhead {
    use std::io::{BufRead, BufReader, Write as _};
    const REQUESTS: usize = 200;
    let root = std::env::temp_dir().join(format!("tmg-client-overhead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(PersistentStore::open(&root).expect("open cache"));
    let server = Server::new(store);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    // The trace_id is pinned: the server would otherwise echo a fresh
    // auto-assigned id per request, and the client's bit-identity check
    // (rightly) flags repeat answers for one body that differ at all.
    let body = format!(
        "\"trace_id\": 1, \"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2",
        tmg_service::json::escape(crate::loadtest::HOT_SOURCE)
    );

    let (raw_wall, client_wall, identical) = std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || server.serve_tcp(listener).expect("serve_tcp"));

        // Raw side: one socket, synchronous round trips.  The first
        // request warms the cache and is excluded from both sides.
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        let mut raw_answer = String::new();
        let mut round_trip = |id: usize| {
            writer
                .write_all(format!("{{\"id\": {id}, {body}}}\n").as_bytes())
                .expect("send request");
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read response") > 0);
            line.trim_end().to_owned()
        };
        round_trip(1_000_000);
        let (raw_wall, _) = timed(|| {
            for i in 0..REQUESTS {
                raw_answer = round_trip(1_000_001 + i);
            }
        });

        // Client side: the full resilience stack on its happy path.
        let client = tmg_client::Client::new(addr, tmg_client::ClientConfig::default());
        let mut client_answer = String::new();
        let (client_wall, _) = timed(|| {
            for _ in 0..REQUESTS {
                client_answer = client.request(&body).expect("client request").normalized();
            }
        });
        let stats = client.stats();
        assert_eq!(stats.retries, 0, "the warm happy path must never retry");
        assert_eq!(stats.connects, 1, "the connection must be reused");

        writer
            .write_all(b"{\"id\": 2000000, \"op\": \"shutdown\"}\n")
            .expect("send shutdown");
        handle.join().expect("server thread");
        let identical = tmg_client::normalize(&raw_answer) == client_answer;
        (raw_wall, client_wall, identical)
    });
    let _ = std::fs::remove_dir_all(&root);
    ClientRetryOverhead {
        requests: REQUESTS as u64,
        raw_wall,
        client_wall,
        identical,
    }
}

/// Produces the complete perf baseline (the payload of
/// `BENCH_<`[`PR_LABEL`]`>.json`).
pub fn perf_report() -> PerfReport {
    // Table 1: partitioning sweep.
    let (table1_wall, table1_rows) = best_of(BEST_OF, table1);
    let table1_matches_paper = table1_rows == table1_paper();

    // Figure 2/3: tradeoff sweep on a mid-sized generated function (the full
    // 850-block sweep runs in the criterion benches; the baseline keeps the
    // JSON fast to regenerate).
    let (figure2_3_wall, (stats, _)) = timed(|| figure2_3(400));

    // Table 2: the model-checker ablation.  The Baseline engine it used to
    // measure is gone; the recorded floor anchors `before`, and result
    // stability is checked by running the ablation twice.
    let function = table2_function();
    let query = table2_query(&function);
    let configurations = table2_configurations();
    let run_table2 = || {
        configurations
            .iter()
            .map(|(_, opts)| {
                let checker = ModelChecker::with_optimisations(*opts);
                let result = checker.find_test_data(&function, &query);
                (
                    matches!(result.outcome, CheckOutcome::Feasible { .. }),
                    result.outcome.witness().cloned(),
                )
            })
            .collect::<Vec<_>>()
    };
    let (t2_after, verdicts) = best_of(BEST_OF, run_table2);
    let verdicts_again = run_table2();
    let table2 = Comparison {
        name: "table2_ablation".to_owned(),
        before: recorded_before("table2_ablation"),
        after: t2_after,
        identical_results: verdicts == verdicts_again && verdicts.iter().all(|(f, _)| *f),
    };

    // Test generation: the Section-3 hybrid generator on the case study and
    // on a checker-heavy synthetic module, plus the service workloads.
    let wiper = wiper_function();
    let wiper_bound = crate::wiper_case_bound();
    let heavy = checker_heavy_function();
    let automotive = generate_automotive(&AutomotiveConfig::small(11)).function;
    let mut testgen = vec![
        compare_testgen("testgen_wiper", &wiper, wiper_bound),
        compare_testgen("testgen_checker_heavy", &heavy, 4096),
        compare_testgen("testgen_automotive", &automotive, 64),
        compare_multiquery("checker_multiquery_heavy", &heavy, 4096, 64),
        compare_sliced_vs_full(),
        compare_shard_scaling(),
        compare_tradeoff_sweep(400),
        compare_pipeline_cached(5),
        compare_module_edit_differential(),
        compare_obs_overhead(),
    ];

    // End-to-end pipeline: the optimised path timed against the recorded
    // floor, report verified against the in-tree reference generator.
    // Measured *before* the service workloads: the burst comparison spawns
    // scheduler threads and touches the filesystem, which skews a
    // milliseconds-scale wall-clock sample taken right after it.
    let mut reference_analysis = WcetAnalysis::new(wiper_bound);
    reference_analysis.generator = HybridGenerator::new().sequential().unbatched();
    let after_analysis = WcetAnalysis::new(wiper_bound);
    let (pipe_after, report_after) = best_of(BEST_OF, || {
        after_analysis.analyse(&wiper).expect("analysis")
    });
    let report_reference = reference_analysis.analyse(&wiper).expect("analysis");
    let pipeline = Comparison {
        name: "wcet_pipeline_wiper".to_owned(),
        before: recorded_before("wcet_pipeline_wiper"),
        after: pipe_after,
        identical_results: report_reference == report_after,
    };

    // The service workloads run last (see above).
    testgen.push(compare_service_cold_vs_warm());
    testgen.push(compare_warm_read_zero_copy());
    testgen.push(compare_multi_process_warm_start());
    testgen.push(compare_service_concurrent_burst());
    let service_loadtest = measure_service_loadtest();
    let service_recovery = measure_service_recovery();
    let segment_tier = measure_segment_tier();
    let chaos_soak = measure_chaos_soak();
    let client_retry_overhead = measure_client_retry_overhead();

    // Case study summary (optimised path).
    let (case_study_wall, case) = timed(case_study);

    PerfReport {
        table1_wall,
        table1_rows,
        table1_matches_paper,
        figure2_3_wall,
        figure2_3_blocks: stats.blocks,
        case_study_wall,
        case_study_wcet: case.wcet_bound,
        case_study_exhaustive: case.exhaustive_max,
        table2,
        testgen,
        pipeline,
        service_loadtest,
        service_recovery,
        segment_tier,
        chaos_soak,
        client_retry_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_heavy_module_parses_and_partitions() {
        let f = checker_heavy_function();
        let lowered = build_cfg(&f);
        assert!(lowered.regions.root().path_count > 8);
    }

    #[test]
    fn every_recorded_floor_is_positive_and_named_once() {
        let mut names: Vec<&str> = RECORDED_BEFORE_MS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RECORDED_BEFORE_MS.len());
        for (name, _) in RECORDED_BEFORE_MS {
            assert!(recorded_before(name) > Duration::ZERO);
        }
    }

    #[test]
    fn tradeoff_sweep_comparison_is_identical_on_a_small_function() {
        let c = compare_tradeoff_sweep(60);
        assert!(
            c.identical_results,
            "incremental sweep must be bit-identical"
        );
        assert_eq!(c.name, "tradeoff_sweep");
    }

    #[test]
    fn module_edit_differential_comparison_is_identical() {
        let c = compare_module_edit_differential();
        assert!(
            c.identical_results,
            "the differential report must be bit-identical to from-scratch \
             with recomputation confined to the dirty cone"
        );
        assert_eq!(c.name, "module_edit_differential");
    }

    #[test]
    fn pipeline_cached_comparison_is_identical() {
        // Result identity is the hard requirement; the speedup itself is
        // recorded by `reproduce bench` (a wall-clock assert here would
        // flake on loaded CI runners).
        let c = compare_pipeline_cached(2);
        assert!(c.identical_results, "cached reports must be bit-identical");
    }

    #[test]
    fn sliced_vs_full_comparison_is_identical() {
        let c = compare_sliced_vs_full();
        assert!(
            c.identical_results,
            "sliced and full-model outcomes must be bit-identical"
        );
        assert_eq!(c.name, "checker_sliced_vs_full");
    }

    #[test]
    fn shard_scaling_comparison_is_identical() {
        let c = compare_shard_scaling();
        assert!(
            c.identical_results,
            "1-thread and N-thread resolutions must be bit-identical"
        );
        assert_eq!(c.name, "checker_shard_scaling");
    }

    #[test]
    fn service_cold_vs_warm_comparison_is_identical() {
        let c = compare_service_cold_vs_warm();
        assert!(
            c.identical_results,
            "the disk-served bound must be bit-identical with zero recomputation"
        );
        assert_eq!(c.name, "service_cold_vs_warm");
    }

    #[test]
    fn service_concurrent_burst_responses_are_identical() {
        let c = compare_service_concurrent_burst();
        assert!(
            c.identical_results,
            "concurrent and sequential scheduling must produce identical responses"
        );
    }

    #[test]
    fn warm_read_zero_copy_comparison_is_identical() {
        let c = compare_warm_read_zero_copy();
        assert!(
            c.identical_results,
            "the segment log must serve every artifact bit-identically"
        );
        assert_eq!(c.name, "warm_read_zero_copy");
    }

    #[test]
    fn multi_process_warm_start_comparison_is_identical() {
        let c = compare_multi_process_warm_start();
        assert!(
            c.identical_results,
            "a second store over the same directory must start fully warm"
        );
        assert_eq!(c.name, "multi_process_warm_start");
    }

    #[test]
    fn segment_tier_measurement_reclaims_dead_bytes() {
        let seg = measure_segment_tier();
        assert!(
            seg.identical,
            "compaction must keep every live key: {seg:?}"
        );
        assert!(seg.dead_bytes_after < seg.dead_bytes_before);
        assert!(seg.compacted_frames >= 1);
        assert!(seg.group_commit_window_ms >= 1);
    }

    #[test]
    fn recovery_scan_measurement_is_healthy_on_a_clean_cache() {
        let rec = measure_service_recovery();
        assert_eq!(rec.frames, 6, "one frame per stage");
        assert_eq!(rec.quarantined, 0);
        assert!(rec.healthy, "post-scan warm path must be bit-identical");
    }

    #[test]
    fn comparison_speedup_is_the_ratio() {
        let c = Comparison {
            name: "x".into(),
            before: Duration::from_millis(300),
            after: Duration::from_millis(100),
            identical_results: true,
        };
        assert!((c.speedup() - 3.0).abs() < 0.01);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = PerfReport {
            table1_wall: Duration::from_millis(1),
            table1_rows: vec![(1, 22, 11)],
            table1_matches_paper: true,
            figure2_3_wall: Duration::from_millis(2),
            figure2_3_blocks: 400,
            case_study_wall: Duration::from_millis(3),
            case_study_wcet: 274,
            case_study_exhaustive: 250,
            table2: Comparison {
                name: "t2".into(),
                before: Duration::from_millis(10),
                after: Duration::from_millis(5),
                identical_results: true,
            },
            testgen: vec![Comparison {
                name: "tg".into(),
                before: Duration::from_millis(10),
                after: Duration::from_millis(4),
                identical_results: true,
            }],
            pipeline: Comparison {
                name: "p".into(),
                before: Duration::from_millis(10),
                after: Duration::from_millis(9),
                identical_results: true,
            },
            service_loadtest: ServiceLoadtest {
                requests: 400,
                one_worker_wall: Duration::from_millis(40),
                wall: Duration::from_millis(20),
                throughput_rps: 20_000.0,
                p99_analyse_ms: 2.048,
                deduplicated: 10,
                expired: 57,
                shed_under_saturation: 40,
                identical_across_workers: true,
            },
            service_recovery: ServiceRecovery {
                frames: 6,
                quarantined: 0,
                wall: Duration::from_millis(1),
                healthy: true,
            },
            segment_tier: SegmentTierReport {
                dead_bytes_before: 4096,
                dead_bytes_after: 0,
                compactions: 1,
                compacted_frames: 64,
                group_commit_batches: 2,
                group_commit_window_ms: 4,
                zero_copy_hits: 64,
                wall: Duration::from_millis(1),
                identical: true,
            },
            chaos_soak: ChaosSoak {
                requests: 120,
                kills: 1,
                max_recovery: Duration::from_millis(72),
                wire_faults_fired: 8,
                restart_computes: 0,
                verified_identical: 51,
                wall: Duration::from_millis(260),
            },
            client_retry_overhead: ClientRetryOverhead {
                requests: 200,
                raw_wall: Duration::from_millis(10),
                client_wall: Duration::from_millis(12),
                identical: true,
            },
        }
        .to_json();
        assert!(report.contains("\"schema\": \"tmg-bench-perf/v1\""));
        assert!(report.contains("\"speedup\""));
        assert!(report.contains("\"service_loadtest\""));
        assert!(report.contains("\"service_recovery_scan\""));
        assert!(report.contains("\"segment_tier\""));
        assert!(report.contains("\"group_commit_window_ms\""));
        assert!(report.contains("\"chaos_soak\""));
        assert!(report.contains("\"client_retry_overhead\""));
        assert!(report.contains("\"max_recovery_ms\""));
        assert_eq!(
            report.matches('{').count(),
            report.matches('}').count(),
            "balanced braces"
        );
    }
}
