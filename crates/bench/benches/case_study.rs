//! Section 4 case study: the wiper controller — partition-based WCET bound
//! versus exhaustive end-to-end measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use tmg_bench::{case_study, wiper_case_bound, wiper_exhaustive_max};
use tmg_cfg::build_cfg;
use tmg_codegen::{wiper_function, wiper_input_space};
use tmg_core::WcetAnalysis;

fn bench_case_study(c: &mut Criterion) {
    let result = case_study();
    eprintln!(
        "Case study | segments {}  ip {}  m {}  WCET bound {} cycles  exhaustive {} cycles  pessimism {:.3} (paper: 274 / 250 = 1.096)",
        result.segments,
        result.instrumentation_points,
        result.measurements,
        result.wcet_bound,
        result.exhaustive_max,
        result.pessimism
    );
    assert!(
        result.wcet_bound >= result.exhaustive_max,
        "the bound must be sound"
    );

    let function = wiper_function();
    let space = wiper_input_space();
    let bound = wiper_case_bound();
    c.bench_function("case_study/full_pipeline", |b| {
        b.iter(|| {
            WcetAnalysis::new(bound)
                .analyse(&function)
                .expect("analysis")
        })
    });
    c.bench_function("case_study/exhaustive_end_to_end", |b| {
        b.iter(wiper_exhaustive_max)
    });
    c.bench_function("case_study/build_cfg_wiper", |b| {
        b.iter(|| build_cfg(&function))
    });
    eprintln!("exhaustive input space: {} vectors", space.len());
}

criterion_group!(benches, bench_case_study);
criterion_main!(benches);
