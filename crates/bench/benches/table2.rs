//! Table 2: impact of the model-state optimisations on the model checker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmg_bench::{table2, table2_configurations, table2_query};
use tmg_codegen::table2::table2_function;
use tmg_tsys::ModelChecker;

fn bench_table2(c: &mut Criterion) {
    for row in table2() {
        eprintln!(
            "Table 2 | {:<28} time {:>9.2} ms  memory {:>10.1} kB  steps {:>4}  transitions {:>9}  state bits {:>4}",
            row.label,
            row.duration.as_secs_f64() * 1e3,
            row.memory_bytes as f64 / 1024.0,
            row.steps.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            row.transitions_fired,
            row.state_bits
        );
    }

    let function = table2_function();
    let query = table2_query(&function);
    let mut group = c.benchmark_group("table2");
    for (label, opts) in table2_configurations() {
        let checker = ModelChecker::with_optimisations(opts);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &checker,
            |b, checker| b.iter(|| checker.find_test_data(&function, &query)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
