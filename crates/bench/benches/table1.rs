//! Table 1: partitioning the Figure-1 example for path bounds 1..=7.

use criterion::{criterion_group, criterion_main, Criterion};
use tmg_bench::{table1, table1_paper};
use tmg_cfg::build_cfg;
use tmg_codegen::figure1_function;
use tmg_core::PartitionPlan;

fn bench_table1(c: &mut Criterion) {
    // Print the reproduced rows once so `cargo bench` output contains them.
    eprintln!("Table 1 (bound, ip, m) ours:  {:?}", table1());
    eprintln!("Table 1 (bound, ip, m) paper: {:?}", table1_paper());
    assert_eq!(table1(), table1_paper(), "Table 1 must reproduce exactly");

    let lowered = build_cfg(&figure1_function(false));
    c.bench_function("table1/partition_figure1_all_bounds", |b| {
        b.iter(|| {
            (1..=7u128)
                .map(|bound| {
                    let plan = PartitionPlan::compute(&lowered, bound);
                    (plan.instrumentation_points(), plan.measurements())
                })
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("table1/build_cfg_figure1", |b| {
        let f = figure1_function(false);
        b.iter(|| build_cfg(&f))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
