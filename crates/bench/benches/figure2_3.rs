//! Figures 2 and 3: the instrumentation-point / measurement tradeoff on a
//! TargetLink-sized generated function.

use criterion::{criterion_group, criterion_main, Criterion};
use tmg_bench::figure2_3;
use tmg_cfg::build_cfg;
use tmg_codegen::{generate_automotive, AutomotiveConfig};
use tmg_core::tradeoff::{log_spaced_bounds, sweep_path_bounds};

fn bench_figure2_3(c: &mut Criterion) {
    let target_blocks = std::env::var("TMG_TARGET_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(850);
    let (stats, sweep) = figure2_3(target_blocks);
    eprintln!(
        "Figure 2/3 function: {} blocks, {} branches, {} lines; ip(b=1) = {}",
        stats.blocks, stats.branches, stats.lines, stats.ip_at_bound_1
    );
    for point in &sweep {
        eprintln!(
            "  b = {:>8}  ip = {:>6}  m = {}",
            point.path_bound, point.instrumentation_points, point.measurements
        );
    }

    let generated = generate_automotive(&AutomotiveConfig {
        target_blocks,
        ..AutomotiveConfig::default()
    });
    let lowered = build_cfg(&generated.function);
    let bounds = log_spaced_bounds(1_000_000);
    c.bench_function("figure2_3/sweep_path_bounds", |b| {
        b.iter(|| sweep_path_bounds(&lowered, &bounds))
    });
    c.bench_function("figure2_3/build_cfg_automotive", |b| {
        b.iter(|| build_cfg(&generated.function))
    });
}

criterion_group!(benches, bench_figure2_3);
criterion_main!(benches);
