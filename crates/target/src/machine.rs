//! The simulated target machine: instrumented execution with a cycle counter.

use crate::compile::CompiledFunction;
use crate::cost::CostModel;
use crate::exec::{CStmt, CTerm, ExecProgram};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use tmg_cfg::{BlockId, Cfg};
use tmg_minic::ast::{Function, StmtId};
use tmg_minic::interp::BranchChoice;
use tmg_minic::value::InputVector;

/// Identity of an instrumentation point within one measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PointId(pub u32);

impl PointId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ip{}", self.0)
    }
}

/// A cycle-counter read placed on one CFG edge.
///
/// On the real target this is a `LDD TCNT; STD buffer` pair inserted at a
/// segment boundary; here it is attached to the control edge the boundary
/// corresponds to, and fires whenever execution crosses that edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentationPoint {
    /// Point identity (unique within one campaign).
    pub id: PointId,
    /// The control edge `(from, to)` the read is placed on.
    pub edge: (BlockId, BlockId),
    /// Human-readable label ("seg3 entry"), for reports.
    pub label: String,
}

/// One cycle-counter reading taken during an instrumented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEvent {
    /// Which instrumentation point fired.
    pub point: PointId,
    /// Counter value at the moment of the read (the cost of the read itself
    /// is charged after recording).
    pub cycles: u64,
}

/// One recorded call statement: `(interned callee name id, evaluated
/// argument values)`, in execution order (see [`Machine::run_recorded`]).
pub(crate) type CallRecord = (u32, Vec<i64>);

/// Complete record of one instrumented run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles of the run (instrumentation overhead included).
    pub cycles: u64,
    /// Branch decisions in execution order — the executed path's identity,
    /// comparable with
    /// [`ExecTrace::branch_signature`](tmg_minic::interp::ExecTrace::branch_signature).
    pub branch_signature: Vec<(StmtId, BranchChoice)>,
    /// Every basic block entered at least once.
    pub executed_blocks: FxHashSet<BlockId>,
    /// Counter readings in execution order (empty for uninstrumented runs).
    pub events: Vec<CounterEvent>,
    /// Value returned by the function, if any.
    pub return_value: Option<i64>,
}

/// Error raised when the target faults during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetError(String);

impl TargetError {
    pub(crate) fn new(message: String) -> TargetError {
        TargetError(message)
    }
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "target fault: {}", self.0)
    }
}

impl std::error::Error for TargetError {}

/// Hard cap on executed blocks per run, guarding against malformed CFGs whose
/// loops lack enforceable bounds.
const MAX_BLOCK_VISITS: u64 = 50_000_000;

/// The simulated machine: a compiled function plus a cost model, executable
/// once per input vector.
///
/// Construction compiles the CFG once; runs are then read-only and the
/// machine is freely shareable across threads (the parallel test-data
/// generator runs many vectors against one machine).
#[derive(Debug, Clone)]
pub struct Machine<'a> {
    cfg: &'a Cfg,
    cost_model: CostModel,
    compiled: CompiledFunction,
    /// The slot-resolved execution program (expressions, statements,
    /// terminators and cycle charges pre-computed out of the hot run loop).
    exec: ExecProgram,
}

impl<'a> Machine<'a> {
    /// Compiles `cfg` for execution under `cost_model`.
    pub fn new(cfg: &'a Cfg, function: &'a Function, cost_model: CostModel) -> Machine<'a> {
        let compiled = CompiledFunction::compile(cfg);
        let exec = ExecProgram::compile(cfg, function, &cost_model, &compiled);
        Machine {
            cfg,
            cost_model,
            compiled,
            exec,
        }
    }

    /// The compiled per-block cycle aggregates.
    pub fn compiled(&self) -> &CompiledFunction {
        &self.compiled
    }

    /// The machine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Executes the function on `inputs` with the given instrumentation
    /// points active.
    ///
    /// Missing parameters default to zero and locals start at their
    /// initialiser (or zero), exactly like the reference interpreter.  Every
    /// time control crosses an edge carrying instrumentation points, one
    /// [`CounterEvent`] per point is recorded (in `points` order) and the
    /// read cost is charged afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TargetError`] on division by zero, on a loop exceeding its
    /// declared bound, or when the run does not terminate within the safety
    /// budget.
    pub fn run(
        &self,
        inputs: &InputVector,
        points: &[InstrumentationPoint],
    ) -> Result<RunResult, TargetError> {
        let mut calls = Vec::new();
        self.run_impl::<false>(inputs, points, &mut calls)
    }

    /// Like [`Machine::run`] without instrumentation, additionally recording
    /// every executed call statement as `(interned callee name id, evaluated
    /// argument values)` in execution order.  The module machine replays
    /// these records to execute defined callees; the recording branch is
    /// monomorphised out of the plain [`Machine::run`] path.
    pub(crate) fn run_recorded(
        &self,
        inputs: &InputVector,
    ) -> Result<(RunResult, Vec<CallRecord>), TargetError> {
        let mut calls = Vec::new();
        let result = self.run_impl::<true>(inputs, &[], &mut calls)?;
        Ok((result, calls))
    }

    /// Name behind an interned callee id of [`Machine::run_recorded`].
    pub(crate) fn interned_name(&self, id: u32) -> &str {
        self.exec.name(id)
    }

    fn run_impl<const RECORD: bool>(
        &self,
        inputs: &InputVector,
        points: &[InstrumentationPoint],
        calls: &mut Vec<CallRecord>,
    ) -> Result<RunResult, TargetError> {
        // Edge → point-ids lookup; built only for instrumented runs so the
        // (hot) heuristic-search path pays nothing.
        let edge_points: Option<FxHashMap<(BlockId, BlockId), Vec<PointId>>> = if points.is_empty()
        {
            None
        } else {
            let mut map: FxHashMap<(BlockId, BlockId), Vec<PointId>> =
                FxHashMap::with_capacity_and_hasher(points.len(), Default::default());
            for p in points {
                map.entry(p.edge).or_default().push(p.id);
            }
            Some(map)
        };

        let exec = &self.exec;
        let mut env: Vec<i64> = vec![0; exec.slot_tys.len()];
        for (name, slot, ty) in exec.params.iter() {
            let raw = inputs.get(name).unwrap_or(0);
            env[*slot as usize] = ty.wrap(raw);
        }
        for (slot, ty, init) in exec.locals.iter() {
            let init = match init {
                Some(id) => exec
                    .eval(*id, &env)
                    .map_err(|f| TargetError(exec.fault_message(f)))?,
                None => 0,
            };
            env[*slot as usize] = ty.wrap(init);
        }

        let mut cycles: u64 = 0;
        let mut events = Vec::new();
        let mut branch_signature = Vec::new();
        let mut executed_blocks =
            FxHashSet::with_capacity_and_hasher(self.cfg.block_count(), Default::default());
        let mut return_value: Option<i64> = None;
        let mut loop_iterations: Vec<u32> = vec![0; exec.loop_count];
        let mut visits: u64 = 0;

        let mut block_id = self.cfg.entry();
        loop {
            visits += 1;
            if visits > MAX_BLOCK_VISITS {
                return Err(TargetError(
                    "run exceeded the block-visit safety budget".to_owned(),
                ));
            }
            executed_blocks.insert(block_id);
            let block = &exec.blocks[block_id.index()];

            // Straight-line body: execute for semantics, charge in one go.
            for stmt in block.stmts.iter() {
                match stmt {
                    CStmt::Assign { slot, ty, value } => {
                        let v = exec
                            .eval(*value, &env)
                            .map_err(|f| TargetError(exec.fault_message(f)))?;
                        env[*slot as usize] = ty.wrap(v);
                    }
                    CStmt::AssignUnknown { name, value } => {
                        exec.eval(*value, &env)
                            .map_err(|f| TargetError(exec.fault_message(f)))?;
                        return Err(TargetError(
                            exec.fault_message(crate::exec::Fault::UnknownStore(*name)),
                        ));
                    }
                    CStmt::EvalArgs { callee, args } => {
                        if RECORD {
                            let mut values = Vec::with_capacity(args.len());
                            for a in args.iter() {
                                values.push(
                                    exec.eval(*a, &env)
                                        .map_err(|f| TargetError(exec.fault_message(f)))?,
                                );
                            }
                            calls.push((*callee, values));
                        } else {
                            for a in args.iter() {
                                exec.eval(*a, &env)
                                    .map_err(|f| TargetError(exec.fault_message(f)))?;
                            }
                        }
                    }
                    CStmt::Return { value } => {
                        if let Some(id) = value {
                            return_value = Some(
                                exec.eval(*id, &env)
                                    .map_err(|f| TargetError(exec.fault_message(f)))?,
                            );
                        }
                    }
                }
            }
            cycles += block.body_cycles;

            // Terminator: pick the successor, charge the taken outcome.
            let next = match &block.term {
                CTerm::Halt => break,
                CTerm::Jump { dest } => {
                    cycles += block.term_costs[0];
                    *dest
                }
                CTerm::Return { exit } => {
                    cycles += block.term_costs[0];
                    *exit
                }
                CTerm::Branch {
                    stmt,
                    cond,
                    then_dest,
                    else_dest,
                    looping,
                } => {
                    let taken = exec
                        .eval(*cond, &env)
                        .map_err(|f| TargetError(exec.fault_message(f)))?
                        != 0;
                    let choice = match (looping.is_some(), taken) {
                        (true, true) => BranchChoice::LoopIterate,
                        (true, false) => BranchChoice::LoopExit,
                        (false, true) => BranchChoice::Then,
                        (false, false) => BranchChoice::Else,
                    };
                    if let Some((index, bound)) = looping {
                        let iters = &mut loop_iterations[*index as usize];
                        if taken {
                            *iters += 1;
                            if *iters > *bound {
                                return Err(TargetError(format!(
                                    "loop {stmt} exceeded its declared bound of {bound} iterations"
                                )));
                            }
                        } else {
                            *iters = 0;
                        }
                    }
                    branch_signature.push((*stmt, choice));
                    cycles += block.term_costs[usize::from(!taken)];
                    if taken {
                        *then_dest
                    } else {
                        *else_dest
                    }
                }
                CTerm::Switch {
                    stmt,
                    selector,
                    arms,
                    default_dest,
                } => {
                    let sel = exec
                        .eval(*selector, &env)
                        .map_err(|f| TargetError(exec.fault_message(f)))?;
                    let matched = arms.iter().position(|(value, _)| *value == sel);
                    let (choice, outcome, dest) = match matched {
                        Some(i) => (BranchChoice::Case(arms[i].0), i, arms[i].1),
                        None => (BranchChoice::Default, arms.len(), *default_dest),
                    };
                    branch_signature.push((*stmt, choice));
                    cycles += block.term_costs[outcome];
                    dest
                }
            };

            // Instrumentation reads on the crossed edge.
            if let Some(map) = &edge_points {
                if let Some(ids) = map.get(&(block_id, next)) {
                    for &point in ids {
                        events.push(CounterEvent { point, cycles });
                        cycles += self.cost_model.read_cycle_counter;
                    }
                }
            }
            block_id = next;
        }

        Ok(RunResult {
            cycles,
            branch_signature,
            executed_blocks,
            events,
            return_value,
        })
    }

    /// End-to-end execution time of an uninstrumented run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn end_to_end_cycles(&self, inputs: &InputVector) -> Result<u64, TargetError> {
        self.run(inputs, &[]).map(|r| r.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_minic::value::InputVector;
    use tmg_minic::{parse_function, parse_program, Interpreter};

    fn machine_for(src: &str) -> (Function, tmg_cfg::LoweredFunction) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        (f, lowered)
    }

    #[test]
    fn branch_signature_matches_the_reference_interpreter() {
        let src = r#"
            void f(char a __range(0, 3), char b __range(0, 3)) {
                if (a > 1) { x(); } else { y(); }
                switch (b) { case 0: z0(); break; case 2: z2(); break; default: d(); break; }
            }
        "#;
        let (f, lowered) = machine_for(src);
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let program = parse_program(src).expect("parse");
        for a in 0..=3 {
            for b in 0..=3 {
                let iv = InputVector::new().with("a", a).with("b", b);
                let run = machine.run(&iv, &[]).expect("machine run");
                let oracle = Interpreter::new(&program).run("f", &iv).expect("interp");
                assert_eq!(
                    run.branch_signature,
                    oracle.trace.branch_signature(),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn longer_paths_cost_more_cycles() {
        let (f, lowered) =
            machine_for("void f(char a __range(0, 1)) { if (a) { x(); y(); z(); } }");
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let short = machine
            .end_to_end_cycles(&InputVector::new().with("a", 0))
            .expect("run");
        let long = machine
            .end_to_end_cycles(&InputVector::new().with("a", 1))
            .expect("run");
        assert!(long > short + 3 * CostModel::hcs12().call_overhead - 1);
    }

    #[test]
    fn loop_cycles_scale_with_iterations() {
        let src = "void f(char n __range(0, 5)) { char i = 0; while (i < n) __bound(5) { body(); i = i + 1; } }";
        let (f, lowered) = machine_for(src);
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let mut last = 0;
        for n in 0..=5 {
            let cycles = machine
                .end_to_end_cycles(&InputVector::new().with("n", n))
                .expect("run");
            assert!(cycles > last, "n={n}");
            last = cycles;
        }
    }

    #[test]
    fn violated_loop_bound_faults() {
        let src = "void f(char n) { char i = 0; while (i < n) __bound(2) { i = i + 1; } }";
        let (f, lowered) = machine_for(src);
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let err = machine
            .end_to_end_cycles(&InputVector::new().with("n", 100))
            .expect_err("bound violation");
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    fn division_by_zero_faults() {
        let (f, lowered) = machine_for("void f(char a) { char b; b = 10 / a; }");
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        assert!(machine
            .end_to_end_cycles(&InputVector::new().with("a", 0))
            .is_err());
    }

    #[test]
    fn instrumentation_records_events_and_charges_the_reads() {
        let (f, lowered) = machine_for("void f() { work(); }");
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let entry_edge = (
            lowered.cfg.entry(),
            lowered.cfg.successors(lowered.cfg.entry())[0],
        );
        let exit_block = lowered.cfg.predecessors(lowered.cfg.exit())[0];
        let exit_edge = (exit_block, lowered.cfg.exit());
        let points = vec![
            InstrumentationPoint {
                id: PointId(0),
                edge: entry_edge,
                label: "entry".to_owned(),
            },
            InstrumentationPoint {
                id: PointId(1),
                edge: exit_edge,
                label: "exit".to_owned(),
            },
        ];
        let plain = machine.run(&InputVector::new(), &[]).expect("plain");
        let instrumented = machine
            .run(&InputVector::new(), &points)
            .expect("instrumented");
        assert!(plain.events.is_empty());
        assert_eq!(instrumented.events.len(), 2);
        assert_eq!(instrumented.events[0].point, PointId(0));
        let sample = instrumented.events[1].cycles - instrumented.events[0].cycles;
        assert!(
            sample >= plain.cycles,
            "measured sample {sample} must cover the uninstrumented run {}",
            plain.cycles
        );
        assert_eq!(
            instrumented.cycles,
            plain.cycles + 2 * CostModel::hcs12().read_cycle_counter
        );
    }

    #[test]
    fn return_value_is_captured() {
        let (f, lowered) = machine_for("int f(int a) { return a + 1; }");
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let run = machine
            .run(&InputVector::new().with("a", 41), &[])
            .expect("run");
        assert_eq!(run.return_value, Some(42));
    }

    #[test]
    fn executed_blocks_cover_the_taken_path_only() {
        let (f, lowered) =
            machine_for("void f(char a __range(0, 1)) { if (a) { x(); } else { y(); } }");
        let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
        let then_run = machine
            .run(&InputVector::new().with("a", 1), &[])
            .expect("run");
        let else_run = machine
            .run(&InputVector::new().with("a", 0), &[])
            .expect("run");
        assert_ne!(then_run.executed_blocks, else_run.executed_blocks);
        assert!(then_run.executed_blocks.contains(&lowered.cfg.entry()));
    }
}
