//! Cycle-counting HCS12-style simulated target machine.
//!
//! The DATE 2005 paper measures program segments on a Motorola HCS12
//! evaluation board: the analysed function is instrumented with cycle-counter
//! reads at segment boundaries, compiled, and executed once per generated
//! test vector; the counter readings at the boundaries yield the per-segment
//! execution times.  This crate simulates that setup:
//!
//! * [`CostModel`] — per-operation cycle costs of the simulated CPU
//!   ([`CostModel::hcs12`] approximates the HCS12 timing of the paper);
//! * [`compile`] — "compilation" of a [`tmg_cfg::Cfg`] into per-block cycle
//!   aggregates ([`compile::CompiledFunction`]) plus the terminator outcome
//!   costs ([`compile::terminator_cycles`]);
//! * [`Machine`] — executes a compiled function on a concrete
//!   [`InputVector`](tmg_minic::value::InputVector), advancing the cycle
//!   counter per executed operation, recording the branch signature and the
//!   executed blocks, and emitting a [`CounterEvent`] whenever control
//!   crosses an edge that carries an [`InstrumentationPoint`].
//!
//! Reading the free-running counter is itself not free: every instrumented
//! crossing adds [`CostModel::read_cycle_counter`] cycles *after* the reading
//! is taken, exactly like a `LDD TCNT; STD buf` pair on the real part.  The
//! recorded segment durations therefore include the instrumentation overhead
//! of interior boundary reads — which is what makes the measured bounds
//! safely conservative.
//!
//! # Example
//!
//! ```
//! use tmg_cfg::build_cfg;
//! use tmg_minic::{parse_function, value::InputVector};
//! use tmg_target::{CostModel, Machine};
//!
//! let f = parse_function("void f(char a __range(0, 3)) { if (a > 1) { slow(); } }")?;
//! let lowered = build_cfg(&f);
//! let machine = Machine::new(&lowered.cfg, &f, CostModel::hcs12());
//! let fast = machine.end_to_end_cycles(&InputVector::new().with("a", 0))?;
//! let slow = machine.end_to_end_cycles(&InputVector::new().with("a", 3))?;
//! assert!(slow > fast);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compile;
pub mod cost;
pub(crate) mod exec;
pub mod machine;
pub mod module;

pub use compile::CompiledFunction;
pub use cost::CostModel;
pub use machine::{CounterEvent, InstrumentationPoint, Machine, PointId, RunResult, TargetError};
pub use module::ModuleMachine;
